#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a crash-point
# torture smoke run (every WAL frame of a 200-op workload).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: crash-point torture smoke (200 ops, every WAL frame) =="
cargo run --release -p reach-bench --bin exp_torture -- 12648430 200

echo "== tier-1: group-commit smoke (batching + visibility invariants) =="
cargo run --release -p reach-bench --bin exp_commit -- --smoke

echo "== tier-1: OK =="
