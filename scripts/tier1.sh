#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and the smoke runs of
# the crash-point torture, group-commit, and server-overload harnesses.
# Every experiment invocation runs under a hard timeout so a wedged
# harness fails the gate instead of hanging it.
#
#   --stress       additionally run the E18 concurrency stress smoke
#                  (schedule-perturbed serializability sweep + algebra
#                  differential fuzz; see crates/bench/src/bin/exp_stress.rs)
#   --bench-check  additionally run the E13 throughput, E21 index, and
#                  E22 distributed-commit smokes and fail if any lands
#                  >10% below its committed gate (gate_events_per_s in
#                  BENCH_E13.json, gate_lookups_per_s in BENCH_E21.json,
#                  gate_commits_per_s in BENCH_E22.json)
set -euo pipefail
cd "$(dirname "$0")/.."

STRESS=0
BENCH_CHECK=0
for arg in "$@"; do
  case "$arg" in
    --stress) STRESS=1 ;;
    --bench-check) BENCH_CHECK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Hard wall-clock bound per experiment run (seconds). The smokes all
# finish in well under a minute; ten is a hang, not a slow machine.
EXP_TIMEOUT=600

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: crash-point torture smoke (200 ops, every WAL frame) =="
timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_torture -- 12648430 200

echo "== tier-1: group-commit smoke (batching + visibility invariants) =="
timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_commit -- --smoke

echo "== tier-1: server overload smoke (explicit shedding + bounded p99) =="
timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_serve -- --smoke

echo "== tier-1: snapshot-read smoke (zero reader locks under writer churn) =="
timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_snapshot -- --smoke

echo "== tier-1: distributed-commit smoke (2PC invariants at 2/4 shards) =="
timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_dist -- --smoke

if [[ "$STRESS" == 1 ]]; then
  echo "== tier-1: concurrency stress smoke (perturbed schedules + differential fuzz) =="
  timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --features sched --bin exp_stress -- --smoke
fi

if [[ "$BENCH_CHECK" == 1 ]]; then
  echo "== tier-1: E13 throughput gate (>10% regression vs committed gate fails) =="
  # Read the gate BEFORE the run: exp_throughput rewrites BENCH_E13.json.
  gate=$(sed -n 's/^  "gate_events_per_s": \([0-9]*\).*/\1/p' BENCH_E13.json)
  if [[ -z "$gate" ]]; then
    echo "BENCH_E13.json missing or has no gate_events_per_s" >&2; exit 1
  fi
  timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_throughput -- --smoke
  fresh=$(sed -n 's/^  "events_per_s": \([0-9]*\).*/\1/p' BENCH_E13.json)
  floor=$((gate * 9 / 10))
  echo "   measured ${fresh} events/s, gate ${gate} (floor ${floor})"
  if (( fresh < floor )); then
    echo "E13 throughput regression: ${fresh} events/s < ${floor} (90% of gate ${gate})" >&2
    exit 1
  fi

  echo "== tier-1: E21 index-lookup gate (>10% regression vs committed gate fails) =="
  # Same protocol as E13: read the gate BEFORE exp_index rewrites the file.
  gate=$(sed -n 's/^  "gate_lookups_per_s": \([0-9]*\).*/\1/p' BENCH_E21.json)
  if [[ -z "$gate" ]]; then
    echo "BENCH_E21.json missing or has no gate_lookups_per_s" >&2; exit 1
  fi
  timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_index -- --smoke
  fresh=$(sed -n 's/^  "lookups_per_s": \([0-9]*\).*/\1/p' BENCH_E21.json)
  floor=$((gate * 9 / 10))
  echo "   measured ${fresh} lookups/s, gate ${gate} (floor ${floor})"
  if (( fresh < floor )); then
    echo "E21 index-lookup regression: ${fresh} lookups/s < ${floor} (90% of gate ${gate})" >&2
    exit 1
  fi

  echo "== tier-1: E22 distributed-commit gate (>10% regression vs committed gate fails) =="
  # Same protocol again: read the gate BEFORE exp_dist rewrites the file.
  gate=$(sed -n 's/^  "gate_commits_per_s": \([0-9]*\).*/\1/p' BENCH_E22.json)
  if [[ -z "$gate" ]]; then
    echo "BENCH_E22.json missing or has no gate_commits_per_s" >&2; exit 1
  fi
  timeout "$EXP_TIMEOUT" cargo run --release -p reach-bench --bin exp_dist -- --smoke
  fresh=$(sed -n 's/^  "commits_per_s": \([0-9]*\).*/\1/p' BENCH_E22.json)
  floor=$((gate * 9 / 10))
  echo "   measured ${fresh} cross-shard commits/s, gate ${gate} (floor ${floor})"
  if (( fresh < floor )); then
    echo "E22 distributed-commit regression: ${fresh} commits/s < ${floor} (90% of gate ${gate})" >&2
    exit 1
  fi
fi

echo "== tier-1: OK =="
