#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a crash-point
# torture smoke run (every WAL frame of a 200-op workload).
#
#   --stress   additionally run the E18 concurrency stress smoke
#              (schedule-perturbed serializability sweep + algebra
#              differential fuzz; see crates/bench/src/bin/exp_stress.rs)
set -euo pipefail
cd "$(dirname "$0")/.."

STRESS=0
for arg in "$@"; do
  case "$arg" in
    --stress) STRESS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: crash-point torture smoke (200 ops, every WAL frame) =="
cargo run --release -p reach-bench --bin exp_torture -- 12648430 200

echo "== tier-1: group-commit smoke (batching + visibility invariants) =="
cargo run --release -p reach-bench --bin exp_commit -- --smoke

if [[ "$STRESS" == 1 ]]; then
  echo "== tier-1: concurrency stress smoke (perturbed schedules + differential fuzz) =="
  cargo run --release -p reach-bench --features sched --bin exp_stress -- --smoke
fi

echo "== tier-1: OK =="
