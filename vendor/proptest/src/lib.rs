//! Offline shim for `proptest`.
//!
//! The build environment has no crates registry, so this crate provides
//! a deterministic, generation-only property-testing harness with the
//! API subset the REACH test suites use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, `any::<T>()`,
//! ranges, tuples, `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! `prop::sample::Index`, simple string patterns, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case prints its full input instead;
//! * **fixed deterministic seeding** — the RNG is seeded from the test
//!   function's name, so runs are reproducible across machines and
//!   failures are stable, at the cost of never exploring new inputs
//!   between runs;
//! * string "regex" strategies only honour patterns of the form
//!   `.{m,n}` (any other pattern falls back to short alphanumerics).
//!
//! Seed replay: every case's pre-generation RNG state is its *replay
//! seed*. A failing case prints `replay with REACH_SEED=0x...`; setting
//! that variable re-runs exactly that input first on the next run.
//! Seeds listed as `cc <seed>` lines in
//! `<crate>/proptest-regressions/<test_name>.txt` (the shim's analogue
//! of proptest's regression files) are replayed before the normal case
//! stream, so past failures stay pinned forever.

use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    /// Drives generation for one `proptest!` test function.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test name: deterministic and per-test unique.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Resume from an explicit replay seed (a captured `state`).
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The current state — capture *before* generating a case and
        /// that case is replayable via `from_seed`.
        pub fn state(&self) -> u64 {
            self.state
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline test
            // suite fast while still exercising varied inputs.
            Config { cases: 64 }
        }
    }

    /// Prints the failing input when a test case panics (no shrinking).
    pub struct FailureReporter {
        pub test: &'static str,
        pub case: u32,
        /// Replay seed: the RNG state captured before this case.
        pub seed: u64,
        pub input: String,
    }

    impl Drop for FailureReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest-shim: `{}` failed at case {} with input:\n  {}\n\
                     replay with REACH_SEED={seed:#x} (or pin it: add `cc {seed:#x}` to \
                     proptest-regressions/{}.txt)",
                    self.test,
                    self.case,
                    self.input,
                    self.test,
                    seed = self.seed,
                );
            }
        }
    }

    /// Replay seeds for a test: `REACH_SEED` (decimal or `0x` hex)
    /// first, then every `cc <seed>` line of
    /// `<manifest_dir>/proptest-regressions/<test>.txt` (missing file =
    /// no seeds; `#` lines are comments).
    pub fn replay_seeds(manifest_dir: &str, test: &str) -> Vec<u64> {
        let mut seeds = Vec::new();
        if let Ok(v) = std::env::var("REACH_SEED") {
            if let Some(s) = parse_seed(&v) {
                seeds.push(s);
            }
        }
        let path = format!("{manifest_dir}/proptest-regressions/{test}.txt");
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                if let Some(rest) = line.trim().strip_prefix("cc ") {
                    if let Some(s) = parse_seed(rest) {
                        seeds.push(s);
                    }
                }
            }
        }
        seeds
    }

    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    }
}

use test_runner::TestRng;

// ------------------------------------------------------------- Strategy

/// A generator of values. Generation-only: no shrinking tree.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Build a recursive strategy: `depth` levels of `recurse` applied
    /// over the leaf, choosing leaf vs branch evenly at each level.
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        cur
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty());
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ----------------------------------------------------- primitive inputs

/// Marker returned by `any::<T>()`.
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated data readable in failures.
        (b' ' + rng.below(95) as u8) as char
    }
}

macro_rules! range_strategy {
    (int: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let r: Range<f64> = self.start as f64..self.end as f64;
        r.generate(rng) as f32
    }
}

/// A `&str` is a string pattern strategy. Only `.{m,n}` is honoured
/// (printable-ASCII strings with length in `m..=n`); anything else
/// falls back to short alphanumerics.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = rest.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/a)
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
    (A/a, B/b, C/c, D/d, E/e)
    (A/a, B/b, C/c, D/d, E/e, F/f)
}

// ---------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map onto a concrete collection size (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// --------------------------------------------------------------- macros

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $crate::test_runner::Config::default() }; $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr };
     $( $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let __strat = ($($strat,)+);
            let mut __run_case = |__case: u32, __seed: u64, __rng: &mut $crate::test_runner::TestRng| {
                let __values = $crate::Strategy::generate(&__strat, __rng);
                let __reporter = $crate::test_runner::FailureReporter {
                    test: stringify!($name),
                    case: __case,
                    seed: __seed,
                    input: format!("{:?}", __values),
                };
                let ($($pat,)+) = __values;
                { $body }
                drop(__reporter);
            };
            // Pinned / requested seeds first (REACH_SEED env override +
            // committed proptest-regressions/<test>.txt lines).
            let __replays = $crate::test_runner::replay_seeds(
                env!("CARGO_MANIFEST_DIR"),
                stringify!($name),
            );
            for (__i, __seed) in __replays.iter().enumerate() {
                let mut __rng = $crate::test_runner::TestRng::from_seed(*__seed);
                __run_case(__i as u32, *__seed, &mut __rng);
            }
            // Then the normal deterministic case stream.
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..config.cases {
                let __seed = rng.state();
                __run_case(__case, __seed, &mut rng);
            }
        }
    )*};
}

// -------------------------------------------------------------- prelude

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Node {
        Leaf(i64),
        Branch(Vec<Node>),
    }

    fn node() -> impl Strategy<Value = Node> {
        let leaf = prop_oneof![(0i64..100).prop_map(Node::Leaf), Just(Node::Leaf(0)),];
        leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Node::Branch)
        })
    }

    proptest! {
        #[test]
        fn tuples_ranges_and_vecs(
            (a, b) in (0u64..10, 0usize..5),
            v in crate::collection::vec(any::<u8>(), 1..20),
            s in ".{0,24}",
            idx in any::<prop::sample::Index>()
        ) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s.len() <= 24);
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn recursive_strategies_terminate(n in node()) {
            fn depth(n: &Node) -> usize {
                match n {
                    Node::Leaf(_) => 1,
                    Node::Branch(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            prop_assert!(depth(&n) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_limits_cases(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let strat = crate::collection::vec(0u32..1000, 1..10);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
