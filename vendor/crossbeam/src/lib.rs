//! Offline shim for `crossbeam`.
//!
//! Only the `channel` module is provided — the REACH crates use
//! `bounded`/`unbounded` MPMC channels with `send`, `try_send`, `recv`
//! and `recv_timeout`. Implemented as a `VecDeque` under a mutex with
//! two condvars; not as fast as crossbeam's lock-free channels, but
//! semantically equivalent for the workloads in this repository.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item is pushed or all senders drop.
        readable: Condvar,
        /// Signalled when an item is popped or all receivers drop.
        writable: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    fn pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        pair(None)
    }

    /// A bounded MPMC channel. Capacity 0 is treated as capacity 1
    /// (the shim has no rendezvous mode; nothing in this repo uses it).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        pair(Some(cap.max(1)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                inner = self.shared.writable.wait(inner).unwrap();
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.writable.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.readable.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.writable.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.writable.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .readable
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn mpmc_receivers_share_work() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h = std::thread::spawn(move || {
                let mut n = 0;
                while rx2.recv().is_ok() {
                    n += 1;
                }
                n
            });
            let mut n = 0;
            while rx.recv().is_ok() {
                n += 1;
            }
            assert_eq!(n + h.join().unwrap(), 100);
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn disconnection_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
