//! Offline shim for `criterion`.
//!
//! A minimal benchmark harness with criterion's API shape: it runs each
//! benchmark for a handful of samples, reports the median per-iteration
//! wall time to stdout, and performs no statistical analysis, plotting,
//! or baseline storage. Good enough to keep `cargo bench` runnable and
//! the numbers comparable within one machine and build.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How many inputs `iter_batched*` prepares per timed batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

impl BatchSize {
    fn iterations(self) -> u64 {
        match self {
            BatchSize::SmallInput => 256,
            BatchSize::LargeInput => 16,
            BatchSize::PerIteration => 1,
            BatchSize::NumBatches(_) => 16,
            BatchSize::NumIterations(n) => n.clamp(1, 10_000),
        }
    }
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `iter`-style calls.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up.
        black_box(f());
        // Pick an iteration count that makes one sample ≥ ~1 ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }

    /// Time `routine` over inputs built (untimed) by `setup`, consuming
    /// each input.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = size.iterations();
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }

    /// Like `iter_batched`, but the routine borrows the input mutably.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let Some(t) = b.last else {
        println!("bench {name:<50} (no measurement)");
        return;
    };
    let per = match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            let per_elem = t.as_nanos() as f64 / n as f64;
            format!("  ({per_elem:.1} ns/elem)")
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            let mbps = n as f64 / t.as_secs_f64() / 1e6;
            format!("  ({mbps:.1} MB/s)")
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {:>12.3?}/iter{per}", t);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last: None,
        };
        f(&mut b);
        report(&name.to_string(), &b, None);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: 10,
            last: None,
        };
        f(&mut b, input);
        report(&id.to_string(), &b, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: 3,
            last: None,
        };
        b.iter(|| black_box(2u64).pow(10));
        assert!(b.last.is_some());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        g.finish();
    }
}
