//! Offline shim for `rand` 0.8.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over integer and float ranges — the subset the
//! REACH workload generators and tests use. The generator is SplitMix64:
//! not cryptographic, but fast, seedable and statistically fine for
//! workload generation. Determinism contract: the same seed always
//! yields the same stream (across platforms — no host entropy anywhere).

use std::ops::Range;

/// Core of any RNG: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a `Range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for workload gen.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r: Range<f64> = self.start as f64..self.end as f64;
        r.sample(rng) as f32
    }
}

/// User-facing sampling methods (blanket-implemented for every RngCore).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64. (The real `StdRng` is ChaCha12; stream values differ,
    /// which is fine — nothing in the repo depends on specific values.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-100i64..-50);
            assert!((-100..-50).contains(&i));
        }
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(rng.gen_range(0u32..10));
        }
        assert_eq!(seen.len(), 10);
    }
}
