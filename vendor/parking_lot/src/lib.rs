//! Offline shim for `parking_lot`.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors a minimal, API-compatible subset
//! of the `parking_lot` crate implemented over `std::sync`. Semantics
//! match what the REACH crates rely on: guards are returned directly
//! (no poisoning — a panicked holder does not poison the lock), and
//! `Condvar::wait` operates on a `&mut MutexGuard`.

use std::sync;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

// -------------------------------------------------------------- Condvar

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
    }
}
