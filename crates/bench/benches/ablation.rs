//! Ablation benches for the design decisions DESIGN.md calls out:
//!
//! 1. **condition-first** immediate execution (conditions as queries in
//!    the triggering transaction) vs the naive subtransaction-per-
//!    condition design;
//! 2. the cost of the (class, method) monitoring *mask* itself, by
//!    firing an event with zero attached rules.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::sensor_world;
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, RuleBuilder};
use reach_object::Value;

/// World with R immediate rules whose conditions are all false — the
/// selective-dispatch hot path.
fn false_rule_world(rules: usize, subtxn_conditions: bool) -> reach_bench::SensorWorld {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    w.sys.engine().set_conditions_in_subtxn(subtxn_conditions);
    let ev = w
        .sys
        .define_method_event("ev", w.class, "report", MethodPhase::After)
        .unwrap();
    for i in 0..rules {
        w.sys
            .define_rule(
                RuleBuilder::new(&format!("r{i}"))
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .when(|_| Ok(false))
                    .then(|_| Ok(())),
            )
            .unwrap();
    }
    w
}

fn bench_condition_first(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_condition_first");
    g.sample_size(20);
    for (label, subtxn) in [
        ("conditions_as_queries", false),
        ("conditions_in_subtxn", true),
    ] {
        let w = false_rule_world(10, subtxn);
        let db = std::sync::Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        g.bench_function(label, |b| {
            b.iter(|| db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap())
        });
        db.commit(t).unwrap();
    }
    g.finish();
}

fn bench_empty_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_event_no_rules");
    g.sample_size(20);
    // Monitored event type with no rules at all: measures pure
    // detection + event-object + history cost.
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    w.sys
        .define_method_event("ev", w.class, "report", MethodPhase::After)
        .unwrap();
    let db = std::sync::Arc::clone(&w.db);
    let t = db.begin().unwrap();
    let oid = w.sensors[0];
    g.bench_function("monitored_zero_rules", |b| {
        b.iter(|| db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap())
    });
    db.commit(t).unwrap();
    g.finish();
}

criterion_group!(benches, bench_condition_first, bench_empty_manager);
criterion_main!(benches);
