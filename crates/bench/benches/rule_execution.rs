//! Criterion bench for E5: serial ring-sequence vs parallel sibling
//! subtransactions (§6.4), and the per-coupling-mode firing overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reach_bench::{busy_work, sensor_world};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ExecutionStrategy, ReachConfig, RuleBuilder};
use reach_object::Value;

fn strategy_world(
    rules: usize,
    cost_us: u64,
    strategy: ExecutionStrategy,
) -> reach_bench::SensorWorld {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    w.sys.engine().set_strategy(strategy);
    let ev = w
        .sys
        .define_method_event("ev", w.class, "report", MethodPhase::After)
        .unwrap();
    for i in 0..rules {
        w.sys
            .define_rule(
                RuleBuilder::new(&format!("r{i}"))
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .then(move |_| {
                        busy_work(cost_us);
                        Ok(())
                    }),
            )
            .unwrap();
    }
    w
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("rule_execution");
    g.sample_size(10);
    for &(rules, cost) in &[(4usize, 0u64), (4, 200), (8, 200), (8, 1000)] {
        for strategy in [ExecutionStrategy::Serial, ExecutionStrategy::Parallel] {
            let label = format!("{rules}rules_{cost}us");
            let w = strategy_world(rules, cost, strategy);
            let db = std::sync::Arc::clone(&w.db);
            let oid = w.sensors[0];
            g.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), label),
                &(),
                |b, _| {
                    b.iter(|| {
                        let t = db.begin().unwrap();
                        db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
                        db.commit(t).unwrap();
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_couplings(c: &mut Criterion) {
    let mut g = c.benchmark_group("coupling_overhead");
    g.sample_size(10);
    for mode in [
        CouplingMode::Immediate,
        CouplingMode::Deferred,
        CouplingMode::Detached,
        CouplingMode::ParallelCausallyDependent,
    ] {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        let ev = w
            .sys
            .define_method_event("ev", w.class, "report", MethodPhase::After)
            .unwrap();
        w.sys
            .define_rule(RuleBuilder::new("r").on(ev).coupling(mode).then(|_| Ok(())))
            .unwrap();
        let db = std::sync::Arc::clone(&w.db);
        let sys = std::sync::Arc::clone(&w.sys);
        let oid = w.sensors[0];
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| {
                let t = db.begin().unwrap();
                db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
                db.commit(t).unwrap();
                if mode.is_detached() {
                    sys.wait_quiescent();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_couplings);
criterion_main!(benches);
