//! Criterion bench for E6/E9: event composition throughput per
//! consumption policy, synchronous vs parallel compositors, and the
//! life-span GC cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reach_bench::sensor_world;
use reach_common::{EventTypeId, TimePoint, Timestamp, TxnId};
use reach_core::algebra::{CompositionScope, EventExpr, Lifespan};
use reach_core::compositor::Compositor;
use reach_core::consumption::ConsumptionPolicy;
use reach_core::eca::CompositionMode;
use reach_core::event::{EventData, EventOccurrence, MethodPhase};
use reach_core::{CouplingMode, ReachConfig, RuleBuilder};
use reach_object::Value;
use std::sync::Arc;
use std::time::Duration;

fn occ(ty: u64, seq: u64) -> Arc<EventOccurrence> {
    Arc::new(EventOccurrence {
        event_type: EventTypeId::new(ty),
        seq: Timestamp::new(seq),
        at: TimePoint::from_millis(seq),
        txn: Some(TxnId::new(1)),
        top_txn: Some(TxnId::new(1)),
        data: EventData::default(),
        constituents: Vec::new(),
    })
}

/// Raw compositor feed cost per consumption policy.
fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("compositor_feed");
    for policy in ConsumptionPolicy::ALL {
        let comp = Compositor::new(
            EventExpr::Sequence(vec![
                EventExpr::Primitive(EventTypeId::new(1)),
                EventExpr::Primitive(EventTypeId::new(2)),
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            policy,
        );
        let mut seq = 0u64;
        g.bench_function(format!("{policy}"), |b| {
            b.iter(|| {
                seq += 1;
                let ty = if seq.is_multiple_of(2) { 2 } else { 1 };
                criterion::black_box(comp.feed(&occ(ty, seq)));
            })
        });
    }
    g.finish();
}

/// Full-stack: events through K compositors, sync vs parallel workers.
fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("composition_fanout");
    g.sample_size(10);
    for &k in &[4usize, 16] {
        for mode in [CompositionMode::Synchronous, CompositionMode::Parallel] {
            let w = sensor_world(
                1,
                ReachConfig {
                    composition: mode,
                    ..Default::default()
                },
            )
            .unwrap();
            let ev = w
                .sys
                .define_method_event("prim", w.class, "report", MethodPhase::After)
                .unwrap();
            for i in 0..k {
                let comp = w
                    .sys
                    .define_composite(
                        &format!("c{i}"),
                        EventExpr::History {
                            expr: Arc::new(EventExpr::Primitive(ev)),
                            count: 3,
                        },
                        CompositionScope::CrossTransaction,
                        Lifespan::Interval(Duration::from_secs(3600)),
                        ConsumptionPolicy::Chronicle,
                    )
                    .unwrap();
                w.sys
                    .define_rule(
                        RuleBuilder::new(&format!("r{i}"))
                            .on(comp)
                            .coupling(CouplingMode::Detached)
                            .then(|_| Ok(())),
                    )
                    .unwrap();
            }
            let db = Arc::clone(&w.db);
            let sys = Arc::clone(&w.sys);
            let oid = w.sensors[0];
            g.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), format!("{k}compositors")),
                &(),
                |b, _| {
                    b.iter(|| {
                        let t = db.begin().unwrap();
                        for i in 0..60 {
                            db.invoke(t, oid, "report", &[Value::Int(i)]).unwrap();
                        }
                        db.commit(t).unwrap();
                        sys.wait_quiescent();
                    })
                },
            );
        }
    }
    g.finish();
}

/// E9: discarding semi-composed instances at transaction end.
fn bench_gc(c: &mut Criterion) {
    let mut g = c.benchmark_group("lifespan_gc");
    g.sample_size(10);
    for &open_instances in &[100usize, 1000] {
        g.bench_function(format!("{open_instances}_instances_at_eot"), |b| {
            b.iter_batched(
                || {
                    let comp = Compositor::new(
                        EventExpr::Sequence(vec![
                            EventExpr::Primitive(EventTypeId::new(1)),
                            EventExpr::Primitive(EventTypeId::new(2)),
                        ]),
                        CompositionScope::SameTransaction,
                        Lifespan::Transaction,
                        ConsumptionPolicy::Chronicle,
                    );
                    for i in 0..open_instances {
                        comp.feed(&occ(1, i as u64 + 1));
                    }
                    comp
                },
                |comp| {
                    comp.close_txn(TxnId::new(1));
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies, bench_fanout, bench_gc);
criterion_main!(benches);
