//! Criterion bench for E7: the layered baseline vs the integrated
//! architecture on the operations both can perform.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::sensor_world;
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, RuleBuilder};
use reach_layered::{ClosedOodb, LayeredLayer};
use reach_object::{Value, ValueType};
use std::sync::Arc;

fn bench_method_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("method_event_with_rule");
    g.sample_size(30);
    // Integrated.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        let ev = w
            .sys
            .define_method_event("e", w.class, "report", MethodPhase::After)
            .unwrap();
        w.sys
            .define_rule(
                RuleBuilder::new("r")
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .then(|_| Ok(())),
            )
            .unwrap();
        let db = Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        g.bench_function("integrated", |b| {
            b.iter(|| db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap())
        });
        db.commit(t).unwrap();
    }
    // Layered (wrapper subclass).
    {
        let closed = Arc::new(ClosedOodb::in_memory().unwrap());
        let (b_, report) = closed
            .define_class("Sensor")
            .attr("value", ValueType::Int, Value::Int(0))
            .virtual_method("report");
        let sensor = b_.define().unwrap();
        closed.register_method(
            report,
            Arc::new(|ctx| {
                ctx.set("value", ctx.arg(0))?;
                Ok(Value::Null)
            }),
        );
        let layer = LayeredLayer::new(Arc::clone(&closed));
        let active = layer.wrap_class(sensor, "Sensor").unwrap();
        let rule = layer.rule("r", 0, |_, _, _, _| Ok(true), |_, _, _, _| Ok(()));
        layer.define_method_rule(sensor, "report", rule);
        let t = closed.begin().unwrap();
        let oid = closed.create(t, active).unwrap();
        g.bench_function("layered_wrapper", |b| {
            b.iter(|| closed.invoke(t, oid, "report", &[Value::Int(1)]).unwrap())
        });
        closed.commit(t).unwrap();
    }
    g.finish();
}

fn bench_state_change(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_change_detection");
    g.sample_size(20);
    // Integrated: the write itself carries detection.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        let ev = w.sys.define_state_event("sc", w.class, "value").unwrap();
        w.sys
            .define_rule(
                RuleBuilder::new("r")
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .then(|_| Ok(())),
            )
            .unwrap();
        let db = Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        let mut i = 0i64;
        g.bench_function("integrated_write", |b| {
            b.iter(|| {
                i += 1;
                db.set_attr(t, oid, "value", Value::Int(i)).unwrap();
            })
        });
        db.commit(t).unwrap();
    }
    // Layered: write + the poll needed to observe it (100 watched objs).
    {
        let closed = Arc::new(ClosedOodb::in_memory().unwrap());
        let b_ = closed
            .define_class("Sensor")
            .attr("value", ValueType::Int, Value::Int(0));
        let sensor = b_.define().unwrap();
        let layer = LayeredLayer::new(Arc::clone(&closed));
        let t = closed.begin().unwrap();
        let mut oids = Vec::new();
        for _ in 0..100 {
            let oid = closed.create(t, sensor).unwrap();
            layer.watch(t, oid).unwrap();
            oids.push(oid);
        }
        let mut i = 0i64;
        g.bench_function("layered_write_plus_poll_100w", |b| {
            b.iter(|| {
                i += 1;
                closed.set_attr(t, oids[0], "value", Value::Int(i)).unwrap();
                let changes = layer.poll(t).unwrap();
                assert_eq!(changes.len(), 1);
            })
        });
        closed.commit(t).unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench_method_events, bench_state_change);
criterion_main!(benches);
