//! Criterion bench for E12: distributed per-manager event histories vs
//! one centrally locked log, under thread contention (§6.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reach_common::{EventTypeId, TimePoint, Timestamp, TxnId};
use reach_core::event::{EventData, EventOccurrence};
use reach_core::history::{GlobalHistory, LocalHistory};
use std::sync::Arc;

const PER_THREAD: u64 = 5_000;

fn occ(ty: u64, seq: u64) -> Arc<EventOccurrence> {
    Arc::new(EventOccurrence {
        event_type: EventTypeId::new(ty),
        seq: Timestamp::new(seq),
        at: TimePoint::ZERO,
        txn: Some(TxnId::new(1)),
        top_txn: Some(TxnId::new(1)),
        data: EventData::default(),
        constituents: Vec::new(),
    })
}

fn bench_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_history");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(PER_THREAD * 4));
    for &threads in &[1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("distributed_local", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let hs: Vec<Arc<LocalHistory>> = (0..threads)
                        .map(|_| Arc::new(LocalHistory::new(1 << 16)))
                        .collect();
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let h = Arc::clone(&hs[t]);
                            std::thread::spawn(move || {
                                for i in 0..PER_THREAD {
                                    h.record(occ(t as u64, i));
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("central_log", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let global = Arc::new(GlobalHistory::new(1 << 18));
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let g = Arc::clone(&global);
                            std::thread::spawn(move || {
                                for i in 0..PER_THREAD {
                                    g.absorb(vec![occ(t as u64, i)]);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_history);
criterion_main!(benches);
