//! Criterion bench for E10: ECA-manager rule dispatch stays flat in the
//! total number of registered rules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use open_oodb::Database;
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, ReachSystem, RuleBuilder};
use reach_object::{Value, ValueType};
use std::sync::Arc;

/// A system with `total_rules` rules spread over `total_rules / 10`
/// event types; returns what's needed to fire one of them.
fn build(total_rules: usize) -> (Arc<Database>, reach_common::ObjectId) {
    let db = Database::in_memory().unwrap();
    let types = (total_rules / 10).max(1);
    let mut classes = Vec::new();
    for m in 0..types {
        let (b, mid) = db
            .define_class(&format!("C{m}"))
            .attr("v", ValueType::Int, Value::Int(0))
            .virtual_method("go");
        let class = b.define().unwrap();
        db.methods().register_fn(mid, |_| Ok(Value::Null));
        classes.push(class);
    }
    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    for (m, class) in classes.iter().enumerate() {
        let ev = sys
            .define_method_event(&format!("ev{m}"), *class, "go", MethodPhase::After)
            .unwrap();
        for r in 0..(total_rules / types) {
            sys.define_rule(
                RuleBuilder::new(&format!("r{m}-{r}"))
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .when(|_| Ok(false))
                    .then(|_| Ok(())),
            )
            .unwrap();
        }
    }
    // Leak the system so its sentries stay alive for the bench body.
    std::mem::forget(sys);
    let t = db.begin().unwrap();
    let oid = db.create(t, classes[0]).unwrap();
    db.commit(t).unwrap();
    (db, oid)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("rule_dispatch");
    g.sample_size(20);
    for &rules in &[10usize, 100, 1_000, 10_000] {
        let (db, oid) = build(rules);
        let t = db.begin().unwrap();
        g.bench_with_input(BenchmarkId::new("eca_manager", rules), &(), |b, _| {
            b.iter(|| db.invoke(t, oid, "go", &[]).unwrap())
        });
        db.commit(t).unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
