//! Criterion bench for the storage substrate: page operations, WAL
//! appends, heap inserts/scans, buffer-pool hits, and the transactional
//! object write-back path of the Persistence PM.

use criterion::{criterion_group, criterion_main, Criterion};
use open_oodb::Database;
use reach_common::{PageId, TxnId};
use reach_object::{Value, ValueType};
use reach_storage::{
    BufferPool, HeapFile, MemDisk, Page, StorageManager, WalRecord, WriteAheadLog,
};
use std::sync::Arc;

fn bench_page(c: &mut Criterion) {
    let mut g = c.benchmark_group("page");
    g.bench_function("insert_get_delete_100b", |b| {
        let payload = vec![7u8; 100];
        // Slots are never reused, so the directory fills after ~2000
        // inserts: start from a fresh page whenever the current one is
        // exhausted (the reset cost is amortized over the page's life).
        let mut page = Page::new(PageId::new(1));
        b.iter(|| {
            if !page.fits(payload.len()) {
                page = Page::new(PageId::new(1));
            }
            let slot = page.insert(&payload).unwrap();
            criterion::black_box(page.get(slot).unwrap());
            page.delete(slot).unwrap();
        })
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    let log = WriteAheadLog::in_memory();
    let rec = WalRecord::Insert {
        txn: TxnId::new(1),
        page: PageId::new(1),
        slot: 0,
        payload: vec![1u8; 64],
    };
    g.bench_function("append_64b", |b| b.iter(|| log.append(&rec).unwrap()));
    g.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap");
    g.sample_size(20);
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256));
    let heap = HeapFile::new(Arc::clone(&pool));
    let payload = vec![3u8; 128];
    g.bench_function("insert_128b", |b| b.iter(|| heap.insert(&payload).unwrap()));
    let (rid, _) = heap.insert(&payload).unwrap();
    g.bench_function("get_128b", |b| b.iter(|| heap.get(rid).unwrap()));
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 64);
    let id = pool.allocate().unwrap();
    pool.with_page_mut(id, |pg| pg.insert(b"x").unwrap())
        .unwrap();
    g.bench_function("hit_read", |b| {
        b.iter(|| pool.with_page(id, |pg| pg.live_count()).unwrap())
    });
    g.finish();
}

fn bench_transactional(c: &mut Criterion) {
    let mut g = c.benchmark_group("transactional");
    g.sample_size(20);
    // Record-level storage manager path.
    // A fresh storage manager per 10k-iteration batch keeps the segment
    // within the single-record catalog's ~1000-page bound (see
    // `reach_storage::sm`); batch setup is excluded from the timing.
    g.bench_function("sm_begin_insert_delete_commit", |b| {
        b.iter_batched_ref(
            || {
                let sm = StorageManager::new_in_memory(256).unwrap();
                let seg = sm.create_segment("bench").unwrap();
                (sm, seg, 0u64)
            },
            |(sm, seg, txn_raw)| {
                *txn_raw += 1;
                let t = TxnId::new(*txn_raw);
                sm.begin(t).unwrap();
                let rid = sm.insert(t, *seg, b"record payload").unwrap();
                sm.delete(t, *seg, rid).unwrap();
                sm.commit(t).unwrap();
            },
            criterion::BatchSize::NumIterations(10_000),
        )
    });
    // Full object path: create + persist + delete across two
    // transactions (WAL force included); fresh database per batch.
    g.bench_function("db_create_persist_delete_commit", |b| {
        b.iter_batched_ref(
            || {
                let db = Database::in_memory().unwrap();
                let class = db
                    .define_class("Doc")
                    .attr("body", ValueType::Str, Value::Str("hello".into()))
                    .define()
                    .unwrap();
                (db, class)
            },
            |(db, class)| {
                let t = db.begin().unwrap();
                let oid = db.create(t, *class).unwrap();
                db.persist(t, oid).unwrap();
                db.commit(t).unwrap();
                let t = db.begin().unwrap();
                db.delete_object(t, oid).unwrap();
                db.commit(t).unwrap();
            },
            criterion::BatchSize::NumIterations(2_000),
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_page,
    bench_wal,
    bench_heap,
    bench_buffer_pool,
    bench_transactional
);
criterion_main!(benches);
