//! Criterion bench for E4: sentry overhead categories (§6.2).
//!
//! Measures a method invocation through the integrated dispatcher when
//! (a) nothing is monitored, (b) other methods are monitored, (c) the
//! invoked method is monitored with a live event route.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::sensor_world;
use reach_core::event::MethodPhase;
use reach_core::ReachConfig;
use reach_object::Value;

fn bench_sentry(c: &mut Criterion) {
    let mut g = c.benchmark_group("sentry_overhead");
    g.sample_size(30);

    // (a) Unmonitored system.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        let db = std::sync::Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        g.bench_function("unmonitored", |b| {
            b.iter(|| db.invoke(t, oid, "noop", &[]).unwrap())
        });
        db.commit(t).unwrap();
    }
    // (b) Potentially useful: another method monitored.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        w.sys
            .define_method_event("other", w.class, "report", MethodPhase::After)
            .unwrap();
        let db = std::sync::Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        g.bench_function("potentially_useful", |b| {
            b.iter(|| db.invoke(t, oid, "noop", &[]).unwrap())
        });
        db.commit(t).unwrap();
    }
    // (c) Useful: this method monitored (event object created, history
    // recorded, zero rules attached).
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        w.sys
            .define_method_event("mine", w.class, "noop", MethodPhase::After)
            .unwrap();
        let db = std::sync::Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        g.bench_function("useful", |b| {
            b.iter(|| db.invoke(t, oid, "noop", &[]).unwrap())
        });
        db.commit(t).unwrap();
    }
    // (d) Useful + an argument-carrying call (parameter capture cost).
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        w.sys
            .define_method_event("mine", w.class, "report", MethodPhase::After)
            .unwrap();
        let db = std::sync::Arc::clone(&w.db);
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        g.bench_function("useful_with_args", |b| {
            b.iter(|| db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap())
        });
        db.commit(t).unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench_sentry);
criterion_main!(benches);
