//! Deterministic workload generators for the experiment harness.
//!
//! Experiments must be repeatable, so every generator takes an explicit
//! seed. The streams model the paper's motivating domains: sensor
//! telemetry (power plants, §6.1), market ticks (commodity trading,
//! §3.4's continuous context), and workflow steps (§3.4's chronicle
//! context).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated sensor reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Which sensor (index into the world's sensor vector).
    pub sensor: usize,
    /// The reported value.
    pub value: i64,
    /// Whether the generator intends this reading to be anomalous
    /// (useful for asserting rule selectivity).
    pub anomalous: bool,
}

/// A reproducible stream of sensor readings where roughly
/// `anomaly_pct` percent exceed the anomaly threshold.
pub fn sensor_stream(seed: u64, sensors: usize, len: usize, anomaly_pct: u32) -> Vec<Reading> {
    assert!(sensors > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let sensor = rng.gen_range(0..sensors);
            let anomalous = rng.gen_range(0u32..100) < anomaly_pct;
            let value = if anomalous {
                rng.gen_range(1_000..2_000)
            } else {
                rng.gen_range(0..100)
            };
            Reading {
                sensor,
                value,
                anomalous,
            }
        })
        .collect()
}

/// A reproducible random walk of market prices starting at `start`.
pub fn price_walk(seed: u64, len: usize, start: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut price = start;
    (0..len)
        .map(|_| {
            let step: f64 = rng.gen_range(-0.05..0.05);
            price = (price * (1.0 + step)).max(1.0);
            price
        })
        .collect()
}

/// Workflow step stream: (case id, step index) pairs where each case
/// advances through `steps_per_case` steps, interleaved across cases.
pub fn workflow_steps(seed: u64, cases: usize, steps_per_case: usize) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut progress = vec![0usize; cases];
    let mut out = Vec::with_capacity(cases * steps_per_case);
    while out.len() < cases * steps_per_case {
        let case = rng.gen_range(0..cases);
        if progress[case] < steps_per_case {
            out.push((case, progress[case]));
            progress[case] += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_stream_is_deterministic_and_calibrated() {
        let a = sensor_stream(42, 4, 10_000, 10);
        let b = sensor_stream(42, 4, 10_000, 10);
        assert_eq!(a, b, "same seed, same stream");
        let anomalies = a.iter().filter(|r| r.anomalous).count();
        assert!(
            (800..1200).contains(&anomalies),
            "≈10% anomalies, got {anomalies}"
        );
        assert!(a.iter().all(|r| r.sensor < 4));
        assert!(
            a.iter().all(|r| r.anomalous == (r.value >= 1_000)),
            "threshold consistent"
        );
    }

    #[test]
    fn price_walk_is_deterministic_and_positive() {
        let a = price_walk(7, 1000, 100.0);
        let b = price_walk(7, 1000, 100.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| *p >= 1.0));
        assert_ne!(a, price_walk(8, 1000, 100.0), "different seed differs");
    }

    #[test]
    fn workflow_steps_respect_per_case_order() {
        let steps = workflow_steps(3, 5, 4);
        assert_eq!(steps.len(), 20);
        let mut seen = [0usize; 5];
        for (case, step) in steps {
            assert_eq!(step, seen[case], "steps of one case are in order");
            seen[case] += 1;
        }
        assert!(seen.iter().all(|s| *s == 4));
    }
}
