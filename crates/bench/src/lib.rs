//! `reach-bench` — shared workload builders for the experiment
//! regenerators (`src/bin/*`) and the criterion benches (`benches/*`).
//!
//! Every table and figure of the paper has a regenerator binary; see
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded results.

pub mod workload;

use open_oodb::Database;
use reach_common::{ClassId, ObjectId, Result};
use reach_core::{ReachConfig, ReachSystem};
use reach_object::{Value, ValueType};
use std::sync::Arc;

/// A standard benchmark world: a `Sensor` class with a cheap `report`
/// method, `n` persistent instances.
pub struct SensorWorld {
    pub db: Arc<Database>,
    pub sys: Arc<ReachSystem>,
    pub class: ClassId,
    pub sensors: Vec<ObjectId>,
}

/// Build the world. `config` selects composition/execution modes.
pub fn sensor_world(n: usize, config: ReachConfig) -> Result<SensorWorld> {
    let db = Database::in_memory()?;
    let (b, report) = db
        .define_class("Sensor")
        .attr("value", ValueType::Int, Value::Int(0))
        .attr("alarms", ValueType::Int, Value::Int(0))
        .virtual_method("report");
    let (b, noop) = b.virtual_method("noop");
    let class = b.define()?;
    db.methods().register_fn(report, |ctx| {
        ctx.set("value", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(noop, |_| Ok(Value::Null));
    let sys = ReachSystem::new(Arc::clone(&db), config);
    let t = db.begin()?;
    let mut sensors = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = db.create(t, class)?;
        db.persist(t, oid)?;
        sensors.push(oid);
    }
    db.commit(t)?;
    Ok(SensorWorld {
        db,
        sys,
        class,
        sensors,
    })
}

/// Burn CPU for roughly `micros` microseconds (simulated rule action
/// cost — spinning, not sleeping, so serial-vs-parallel comparisons
/// reflect real CPU contention).
#[inline]
pub fn busy_work(micros: u64) {
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_micros(micros);
    let mut x = 0u64;
    while start.elapsed() < target {
        for _ in 0..64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
    }
}

/// Format nanoseconds-per-op human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Time `f` over `iters` iterations, returning ns/op.
pub fn time_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_reports() {
        let w = sensor_world(4, ReachConfig::default()).unwrap();
        let t = w.db.begin().unwrap();
        w.db.invoke(t, w.sensors[0], "report", &[Value::Int(9)])
            .unwrap();
        assert_eq!(
            w.db.get_attr(t, w.sensors[0], "value").unwrap(),
            Value::Int(9)
        );
        w.db.commit(t).unwrap();
    }

    #[test]
    fn busy_work_takes_roughly_that_long() {
        let start = std::time::Instant::now();
        busy_work(2000);
        assert!(start.elapsed() >= std::time::Duration::from_micros(2000));
    }
}
