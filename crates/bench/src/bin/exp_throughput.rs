//! End-to-end system throughput under a realistic monitoring workload:
//! S sensors, a seeded telemetry stream with ~10% anomalies, and the
//! rule set a §2-style monitoring application would install (immediate
//! guard, deferred audit, detached alarm on a correlated composite).
//!
//! Not a paper figure — an overall sanity measurement that every layer
//! (dispatch, detection, composition, rules, WAL) is on the path.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_throughput
//! ```

use reach_bench::sensor_world;
use reach_bench::workload::sensor_stream;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, Correlation, CouplingMode, EventExpr, Lifespan,
    ReachConfig, RuleBuilder,
};
use reach_object::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SENSORS: usize = 16;
const EVENTS: usize = 50_000;

fn main() {
    let w = sensor_world(SENSORS, ReachConfig::default()).unwrap();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("report", w.class, "report", MethodPhase::After)
        .unwrap();
    // Immediate guard: anomalous readings bump the sensor's alarm count.
    sys.define_rule(
        RuleBuilder::new("guard")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))
            }),
    )
    .unwrap();
    // Deferred audit (counts per commit).
    let audited = Arc::new(AtomicUsize::new(0));
    {
        let a = Arc::clone(&audited);
        sys.define_rule(
            RuleBuilder::new("audit")
                .on(ev)
                .coupling(CouplingMode::Deferred)
                .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
                .then(move |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
        )
        .unwrap();
    }
    // Detached alarm: 3 anomalies on the SAME sensor within the window.
    let anomaly_sig = sys.define_signal("anomaly").unwrap();
    {
        let sys2 = Arc::downgrade(sys);
        sys.define_rule(
            RuleBuilder::new("signal-bridge")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
                .then(move |ctx| {
                    if let Some(sys) = sys2.upgrade() {
                        sys.raise_signal_for(Some(ctx.txn), "anomaly", ctx.receiver(), vec![])?;
                    }
                    Ok(())
                }),
        )
        .unwrap();
    }
    let storm = sys
        .define_composite_correlated(
            "sensor-storm",
            EventExpr::History {
                expr: Box::new(EventExpr::Primitive(anomaly_sig)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
            Correlation::SameReceiver,
        )
        .unwrap();
    let alarms = Arc::new(AtomicUsize::new(0));
    {
        let a = Arc::clone(&alarms);
        sys.define_rule(
            RuleBuilder::new("storm-alarm")
                .on(storm)
                .coupling(CouplingMode::Detached)
                .then(move |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
        )
        .unwrap();
    }

    let stream = sensor_stream(42, SENSORS, EVENTS, 10);
    let anomalies = stream.iter().filter(|r| r.anomalous).count();
    let db = &w.db;
    let start = Instant::now();
    // 100 readings per transaction (a telemetry batch).
    for batch in stream.chunks(100) {
        let t = db.begin().unwrap();
        for r in batch {
            db.invoke(t, w.sensors[r.sensor], "report", &[Value::Int(r.value)])
                .unwrap();
        }
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();
    let elapsed = start.elapsed();
    let stats = sys.stats();
    println!("end-to-end monitoring workload:");
    println!("  sensors: {SENSORS}, events: {EVENTS}, anomalies: {anomalies}");
    println!(
        "  wall: {elapsed:?}  ({:.0} events/s through the full stack)",
        EVENTS as f64 / elapsed.as_secs_f64()
    );
    println!(
        "  immediate condition evals: {}, actions: {}, deferred runs: {}, detached runs: {}",
        stats.immediate_runs, stats.actions_executed, stats.deferred_runs, stats.detached_runs
    );
    println!(
        "  audited: {}, correlated storm alarms: {} (expected ≈ anomalies/3 = {})",
        audited.load(Ordering::Relaxed),
        alarms.load(Ordering::Relaxed),
        anomalies / 3
    );
    assert_eq!(audited.load(Ordering::Relaxed), anomalies);
    // Sanity: every anomaly was audited; storm alarms are per-sensor
    // triples so the total is bounded by anomalies/3.
    assert!(alarms.load(Ordering::Relaxed) <= anomalies / 3 + SENSORS);
}
