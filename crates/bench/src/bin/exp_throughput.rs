//! E13 — end-to-end system throughput under a realistic monitoring
//! workload: S sensors, a seeded telemetry stream with ~10% anomalies,
//! and the rule set a §2-style monitoring application would install
//! (immediate guard, deferred audit, detached alarm on a correlated
//! composite).
//!
//! Not a paper figure — an overall sanity measurement that every layer
//! (dispatch, detection, composition, rules, WAL) is on the path.
//!
//! Results land in `BENCH_E13.json` in the working directory, together
//! with the per-lever ablation trajectory recorded during the hot-path
//! PR (see EXPERIMENTS.md §E13). `scripts/tier1.sh --bench-check`
//! re-runs the smoke and fails if events/s drops more than 10% below
//! the committed gate.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_throughput [--smoke] [--per-event]
//! ```
//!
//! `--smoke` shrinks the stream and runs one discarded warm-up pass
//! first: on small machines the first pass measures CPU frequency
//! ramp-up, not the pipeline. `--per-event` keeps the unbatched
//! per-reading invoke loop (the ablation baseline).

use reach_bench::sensor_world;
use reach_bench::workload::sensor_stream;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, Correlation, CouplingMode, EventExpr, Lifespan,
    ReachConfig, RuleBuilder,
};
use reach_object::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SENSORS: usize = 16;

/// Conservative floor for the `--bench-check` gate (events/s, smoke
/// mode, batched). Set from warmed smoke medians on the 1-core dev box
/// (~2.5x headroom below them); tier1.sh fails only below 90% of this,
/// so a real pipeline regression trips it while machine-speed noise
/// does not.
const GATE_EVENTS_PER_S: u64 = 100_000;

/// The measured per-lever trajectory from the hot-path PR (warmed
/// medians, interleaved A/B binaries, 1-core dev box). Re-emitted into
/// BENCH_E13.json verbatim so the artifact travels with every run.
const TRAJECTORY: &str = r#"[
    {"lever": "pre-PR baseline (per-event routing)", "events_per_s": 179000},
    {"lever": "+ batched routing (invoke_batch, batch after-event raise)", "events_per_s": 238000},
    {"lever": "+ striped lock manager (neutral on 1 core)", "events_per_s": 238000},
    {"lever": "+ Arc-shared args + occurrence slab (allocation, neutral wall-clock)", "events_per_s": 266000},
    {"lever": "+ bounded SPSC compositor inboxes (Synchronous default unaffected)", "events_per_s": 285000}
  ]"#;

struct RunResult {
    elapsed: Duration,
    anomalies: usize,
    audited: usize,
    alarms: usize,
    immediate_runs: u64,
    deferred_runs: u64,
    detached_runs: u64,
    actions: u64,
}

/// Build a fresh world with the full E13 rule set and push `events`
/// seeded readings through it; each call is an independent system so
/// warm-up passes don't pollute the measured run's counters.
fn run_once(events: usize, per_event: bool) -> RunResult {
    let w = sensor_world(SENSORS, ReachConfig::default()).unwrap();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("report", w.class, "report", MethodPhase::After)
        .unwrap();
    // Immediate guard: anomalous readings bump the sensor's alarm count.
    sys.define_rule(
        RuleBuilder::new("guard")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))
            }),
    )
    .unwrap();
    // Deferred audit (counts per commit).
    let audited = Arc::new(AtomicUsize::new(0));
    {
        let a = Arc::clone(&audited);
        sys.define_rule(
            RuleBuilder::new("audit")
                .on(ev)
                .coupling(CouplingMode::Deferred)
                .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
                .then(move |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
        )
        .unwrap();
    }
    // Detached alarm: 3 anomalies on the SAME sensor within the window.
    let anomaly_sig = sys.define_signal("anomaly").unwrap();
    {
        let sys2 = Arc::downgrade(sys);
        sys.define_rule(
            RuleBuilder::new("signal-bridge")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
                .then(move |ctx| {
                    if let Some(sys) = sys2.upgrade() {
                        sys.raise_signal_for(Some(ctx.txn), "anomaly", ctx.receiver(), vec![])?;
                    }
                    Ok(())
                }),
        )
        .unwrap();
    }
    let storm = sys
        .define_composite_correlated(
            "sensor-storm",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(anomaly_sig)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
            Correlation::SameReceiver,
        )
        .unwrap();
    let alarms = Arc::new(AtomicUsize::new(0));
    {
        let a = Arc::clone(&alarms);
        sys.define_rule(
            RuleBuilder::new("storm-alarm")
                .on(storm)
                .coupling(CouplingMode::Detached)
                .then(move |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
        )
        .unwrap();
    }

    let stream = sensor_stream(42, SENSORS, events, 10);
    let anomalies = stream.iter().filter(|r| r.anomalous).count();
    let db = &w.db;
    let start = Instant::now();
    // 100 readings per transaction (a telemetry batch), invoked through
    // the batched hot path: one lock pass per distinct sensor and one
    // after-event raise per batch. `per_event` keeps the unbatched
    // per-reading invoke loop (the ablation baseline).
    for batch in stream.chunks(100) {
        let t = db.begin().unwrap();
        if per_event {
            for r in batch {
                db.invoke(t, w.sensors[r.sensor], "report", &[Value::Int(r.value)])
                    .unwrap();
            }
        } else {
            let args: Vec<[Value; 1]> = batch.iter().map(|r| [Value::Int(r.value)]).collect();
            let calls: Vec<_> = batch
                .iter()
                .zip(&args)
                .map(|(r, a)| (w.sensors[r.sensor], "report", &a[..]))
                .collect();
            db.invoke_batch(t, &calls).unwrap();
        }
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();
    let elapsed = start.elapsed();
    let stats = sys.stats();
    RunResult {
        elapsed,
        anomalies,
        audited: audited.load(Ordering::Relaxed),
        alarms: alarms.load(Ordering::Relaxed),
        immediate_runs: stats.immediate_runs,
        deferred_runs: stats.deferred_runs,
        detached_runs: stats.detached_runs,
        actions: stats.actions_executed,
    }
}

fn main() {
    let per_event = std::env::args().any(|a| a == "--per-event");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let events = if smoke { 20_000 } else { 50_000 };

    if smoke {
        // Discarded warm-up: lets the CPU governor reach its working
        // frequency and the allocator/page cache settle.
        let _ = run_once(events, per_event);
    }
    let r = run_once(events, per_event);
    let events_per_s = (events as f64 / r.elapsed.as_secs_f64()) as u64;

    println!("end-to-end monitoring workload:");
    println!(
        "  sensors: {SENSORS}, events: {events}, anomalies: {}, mode: {}{}",
        r.anomalies,
        if per_event { "per-event" } else { "batched" },
        if smoke { " (smoke, warmed)" } else { "" }
    );
    println!(
        "  wall: {:?}  ({events_per_s} events/s through the full stack)",
        r.elapsed
    );
    println!(
        "  immediate condition evals: {}, actions: {}, deferred runs: {}, detached runs: {}",
        r.immediate_runs, r.actions, r.deferred_runs, r.detached_runs
    );
    println!(
        "  audited: {}, correlated storm alarms: {} (expected ≈ anomalies/3 = {})",
        r.audited,
        r.alarms,
        r.anomalies / 3
    );

    let json = format!(
        "{{\n  \"experiment\": \"E13\",\n  \"smoke\": {smoke},\n  \"mode\": \"{}\",\n  \
         \"sensors\": {SENSORS},\n  \"events\": {events},\n  \"anomalies\": {},\n  \
         \"events_per_s\": {events_per_s},\n  \"wall_ms\": {},\n  \
         \"immediate_runs\": {},\n  \"deferred_runs\": {},\n  \"detached_runs\": {},\n  \
         \"audited\": {},\n  \"storm_alarms\": {},\n  \
         \"gate_events_per_s\": {GATE_EVENTS_PER_S},\n  \"trajectory\": {TRAJECTORY}\n}}\n",
        if per_event { "per-event" } else { "batched" },
        r.anomalies,
        r.elapsed.as_millis(),
        r.immediate_runs,
        r.deferred_runs,
        r.detached_runs,
        r.audited,
        r.alarms,
    );
    std::fs::write("BENCH_E13.json", &json).expect("write BENCH_E13.json");

    assert_eq!(r.audited, r.anomalies);
    // Sanity: every anomaly was audited; storm alarms are per-sensor
    // triples so the total is bounded by anomalies/3.
    assert!(r.alarms <= r.anomalies / 3 + SENSORS);
}
