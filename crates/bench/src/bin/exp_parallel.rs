//! Experiment E5 — serial ring-sequence vs parallel sibling
//! subtransactions (§6.4, §7).
//!
//! The paper: "we will be able to perform actual measurements comparing
//! the gain of parallel rule execution with the overhead incurred for
//! setting up the parallel subtransactions." This is that measurement.
//!
//! One event fires R rules; each rule's action burns C microseconds of
//! CPU. We report the latency of the triggering method call under the
//! Serial and Parallel execution strategies and the crossover.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_parallel
//! ```

use reach_bench::{busy_work, fmt_ns, sensor_world, time_per_op};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ExecutionStrategy, ReachConfig, RuleBuilder};
use reach_object::Value;

fn run_case(rules: usize, cost_us: u64, strategy: ExecutionStrategy) -> f64 {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    w.sys.engine().set_strategy(strategy);
    let ev = w
        .sys
        .define_method_event("ev", w.class, "report", MethodPhase::After)
        .unwrap();
    for i in 0..rules {
        w.sys
            .define_rule(
                RuleBuilder::new(&format!("r{i}"))
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .then(move |_| {
                        busy_work(cost_us);
                        Ok(())
                    }),
            )
            .unwrap();
    }
    let db = &w.db;
    let oid = w.sensors[0];
    // Warm-up + measurement, one transaction per trigger.
    let iters = (20_000 / (rules as u64 * cost_us.max(1))).clamp(3, 50);
    time_per_op(iters, || {
        let t = db.begin().unwrap();
        db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
        db.commit(t).unwrap();
    })
}

fn main() {
    println!("E5: serial vs parallel rule execution");
    println!("(latency of one triggering call firing R immediate rules,");
    println!(" each rule's action burning C µs of CPU)\n");
    println!(
        "{:>6} {:>9} {:>14} {:>14} {:>9}",
        "rules", "cost µs", "serial", "parallel", "speedup"
    );
    println!("{}", "-".repeat(58));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for &rules in &[1usize, 2, 4, 8, 16] {
        for &cost in &[0u64, 50, 200, 1000] {
            let serial = run_case(rules, cost, ExecutionStrategy::Serial);
            let parallel = run_case(rules, cost, ExecutionStrategy::Parallel);
            println!(
                "{:>6} {:>9} {:>14} {:>14} {:>8.2}x",
                rules,
                cost,
                fmt_ns(serial),
                fmt_ns(parallel),
                serial / parallel
            );
        }
    }
    println!(
        "\nshape check (paper's expectation): for cheap actions the\n\
         subtransaction/thread setup dominates and Serial wins; as action\n\
         cost grows, Parallel approaches min(R, {cores} cores)x speedup.\n\
         The crossover is the measurement the paper wanted its\n\
         ring-sequence fallback to enable."
    );
}
