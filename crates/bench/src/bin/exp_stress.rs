//! Experiment E18 — concurrency correctness stress harness.
//!
//! Three oracles, one binary, all driven by the schedule-perturbing
//! sync layer (`reach_common::sync`, built with the `sched` feature):
//!
//! 1. **Trace determinism** — the same seed must produce the identical
//!    per-thread acquisition trace twice (the replay guarantee the
//!    whole harness rests on);
//! 2. **Serializability sweep** — randomized lock-manager workloads
//!    under perturbed schedules; every committed history must be
//!    conflict-serializable (checked by `reach_txn::serial`);
//! 3. **Differential algebra fuzz** — random event-algebra expressions
//!    and random streams through the real compositor and the naive
//!    reference interpreter (`reach_core::oracle`); detections must be
//!    identical per arrival and at window close, for all four SNOOP
//!    consumption policies.
//!
//! Exits nonzero on the first discrepancy, printing the seed to replay.
//!
//! ```sh
//! cargo run --release -p reach-bench --features sched --bin exp_stress -- \
//!     [--seed N] [--schedules N] [--streams N] [--smoke]
//! ```

use reach_common::sync::sched;
use reach_common::{EventTypeId, SplitMix64, TimePoint, Timestamp, TxnId};
use reach_core::compositor::Compositor;
use reach_core::event::{EventData, EventOccurrence};
use reach_core::oracle::OracleCompositor;
use reach_core::{CompositionScope, ConsumptionPolicy, EventExpr, Lifespan};
use reach_txn::serial::{run_lock_workload, WorkloadCfg};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut base_seed: u64 = 0x5EED_0000;
    let mut schedules: usize = 64;
    let mut streams: usize = 200;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                base_seed = args
                    .next()
                    .and_then(|s| parse_u64(&s))
                    .expect("--seed needs a u64 (decimal or 0x-hex)");
            }
            "--schedules" => {
                schedules = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--schedules needs a usize");
            }
            "--streams" => {
                streams = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--streams needs a usize");
            }
            "--smoke" => {
                schedules = 8;
                streams = 32;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!(
        "== E18 concurrency stress: seed={base_seed:#x} schedules={schedules} streams={streams}"
    );
    let t0 = Instant::now();
    check_trace_determinism(base_seed);
    let committed = serializability_sweep(base_seed, schedules);
    let firings = differential_fuzz(base_seed, streams);
    println!(
        "E18 OK in {:.1?}: {schedules} schedules serializable ({committed} commits), \
         {streams} streams x 4 policies differentially equal ({firings} firings compared)",
        t0.elapsed()
    );
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A fixed 4-thread lock-step workload; equal seeds must leave equal
/// per-slot traces (and equal fingerprints) behind.
fn check_trace_determinism(seed: u64) {
    let run = || {
        sched::run_seeded(seed, || {
            let counter = Arc::new(AtomicU64::new(0));
            let lock = Arc::new(reach_common::sync::Mutex::new(0u64));
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let counter = Arc::clone(&counter);
                    let lock = Arc::clone(&lock);
                    std::thread::spawn(move || {
                        sched::register_thread(t);
                        for _ in 0..50 {
                            *lock.lock() += 1;
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            counter.load(Ordering::Relaxed)
        })
    };
    let (n1, trace1) = run();
    let (n2, trace2) = run();
    assert_eq!(n1, 200);
    assert_eq!(n2, 200);
    let (by1, by2) = (sched::by_slot(&trace1), sched::by_slot(&trace2));
    if by1 != by2 {
        eprintln!(
            "FAIL: seed {seed:#x} produced different acquisition traces \
             (fingerprints {:#x} vs {:#x})",
            sched::fingerprint(&trace1),
            sched::fingerprint(&trace2)
        );
        std::process::exit(1);
    }
    println!(
        "trace determinism: {} events, fingerprint {:#x}, stable across runs",
        trace1.len(),
        sched::fingerprint(&trace1)
    );
}

fn serializability_sweep(base_seed: u64, schedules: usize) -> u64 {
    let mut committed_total = 0;
    for i in 0..schedules as u64 {
        let seed = base_seed.wrapping_add(i);
        let ((history, stats), _) =
            sched::run_seeded(seed, || run_lock_workload(seed, WorkloadCfg::default()));
        committed_total += stats.committed;
        if let Some(cycle) = history.conflict_cycle() {
            eprintln!(
                "FAIL: non-serializable history, replay with --seed {seed:#x} --schedules 1 \
                 (cycle {cycle:?}, committed={} deadlocks={} timeouts={})",
                stats.committed, stats.deadlocks, stats.timeouts
            );
            std::process::exit(1);
        }
    }
    if committed_total == 0 {
        eprintln!("FAIL: serializability sweep committed nothing; workload broken");
        std::process::exit(1);
    }
    committed_total
}

/// Random expression, depth-bounded; combinators get 2–3 parts.
fn gen_expr(rng: &mut SplitMix64, depth: u32) -> EventExpr {
    let prim =
        |rng: &mut SplitMix64| EventExpr::Primitive(EventTypeId::new(1 + rng.below(4) as u64));
    if depth == 0 || rng.chance(2, 5) {
        return prim(rng);
    }
    let parts = |rng: &mut SplitMix64, depth: u32| {
        let n = 2 + rng.below(2);
        (0..n).map(|_| gen_expr(rng, depth - 1)).collect::<Vec<_>>()
    };
    match rng.below(6) {
        0 => EventExpr::Sequence(parts(rng, depth)),
        1 => EventExpr::Conjunction(parts(rng, depth)),
        2 => EventExpr::Disjunction(parts(rng, depth)),
        3 => EventExpr::Negation(Arc::new(gen_expr(rng, depth - 1))),
        4 => EventExpr::Closure(Arc::new(gen_expr(rng, depth - 1))),
        _ => EventExpr::History {
            expr: Arc::new(gen_expr(rng, depth - 1)),
            count: 1 + rng.below(3) as u32,
        },
    }
}

fn differential_fuzz(base_seed: u64, streams: usize) -> u64 {
    let mut compared = 0u64;
    for i in 0..streams as u64 {
        let seed = base_seed.wrapping_add(0x00D1_FF00).wrapping_add(i);
        let mut rng = SplitMix64::new(seed);
        let expr = gen_expr(&mut rng, 2);
        let len = rng.below(40);
        let stream: Vec<u64> = (0..len).map(|_| 1 + rng.below(4) as u64).collect();
        for policy in ConsumptionPolicy::ALL {
            compared += check_stream(&expr, policy, &stream, seed);
        }
    }
    compared
}

fn check_stream(expr: &EventExpr, policy: ConsumptionPolicy, stream: &[u64], seed: u64) -> u64 {
    let real = Compositor::new(
        expr.clone(),
        CompositionScope::SameTransaction,
        Lifespan::Transaction,
        policy,
    );
    let mut oracle = OracleCompositor::new(expr.clone(), policy);
    let mut fired = 0u64;
    let as_seqs = |cs: &[Arc<EventOccurrence>]| cs.iter().map(|o| o.seq.raw()).collect::<Vec<_>>();
    for (i, ty) in stream.iter().enumerate() {
        let o = Arc::new(EventOccurrence {
            event_type: EventTypeId::new(*ty),
            seq: Timestamp::new(i as u64 + 1),
            at: TimePoint::from_millis(i as u64 + 1),
            txn: Some(TxnId::new(1)),
            top_txn: Some(TxnId::new(1)),
            data: EventData::default(),
            constituents: Vec::new(),
        });
        let r: Vec<Vec<u64>> = real
            .feed(&o)
            .iter()
            .map(|c| as_seqs(&c.constituents))
            .collect();
        let e: Vec<Vec<u64>> = oracle.feed(&o).iter().map(|f| as_seqs(f)).collect();
        fired += r.len() as u64;
        if r != e {
            eprintln!(
                "FAIL: {policy:?} diverged at arrival {i} of stream seed {seed:#x}\n\
                 expr: {expr:?}\n real: {r:?}\n oracle: {e:?}"
            );
            std::process::exit(1);
        }
    }
    let r: Vec<Vec<u64>> = real
        .close_txn(TxnId::new(1))
        .iter()
        .map(|c| as_seqs(&c.constituents))
        .collect();
    let e: Vec<Vec<u64>> = oracle.close().iter().map(|f| as_seqs(f)).collect();
    fired += r.len() as u64;
    if r != e {
        eprintln!(
            "FAIL: {policy:?} diverged at window close of stream seed {seed:#x}\n\
             expr: {expr:?}\n real: {r:?}\n oracle: {e:?}"
        );
        std::process::exit(1);
    }
    fired
}
