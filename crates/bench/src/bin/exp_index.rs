//! Experiment E21 — condition-evaluation cost vs object count.
//!
//! The REACH paper's argument for integrating the active layer *inside*
//! the OODBMS (§3) is that condition evaluation must not degrade as the
//! object population grows — a rule that fires on `temp == x` cannot
//! afford a linear walk over every sensor object. This experiment
//! measures exactly that: equality predicates over an `Int` attribute,
//! once through the sentry-maintained B+Tree index (`Plan::IndexEq`)
//! and once as the same predicate made index-ineligible (`v + 0 == k`,
//! `Plan::ExtentScan`), across populations from 1 k to 100 k objects.
//!
//! The claim gated in CI: indexed lookup throughput is *flat* — within
//! 2× across the whole size range — while the scan degrades linearly.
//!
//! Results land in `BENCH_E21.json`; `gate_lookups_per_s` is the
//! committed conservative floor (the CI bench-check fails if a fresh
//! smoke run lands below 90% of it).
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_index [--smoke]
//! cargo run --release -p reach-bench --bin exp_index -- --torture SEED [ops]
//! ```
//!
//! `--torture` runs the B+Tree crash-point sweep instead: one fault-free
//! oracle run of a split/abort index workload records the WAL frame
//! sequence, then every frame is crashed, rebooted, recovered, and the
//! rebuilt tree compared against the committed-prefix pair set.

use open_oodb::pm::query::Plan;
use open_oodb::Database;
use reach_object::{Value, ValueType};
use reach_storage::torture::{index_oracle_frames, index_torture_at, WorkloadSpec};
use std::time::Instant;

/// Committed throughput floor for the smoke row (lookups/s at the
/// largest smoke population). Conservative: CI machines are slow and
/// shared; the local measurement is an order of magnitude above this.
const GATE_LOOKUPS_PER_S: u64 = 20_000;

struct SizeRow {
    objects: usize,
    build_ms: f64,
    lookups: u64,
    lookups_per_s: f64,
    scans: u64,
    scans_per_s: f64,
}

/// Deterministic key sequence — no wall-clock or OS entropy so runs
/// are comparable.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

fn measure(objects: usize, lookups: u64) -> SizeRow {
    let db = Database::in_memory().expect("db");
    let class = db
        .define_class("Item")
        .attr("v", ValueType::Int, Value::Int(0))
        .define()
        .expect("class");
    // Populate in batches so no single transaction's change log is huge.
    let mut created = 0usize;
    while created < objects {
        let txn = db.begin().expect("begin");
        for _ in 0..(objects - created).min(5_000) {
            db.create_with(txn, class, &[("v", Value::Int(created as i64))])
                .expect("create");
            created += 1;
        }
        db.commit(txn).expect("commit");
    }
    db.metrics().enable();

    let t0 = Instant::now();
    db.create_index(class, "v").expect("index");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    db.indexing_pm()
        .verify_shadow()
        .expect("shadow/persistent divergence");

    // Indexed phase: unique attribute values, so every hit set is 0 or 1
    // objects regardless of population — any throughput slope is index
    // descent cost, not result-set size.
    let mut rng = Lcg(0x1D0C5 ^ objects as u64);
    let txn = db.begin().expect("begin");
    let t0 = Instant::now();
    for _ in 0..lookups {
        let k = rng.next(objects as u64);
        let (hits, plan) = db
            .query_with_plan(txn, &format!("select i from Item i where i.v == {k}"))
            .expect("indexed query");
        assert_eq!(hits.len(), 1);
        assert!(matches!(plan, Plan::IndexEq { .. }), "expected IndexEq");
    }
    let lookups_per_s = lookups as f64 / t0.elapsed().as_secs_f64();

    // Scan phase: same predicate, made index-ineligible. Fewer
    // iterations at large populations — the point is the slope, and a
    // 100 k-object walk per query is exactly the cost being measured.
    let scans = (2_000_000 / objects as u64).clamp(10, 500);
    let t0 = Instant::now();
    for _ in 0..scans {
        let k = rng.next(objects as u64);
        let (hits, plan) = db
            .query_with_plan(txn, &format!("select i from Item i where i.v + 0 == {k}"))
            .expect("scan query");
        assert_eq!(hits.len(), 1);
        assert_eq!(plan, Plan::ExtentScan, "expected ExtentScan");
    }
    let scans_per_s = scans as f64 / t0.elapsed().as_secs_f64();
    db.commit(txn).expect("commit");

    let m = db.metrics();
    assert!(
        m.index.lookups.get() >= lookups,
        "index.lookups metric missed the workload"
    );

    SizeRow {
        objects,
        build_ms,
        lookups,
        lookups_per_s,
        scans,
        scans_per_s,
    }
}

fn run_bench(smoke: bool) {
    let (sizes, lookups): (&[usize], u64) = if smoke {
        (&[1_000, 10_000], 2_000)
    } else {
        (&[1_000, 10_000, 100_000], 20_000)
    };

    println!("E21: equality condition evaluation, index vs extent scan");
    println!(
        "{:>9} {:>10} {:>9} {:>12} {:>7} {:>12} {:>9}",
        "objects", "build-ms", "lookups", "lookups/s", "scans", "scans/s", "speedup"
    );
    let rows: Vec<SizeRow> = sizes.iter().map(|&n| measure(n, lookups)).collect();
    for r in &rows {
        println!(
            "{:>9} {:>10.1} {:>9} {:>12.0} {:>7} {:>12.0} {:>8.1}x",
            r.objects,
            r.build_ms,
            r.lookups,
            r.lookups_per_s,
            r.scans,
            r.scans_per_s,
            r.lookups_per_s / r.scans_per_s
        );
    }

    // The gated claims. Indexed throughput must be flat across the
    // population range (±2×); the scan must be at least 5× slower than
    // the index at the largest population (locally it is >100×).
    let fastest = rows.iter().map(|r| r.lookups_per_s).fold(0.0, f64::max);
    let slowest = rows
        .iter()
        .map(|r| r.lookups_per_s)
        .fold(f64::INFINITY, f64::min);
    assert!(
        fastest / slowest <= 2.0,
        "indexed lookups are not flat: {:.0}..{:.0} lookups/s ({:.2}x) across {:?} objects",
        slowest,
        fastest,
        fastest / slowest,
        sizes
    );
    let last = rows.last().unwrap();
    assert!(
        last.lookups_per_s > 5.0 * last.scans_per_s,
        "index buys <5x over the scan at {} objects ({:.0} vs {:.0}/s)",
        last.objects,
        last.lookups_per_s,
        last.scans_per_s
    );

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"objects\": {}, \"build_ms\": {:.1}, \"lookups\": {}, \
                 \"lookups_per_s\": {:.0}, \"scans\": {}, \"scans_per_s\": {:.0}}}",
                r.objects, r.build_ms, r.lookups, r.lookups_per_s, r.scans, r.scans_per_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"E21\",\n  \"smoke\": {smoke},\n  \
         \"lookups_per_s\": {},\n  \"scan_per_s_at_max\": {},\n  \
         \"flatness\": {:.2},\n  \
         \"gate_lookups_per_s\": {GATE_LOOKUPS_PER_S},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        last.lookups_per_s as u64,
        last.scans_per_s as u64,
        fastest / slowest,
        row_json.join(",\n    ")
    );
    std::fs::write("BENCH_E21.json", &json).expect("write BENCH_E21.json");

    println!(
        "{} ok: {:.0} lookups/s at {} objects ({:.2}x spread across sizes), \
         scan at {:.0}/s",
        if smoke { "smoke" } else { "full" },
        last.lookups_per_s,
        last.objects,
        fastest / slowest,
        last.scans_per_s
    );
}

fn run_torture(seed: u64, ops: usize) {
    let spec = WorkloadSpec {
        seed,
        ops,
        ..Default::default()
    };
    let oracle = index_oracle_frames(&spec).expect("oracle run");
    println!(
        "index torture sweep: seed={seed:#x} ops={ops} -> {} WAL frames (= crash points)",
        oracle.len()
    );
    let start = Instant::now();
    let mut total_redone = 0usize;
    let mut total_undone = 0usize;
    let mut total_losers = 0usize;
    for n in 1..=oracle.len() {
        let result = index_torture_at(&spec, &oracle, n);
        total_redone += result.report.redone;
        total_undone += result.report.undone;
        total_losers += result.report.losers.len();
    }
    let elapsed = start.elapsed();
    println!("crash points verified   {:>10}", oracle.len());
    println!("records redone (total)  {:>10}", total_redone);
    println!("operations undone       {:>10}", total_undone);
    println!("loser txns rolled back  {:>10}", total_losers);
    println!(
        "wall time               {:>10.2?}  ({:.1} ms/crash point)",
        elapsed,
        elapsed.as_secs_f64() * 1e3 / oracle.len() as f64
    );
    println!("every crash point rebuilt the B+Tree to exactly the committed pair set");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--torture") {
        let seed: u64 = args
            .get(pos + 1)
            .map(|s| s.parse().expect("seed must be a u64"))
            .unwrap_or(0xC0FFEE);
        let ops: usize = args
            .get(pos + 2)
            .map(|s| s.parse().expect("ops must be a usize"))
            .unwrap_or(120);
        run_torture(seed, ops);
        return;
    }
    run_bench(args.iter().any(|a| a == "--smoke"));
}
