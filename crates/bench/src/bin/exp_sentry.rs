//! Experiment E4 — sentry overhead (§6.2).
//!
//! The paper defines three categories of sentry overhead: *useful*
//! (always triggers an extension), *useless* (never will), and
//! *potentially useful* (not now, maybe later), and demands that
//! useless overhead be negligible. It also surveys alternative sentry
//! mechanisms. This experiment measures all of it on the running
//! system:
//!
//! 1. per-call cost of an unmonitored method on a system with **no**
//!    monitoring at all (the baseline the in-line wrapper must not
//!    perturb);
//! 2. per-call cost of an unmonitored method while *other* methods are
//!    monitored (potentially-useful overhead: the mask lookup);
//! 3. per-call cost of a monitored method with a live detector
//!    (useful overhead);
//! 4. the same operation through the four mechanisms of §6.2.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_sentry
//! ```

use open_oodb::sentry::{
    AnnounceSentry, EventSink, InlineWrapperSentry, RootClassTrapSentry, SentryMechanism,
    SentryWorld, SurrogateSentry,
};
use reach_bench::{fmt_ns, sensor_world, time_per_op};
use reach_core::event::MethodPhase;
use reach_core::ReachConfig;
use reach_object::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ITERS: u64 = 200_000;

struct Counter(AtomicU64);
impl EventSink for Counter {
    fn on_detected(&self, _t: reach_common::TxnId, _o: reach_common::ObjectId, _m: &str) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    println!("E4: sentry overhead (N = {ITERS} calls per row)\n");
    println!("{:<44} {:>12}", "configuration", "per call");
    println!("{}", "-".repeat(58));

    // ---- overhead categories on the integrated system ----
    // (a) No monitoring anywhere.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        let db = &w.db;
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        let ns = time_per_op(ITERS, || {
            db.invoke(t, oid, "noop", &[]).unwrap();
        });
        db.commit(t).unwrap();
        println!(
            "{:<44} {:>12}",
            "unmonitored (no sentries registered)",
            fmt_ns(ns)
        );
    }
    // (b) Potentially useful: another method is monitored; this one not.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        w.sys
            .define_method_event("other", w.class, "report", MethodPhase::After)
            .unwrap();
        let db = &w.db;
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        let ns = time_per_op(ITERS, || {
            db.invoke(t, oid, "noop", &[]).unwrap();
        });
        db.commit(t).unwrap();
        println!(
            "{:<44} {:>12}",
            "potentially useful (other method monitored)",
            fmt_ns(ns)
        );
    }
    // (c) Useful: this method is monitored, events flow to the router.
    {
        let w = sensor_world(1, ReachConfig::default()).unwrap();
        w.sys
            .define_method_event("mine", w.class, "noop", MethodPhase::After)
            .unwrap();
        let db = &w.db;
        let t = db.begin().unwrap();
        let oid = w.sensors[0];
        let ns = time_per_op(ITERS, || {
            db.invoke(t, oid, "noop", &[]).unwrap();
        });
        db.commit(t).unwrap();
        println!(
            "{:<44} {:>12}",
            "useful (monitored, event object created)",
            fmt_ns(ns)
        );
    }

    // ---- mechanism comparison (§6.2's survey) ----
    println!("\nmechanism comparison (method call through each sentry):");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12}",
        "mechanism", "idle", "active", "traps state", "transparent"
    );
    println!("{}", "-".repeat(70));
    type Setup = Box<
        dyn Fn(
            &SentryWorld,
            reach_common::ClassId,
            reach_common::MethodId,
            reach_common::ObjectId,
        ) -> (Box<dyn SentryMechanism>, reach_common::ObjectId),
    >;
    let mechanisms: Vec<(&str, Setup)> = vec![
        (
            "inline-wrapper",
            Box::new(|world: &SentryWorld, class, method, oid| {
                let s = InlineWrapperSentry::new(SentryWorld {
                    space: Arc::clone(&world.space),
                    dispatcher: Arc::clone(&world.dispatcher),
                    sink: Arc::clone(&world.sink),
                    metrics: Arc::clone(&world.metrics),
                });
                s.monitor(class, method);
                (Box::new(s) as Box<dyn SentryMechanism>, oid)
            }),
        ),
        (
            "root-class-trap",
            Box::new(|world, class, _method, oid| {
                let s = RootClassTrapSentry::new(SentryWorld {
                    space: Arc::clone(&world.space),
                    dispatcher: Arc::clone(&world.dispatcher),
                    sink: Arc::clone(&world.sink),
                    metrics: Arc::clone(&world.metrics),
                });
                s.trap_class(class);
                (Box::new(s) as Box<dyn SentryMechanism>, oid)
            }),
        ),
        (
            "surrogate",
            Box::new(|world, _class, _method, oid| {
                let s = SurrogateSentry::new(SentryWorld {
                    space: Arc::clone(&world.space),
                    dispatcher: Arc::clone(&world.dispatcher),
                    sink: Arc::clone(&world.sink),
                    metrics: Arc::clone(&world.metrics),
                });
                let handle = reach_common::ObjectId::new(u64::MAX - 1);
                s.wrap(handle, oid);
                (Box::new(s) as Box<dyn SentryMechanism>, handle)
            }),
        ),
        (
            "announce",
            Box::new(|world, _class, _method, oid| {
                let s = AnnounceSentry::new(SentryWorld {
                    space: Arc::clone(&world.space),
                    dispatcher: Arc::clone(&world.dispatcher),
                    sink: Arc::clone(&world.sink),
                    metrics: Arc::clone(&world.metrics),
                });
                (Box::new(s) as Box<dyn SentryMechanism>, oid)
            }),
        ),
    ];
    for (name, setup) in mechanisms {
        // Fresh, self-contained world per mechanism.
        let schema = Arc::new(reach_object::Schema::new());
        let (b, mid) = reach_object::ClassBuilder::new(&schema, "Thing").virtual_method("touch");
        let class = b.define().unwrap();
        let methods = Arc::new(reach_object::MethodRegistry::new());
        methods.register_fn(mid, |_| Ok(Value::Null));
        let space = Arc::new(reach_object::ObjectSpace::new(Arc::clone(&schema)));
        let dispatcher = Arc::new(reach_object::Dispatcher::new(Arc::clone(&schema), methods));
        let oid = space.create(reach_common::TxnId::NULL, class).unwrap();
        let sink = Arc::new(Counter(AtomicU64::new(0)));
        let world = SentryWorld {
            space,
            dispatcher,
            sink: Arc::clone(&sink) as Arc<dyn EventSink>,
            metrics: reach_common::MetricsRegistry::new_shared(),
        };
        // Idle cost (mechanism present, this target not wired yet) uses a
        // second object that is never monitored/wrapped.
        let (mech, target) = setup(&world, class, mid, oid);
        let idle_obj = world
            .space
            .create(reach_common::TxnId::NULL, class)
            .unwrap();
        let idle_ns = time_per_op(ITERS, || {
            mech.invoke(reach_common::TxnId::NULL, idle_obj, "touch", &[])
                .unwrap();
        });
        let active_ns = time_per_op(ITERS, || {
            mech.invoke(reach_common::TxnId::NULL, target, "touch", &[])
                .unwrap();
        });
        println!(
            "{:<22} {:>10} {:>10} {:>12} {:>12}",
            name,
            fmt_ns(idle_ns),
            fmt_ns(active_ns),
            if mech.traps_state_access() {
                "yes"
            } else {
                "NO"
            },
            if mech.transparent() { "yes" } else { "NO" },
        );
    }
    println!(
        "\nshape check (paper): useless/idle overhead ≈ unmonitored baseline;\n\
         announce is cheapest but not transparent; surrogate/root-trap miss\n\
         state access — only the in-line wrapper satisfies all of §6.1."
    );
}
