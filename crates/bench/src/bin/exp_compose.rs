//! Experiment E6 — event composition strategies (§6.3, §7).
//!
//! "Ongoing work is concerned with efficient event composition comparing
//! different strategies, with efficient garbage-collection of
//! semi-composed events." Two measurements:
//!
//! 1. **throughput**: N primitive events fanned out to K composite
//!    ECA-managers — synchronous (one thread does all composition, the
//!    monolithic shape) vs parallel (one worker thread per compositor,
//!    the paper's "many small compositors");
//! 2. **GC of semi-composed events**: how many instances accumulate and
//!    what discarding them at transaction end costs.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_compose
//! ```

use reach_bench::sensor_world;
use reach_core::eca::CompositionMode;
use reach_core::event::MethodPhase;
use reach_core::{CompositionScope, ConsumptionPolicy, EventExpr, Lifespan, ReachConfig};
use reach_object::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Returns (application-thread events/s, end-to-end events/s, completions).
/// The paper's claim is about the *application thread*: "the event
/// composition process should be executed asynchronously with normal
/// processing to avoid unnecessary delays" — so the first number is the
/// one that matters; the second shows the total composition backlog cost.
fn throughput(mode: CompositionMode, compositors: usize, events: usize) -> (f64, f64, usize) {
    let w = sensor_world(
        1,
        ReachConfig {
            composition: mode,
            ..Default::default()
        },
    )
    .unwrap();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("prim", w.class, "report", MethodPhase::After)
        .unwrap();
    let mut composite_types = Vec::with_capacity(compositors);
    for k in 0..compositors {
        // Each compositor runs a deliberately *wide* automaton — a
        // disjunction of long histories — so one feed does real work
        // (realistic complex patterns); completions land in the
        // composite manager's local history, which is how we count them
        // (no rules attached — this isolates composition cost).
        let branch = |n: u32| EventExpr::History {
            expr: Arc::new(EventExpr::Primitive(ev)),
            count: n,
        };
        let comp = sys
            .define_composite(
                &format!("comp-{k}"),
                EventExpr::Conjunction(vec![
                    branch(20 + (k as u32 % 5)),
                    branch(25 + (k as u32 % 7)),
                    branch(30 + (k as u32 % 11)),
                    branch(35 + (k as u32 % 13)),
                ]),
                CompositionScope::CrossTransaction,
                Lifespan::Interval(Duration::from_secs(3600)),
                ConsumptionPolicy::Cumulative,
            )
            .unwrap();
        composite_types.push(comp);
    }
    let db = &w.db;
    let oid = w.sensors[0];
    let start = Instant::now();
    let t = db.begin().unwrap();
    for i in 0..events {
        db.invoke(t, oid, "report", &[Value::Int(i as i64)])
            .unwrap();
    }
    // Application-perceived time: the app thread is done here (in
    // parallel mode composition continues on the workers). Commit is
    // excluded because pre-commit flushes the workers by design.
    let app_elapsed = start.elapsed().as_secs_f64();
    db.commit(t).unwrap();
    sys.wait_quiescent();
    let elapsed = start.elapsed().as_secs_f64();
    // Completions = composite occurrences recorded in manager histories
    // (plus those already drained to the global history at EOT).
    let fired: usize = sys.global_history().len()
        + composite_types
            .iter()
            .map(|ty| sys.manager(*ty).unwrap().history.len())
            .sum::<usize>();
    (events as f64 / app_elapsed, events as f64 / elapsed, fired)
}

fn gc_experiment() {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("prim", w.class, "report", MethodPhase::After)
        .unwrap();
    // A same-transaction sequence that never completes (waits for a
    // second event type that never comes after the first), leaving a
    // semi-composed instance per transaction.
    let other = sys
        .define_method_event("never", w.class, "noop", MethodPhase::After)
        .unwrap();
    let _ = sys
        .define_composite(
            "never-completes",
            EventExpr::Sequence(vec![EventExpr::Primitive(ev), EventExpr::Primitive(other)]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let db = &w.db;
    let oid = w.sensors[0];
    let t = db.begin().unwrap();
    for i in 0..1000 {
        db.invoke(t, oid, "report", &[Value::Int(i)]).unwrap();
    }
    let live_before = sys.router().total_live_instances();
    let start = Instant::now();
    db.commit(t).unwrap(); // EOT discards the whole instance pool
    let gc_time = start.elapsed();
    let live_after = sys.router().total_live_instances();
    println!("\nGC of semi-composed events (§3.3):");
    println!("  semi-composed instances before EOT: {live_before}");
    println!("  after EOT:                          {live_after}");
    println!("  commit incl. instance discard:      {gc_time:?}");
    // Cross-transaction validity-interval expiry.
    let w2 = sensor_world(1, ReachConfig::default()).unwrap();
    let ev2 = w2
        .sys
        .define_method_event("p", w2.class, "report", MethodPhase::After)
        .unwrap();
    let other2 = w2
        .sys
        .define_method_event("n", w2.class, "noop", MethodPhase::After)
        .unwrap();
    w2.sys
        .define_composite(
            "windowed",
            EventExpr::Sequence(vec![
                EventExpr::Primitive(ev2),
                EventExpr::Primitive(other2),
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(10)),
            ConsumptionPolicy::Continuous,
        )
        .unwrap();
    for i in 0..500 {
        let t = w2.db.begin().unwrap();
        w2.db
            .invoke(t, w2.sensors[0], "report", &[Value::Int(i)])
            .unwrap();
        w2.db.commit(t).unwrap();
    }
    let live = w2.sys.router().total_live_instances();
    let start = Instant::now();
    w2.sys.advance_time(Duration::from_secs(60)); // expire all windows
    let sweep = start.elapsed();
    println!("  cross-tx instances with open validity windows: {live}");
    println!(
        "  after interval expiry sweep:                   {} ({sweep:?})",
        w2.sys.router().total_live_instances()
    );
}

fn main() {
    println!("E6: event composition strategies");
    println!("(N = 20_000 primitive events fanned out to K compositors)\n");
    println!(
        "{:>4} | {:>15} {:>15} {:>9} | {:>15} {:>15}",
        "K", "sync app ev/s", "par app ev/s", "app gain", "sync total", "par total"
    );
    println!("{}", "-".repeat(86));
    for &k in &[1usize, 2, 4, 8, 16] {
        let (sync_app, sync_total, sync_fired) =
            throughput(CompositionMode::Synchronous, k, 20_000);
        let (par_app, par_total, par_fired) = throughput(CompositionMode::Parallel, k, 20_000);
        assert_eq!(
            sync_fired, par_fired,
            "both strategies must fire the same completions"
        );
        println!(
            "{:>4} | {:>15.0} {:>15.0} {:>8.2}x | {:>15.0} {:>15.0}",
            k,
            sync_app,
            par_app,
            par_app / sync_app,
            sync_total,
            par_total
        );
    }
    gc_experiment();
    println!(
        "\nshape check (paper): in the synchronous (monolithic) strategy the\n\
         application thread pays for all K compositors inline, so its\n\
         throughput falls as K grows; with parallel small compositors the\n\
         application thread only enqueues — its throughput stays nearly\n\
         flat in K (the paper's asynchronous-composition requirement).\n\
         Total end-to-end time is bounded by the slowest compositor and\n\
         the core count. Instance discard at EOT is O(live)."
    );
}
