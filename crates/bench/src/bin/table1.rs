//! Regenerates **Table 1** of the paper: "Supported combinations of
//! event categories and coupling modes."
//!
//! Two independent sources must agree:
//! 1. the static validity matrix (`reach_core::coupling::supported`);
//! 2. the *running system*: for every (category, mode) pair a rule
//!    registration is attempted against a live event type of that
//!    category, and acceptance/rejection is recorded.
//!
//! ```sh
//! cargo run -p reach-bench --bin table1
//! ```

use reach_bench::sensor_world;
use reach_common::TimePoint;
use reach_core::event::MethodPhase;
use reach_core::{
    coupling, CompositionScope, ConsumptionPolicy, CouplingMode, EventCategory, EventExpr,
    Lifespan, ReachConfig, RuleBuilder,
};
use std::time::Duration;

fn main() {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    let sys = &w.sys;
    // One live event type per Table 1 column.
    let method = sys
        .define_method_event("t1-method", w.class, "report", MethodPhase::After)
        .unwrap();
    let temporal = sys
        .define_absolute_event("t1-temporal", TimePoint::from_secs(3600))
        .unwrap();
    let comp1 = sys
        .define_composite(
            "t1-composite-1tx",
            EventExpr::Sequence(vec![
                EventExpr::Primitive(method),
                EventExpr::Primitive(method),
            ]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let comp_n = sys
        .define_composite(
            "t1-composite-ntx",
            EventExpr::Conjunction(vec![
                EventExpr::Primitive(method),
                EventExpr::Primitive(method),
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();

    let columns = [
        (EventCategory::SingleMethod, method, "Single Method"),
        (EventCategory::PurelyTemporal, temporal, "Purely Temporal"),
        (EventCategory::CompositeSingleTx, comp1, "Composite 1 TX"),
        (EventCategory::CompositeMultiTx, comp_n, "Composite n TXs"),
    ];
    let rows = [
        (CouplingMode::Immediate, "Immediate"),
        (CouplingMode::Deferred, "Deferred"),
        (CouplingMode::Detached, "Detached"),
        (CouplingMode::ParallelCausallyDependent, "Par.caus.dep."),
        (CouplingMode::SequentialCausallyDependent, "Seq.caus.dep."),
        (CouplingMode::ExclusiveCausallyDependent, "Exc.caus.dep."),
    ];

    println!("Table 1: Supported combinations of event categories and coupling modes.");
    println!("(runtime registration attempts, cross-checked against the static matrix)\n");
    print!("{:<16}", "");
    for (_, _, label) in &columns {
        print!("{label:<18}");
    }
    println!();
    let mut mismatches = 0;
    for (mode, row_label) in rows {
        print!("{row_label:<16}");
        for (category, event_type, _) in &columns {
            let runtime = sys
                .define_rule(
                    RuleBuilder::new(&format!("probe-{row_label}-{category:?}"))
                        .on(*event_type)
                        .coupling(mode)
                        .then(|_| Ok(())),
                )
                .is_ok();
            let matrix = coupling::supported(*category, mode);
            if runtime != matrix {
                mismatches += 1;
            }
            // Annotate exactly like the paper's table.
            let cell = match (category, mode, runtime) {
                (EventCategory::CompositeSingleTx, CouplingMode::Immediate, false) => "(N)",
                (
                    EventCategory::CompositeMultiTx,
                    CouplingMode::ParallelCausallyDependent,
                    true,
                )
                | (
                    EventCategory::CompositeMultiTx,
                    CouplingMode::SequentialCausallyDependent,
                    true,
                ) => "Y (all commit)",
                (
                    EventCategory::CompositeMultiTx,
                    CouplingMode::ExclusiveCausallyDependent,
                    true,
                ) => "Y (all abort)",
                (_, _, true) => "Y",
                (_, _, false) => "N",
            };
            print!("{cell:<18}");
        }
        println!();
    }
    println!();
    if mismatches == 0 {
        println!("runtime behaviour matches the paper's Table 1 in all 24 cells ✓");
    } else {
        println!("MISMATCH: {mismatches} cells differ from the paper's Table 1 ✗");
        std::process::exit(1);
    }
}
