//! Experiment E9 — crash-point torture sweep of the storage pipeline.
//!
//! Reuses the deterministic harness in `reach_storage::torture`: one
//! fault-free oracle run records the workload's WAL frame sequence, then
//! for every frame N the same workload is crashed at its Nth append,
//! rebooted, recovered, and verified against the oracle prefix. The
//! summary shows how much work recovery did across the sweep — redo
//! volume, loser counts, torn-tail salvage — which is the robustness
//! counterpart of the paper's performance experiments.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_torture [seed] [ops]
//! ```

use reach_storage::torture::{oracle_frames, torture_at, WorkloadSpec};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0xC0FFEE);
    let ops: usize = args
        .next()
        .map(|s| s.parse().expect("ops must be a usize"))
        .unwrap_or(200);
    let spec = WorkloadSpec {
        seed,
        ops,
        ..Default::default()
    };

    let oracle = oracle_frames(&spec).expect("oracle run");
    println!(
        "torture sweep: seed={seed:#x} ops>={ops} -> {} WAL frames (= crash points)",
        oracle.len()
    );

    let start = Instant::now();
    let mut total_redone = 0usize;
    let mut total_undone = 0usize;
    let mut total_losers = 0usize;
    let mut max_losers = 0usize;
    let mut total_salvaged = 0u64;
    for n in 1..=oracle.len() {
        let result = torture_at(&spec, &oracle, n);
        total_redone += result.report.redone;
        total_undone += result.report.undone;
        total_losers += result.report.losers.len();
        max_losers = max_losers.max(result.report.losers.len());
        // Sourced from the rebooted machine's metrics registry, not a
        // parallel counter in the report.
        total_salvaged += result.salvaged_bytes;
    }
    let elapsed = start.elapsed();

    println!("crash points verified   {:>10}", oracle.len());
    println!("records redone (total)  {:>10}", total_redone);
    println!("operations undone       {:>10}", total_undone);
    println!("loser txns rolled back  {:>10}", total_losers);
    println!("max losers at one crash {:>10}", max_losers);
    println!("torn-tail bytes salvaged{:>10}", total_salvaged);
    println!(
        "wall time               {:>10.2?}  ({:.1} ms/crash point)",
        elapsed,
        elapsed.as_secs_f64() * 1e3 / oracle.len() as f64
    );
    println!("every crash point recovered to exactly the committed prefix");
}
