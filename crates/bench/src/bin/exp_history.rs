//! Experiment E12 — distributed vs centralized event histories (§6.3).
//!
//! "The maintenance of a highly distributed history eliminates the
//! bottleneck that would result from centrally logging the occurrence
//! of events." T threads record N events each, either into per-manager
//! local histories (one ring per event type — the REACH design) or into
//! one central, globally locked log (the rejected design).
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_history
//! ```

use reach_common::{EventTypeId, TimePoint, Timestamp, TxnId};
use reach_core::event::{EventData, EventOccurrence};
use reach_core::history::{GlobalHistory, LocalHistory};
use std::sync::Arc;
use std::time::Instant;

const EVENTS_PER_THREAD: u64 = 100_000;

fn occ(ty: u64, seq: u64) -> Arc<EventOccurrence> {
    Arc::new(EventOccurrence {
        event_type: EventTypeId::new(ty),
        seq: Timestamp::new(seq),
        at: TimePoint::ZERO,
        txn: Some(TxnId::new(seq % 8 + 1)),
        top_txn: Some(TxnId::new(seq % 8 + 1)),
        data: EventData::default(),
        constituents: Vec::new(),
    })
}

fn run_distributed(threads: usize) -> f64 {
    // One local history per thread's event type — each thread writes to
    // "its" ECA-manager's ring, contention-free.
    let histories: Vec<Arc<LocalHistory>> = (0..threads)
        .map(|_| Arc::new(LocalHistory::new(1 << 20)))
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let h = Arc::clone(&histories[t]);
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    h.record(occ(t as u64 + 1, i + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (threads as u64 * EVENTS_PER_THREAD) as f64 / start.elapsed().as_secs_f64()
}

fn run_centralized(threads: usize) -> f64 {
    // Every thread appends to the single global log.
    let global = Arc::new(GlobalHistory::new(1 << 22));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let g = Arc::clone(&global);
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    g.absorb(vec![occ(t as u64 + 1, i + 1)]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (threads as u64 * EVENTS_PER_THREAD) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    // Warm up the allocator and page cache so neither variant pays the
    // process's cold-start cost (it distorts the first measurement by
    // an order of magnitude).
    for _ in 0..2 {
        run_distributed(2);
        run_centralized(2);
    }
    println!("E12: distributed per-manager histories vs central log");
    println!("({EVENTS_PER_THREAD} events recorded per thread)\n");
    println!(
        "{:>8} {:>20} {:>20} {:>8}",
        "threads", "distributed (ev/s)", "centralized (ev/s)", "ratio"
    );
    println!("{}", "-".repeat(62));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let best =
        |f: &dyn Fn(usize) -> f64, t: usize| -> f64 { (0..5).map(|_| f(t)).fold(0.0f64, f64::max) };
    for &threads in &[1usize, 2, 4, 8] {
        let d = best(&run_distributed, threads);
        let c = best(&run_centralized, threads);
        println!("{:>8} {:>20.0} {:>20.0} {:>7.2}x", threads, d, c, d / c);
    }
    println!("(best of 5 runs per cell; {cores} cores on this host)");
    println!(
        "\nshape check (paper): the central log serializes all detectors on\n\
         one lock and degrades as threads are added; distributed local\n\
         histories scale near-linearly. The price — a post-EOT collection\n\
         pass into the global history — is paid off the critical path."
    );
}
