//! Experiment E7 — layered vs integrated architecture (§4, quantified).
//!
//! The paper's experience report argues the layered approach is both
//! *incapable* (capability matrix below) and *inefficient*. This
//! experiment measures the efficiency half:
//!
//! 1. method-event detection cost: integrated dispatcher sentry vs the
//!    layered wrapper-subclass announcement;
//! 2. state-change detection: integrated sentry (immediate, O(1) per
//!    write) vs layered polling (O(objects × attrs) per poll, detection
//!    delayed by the polling interval);
//! 3. the capability matrix of §4 as produced by the layered crate.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_layered
//! ```

use reach_bench::{fmt_ns, sensor_world, time_per_op};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, RuleBuilder};
use reach_layered::{capabilities, ClosedOodb, LayeredLayer};
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const ITERS: u64 = 100_000;

fn integrated_method_event() -> f64 {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    let ev = w
        .sys
        .define_method_event("e", w.class, "report", MethodPhase::After)
        .unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    w.sys
        .define_rule(
            RuleBuilder::new("r")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
        )
        .unwrap();
    let db = &w.db;
    let t = db.begin().unwrap();
    let oid = w.sensors[0];
    let ns = time_per_op(ITERS, || {
        db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    });
    db.commit(t).unwrap();
    assert!(hits.load(Ordering::Relaxed) >= ITERS as usize);
    ns
}

fn layered_method_event() -> f64 {
    let closed = Arc::new(ClosedOodb::in_memory().unwrap());
    let (b, report) = closed
        .define_class("Sensor")
        .attr("value", ValueType::Int, Value::Int(0))
        .virtual_method("report");
    let sensor = b.define().unwrap();
    closed.register_method(
        report,
        Arc::new(|ctx| {
            ctx.set("value", ctx.arg(0))?;
            Ok(Value::Null)
        }),
    );
    let layer = LayeredLayer::new(Arc::clone(&closed));
    let active = layer.wrap_class(sensor, "Sensor").unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    let rule = layer.rule(
        "r",
        0,
        |_, _, _, _| Ok(true),
        move |_, _, _, _| {
            h.fetch_add(1, Ordering::Relaxed);
            Ok(())
        },
    );
    layer.define_method_rule(sensor, "report", rule);
    let t = closed.begin().unwrap();
    let oid = closed.create(t, active).unwrap();
    let ns = time_per_op(ITERS, || {
        closed.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    });
    closed.commit(t).unwrap();
    assert!(hits.load(Ordering::Relaxed) >= ITERS as usize);
    ns
}

fn state_change_comparison() {
    println!("\nstate-change detection, {ITERS} writes to 1 of W watched objects:");
    println!(
        "{:>8} {:>18} {:>20} {:>18}",
        "W", "integrated/write", "layered poll cost", "layered/write*"
    );
    println!("{}", "-".repeat(70));
    for &watched in &[10usize, 100, 1000] {
        // Integrated: a state event + rule; detection is part of the write.
        let integrated_ns = {
            let w = sensor_world(watched, ReachConfig::default()).unwrap();
            let ev = w.sys.define_state_event("sc", w.class, "value").unwrap();
            w.sys
                .define_rule(
                    RuleBuilder::new("r")
                        .on(ev)
                        .coupling(CouplingMode::Immediate)
                        .then(|_| Ok(())),
                )
                .unwrap();
            let db = &w.db;
            let t = db.begin().unwrap();
            let oid = w.sensors[0];
            let mut i = 0i64;
            let ns = time_per_op(ITERS / 10, || {
                i += 1;
                db.set_attr(t, oid, "value", Value::Int(i)).unwrap();
            });
            db.commit(t).unwrap();
            ns
        };
        // Layered: writes are invisible; a poll scans all W objects.
        let (poll_ns, per_write_ns) = {
            let closed = Arc::new(ClosedOodb::in_memory().unwrap());
            let b = closed
                .define_class("Sensor")
                .attr("value", ValueType::Int, Value::Int(0))
                .attr("alarms", ValueType::Int, Value::Int(0));
            let sensor = b.define().unwrap();
            let layer = LayeredLayer::new(Arc::clone(&closed));
            let t = closed.begin().unwrap();
            let mut oids = Vec::new();
            for _ in 0..watched {
                let oid = closed.create(t, sensor).unwrap();
                layer.watch(t, oid).unwrap();
                oids.push(oid);
            }
            // One write, then a poll: the poll pays for all W objects.
            let start = Instant::now();
            let polls = 50u64;
            let mut i = 0i64;
            for _ in 0..polls {
                i += 1;
                closed.set_attr(t, oids[0], "value", Value::Int(i)).unwrap();
                let changes = layer.poll(t).unwrap();
                assert_eq!(changes.len(), 1);
            }
            let per_poll = start.elapsed().as_nanos() as f64 / polls as f64;
            closed.commit(t).unwrap();
            (per_poll, per_poll) // every write needs a full poll to be seen
        };
        println!(
            "{:>8} {:>18} {:>20} {:>18}",
            watched,
            fmt_ns(integrated_ns),
            fmt_ns(poll_ns),
            fmt_ns(per_write_ns)
        );
    }
    println!("  (* to observe a change no later than the next write, the layer");
    println!("     must poll per write; detection latency otherwise grows with");
    println!("     the polling interval — integrated detection has none.)");
}

fn main() {
    println!("E7: layered vs integrated active architecture\n");
    let i_ns = integrated_method_event();
    let l_ns = layered_method_event();
    println!("method-event detection + immediate rule ({ITERS} calls):");
    println!(
        "  integrated (dispatcher sentry):      {:>12}",
        fmt_ns(i_ns)
    );
    println!(
        "  layered (wrapper subclass):          {:>12}",
        fmt_ns(l_ns)
    );
    println!(
        "  layered / integrated:                {:>11.2}x",
        l_ns / i_ns
    );
    state_change_comparison();
    println!("\ncapability matrix (§4):");
    println!("{:<44} {:>8} {:>11}", "feature", "layered", "integrated");
    println!("{}", "-".repeat(66));
    for cap in capabilities() {
        println!(
            "{:<44} {:>8} {:>11}",
            cap.feature,
            if cap.layered { "yes" } else { "NO" },
            if cap.integrated { "yes" } else { "NO" }
        );
    }
    println!(
        "\nshape check (paper): the layered system pays comparable or higher\n\
         per-event cost despite doing less (no isolation, no composition),\n\
         cannot see state changes without O(W) polling, and lacks the\n\
         capabilities in the matrix — the reasons REACH went integrated."
    );
}
