//! Experiment E8 — consumption policies (§3.4).
//!
//! Semantics first: the paper's running example — composing
//! `E3 = (E1 ; E2)` with arrivals `e1, e1', e2` — under each SNOOP
//! context, printing which constituents each firing used. Then a
//! throughput comparison of the four policies under a bursty stream.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_consumption
//! ```

use reach_common::{EventTypeId, TimePoint, Timestamp, TxnId};
use reach_core::algebra::{CompositionScope, EventExpr, Lifespan};
use reach_core::compositor::Compositor;
use reach_core::consumption::ConsumptionPolicy;
use reach_core::event::{EventData, EventOccurrence};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn occ(ty: u64, seq: u64) -> Arc<EventOccurrence> {
    Arc::new(EventOccurrence {
        event_type: EventTypeId::new(ty),
        seq: Timestamp::new(seq),
        at: TimePoint::from_millis(seq),
        txn: Some(TxnId::new(1)),
        top_txn: Some(TxnId::new(1)),
        data: EventData::default(),
        constituents: Vec::new(),
    })
}

fn label(seq: u64) -> &'static str {
    match seq {
        1 => "e1",
        2 => "e1'",
        3 => "e2",
        _ => "?",
    }
}

fn main() {
    println!("E8: event consumption policies (§3.4)");
    println!("composing E3 = (E1 ; E2); arrivals: e1, e1', e2\n");
    println!(
        "{:<12} {:<28} paper's context",
        "policy", "firings (constituents)"
    );
    println!("{}", "-".repeat(78));
    let notes = [
        (
            ConsumptionPolicy::Recent,
            "sensor monitoring: most recent e1 wins",
        ),
        (
            ConsumptionPolicy::Chronicle,
            "workflow: chronological consumption",
        ),
        (
            ConsumptionPolicy::Continuous,
            "finance: each e1 opens a window",
        ),
        (ConsumptionPolicy::Cumulative, "all occurrences folded in"),
    ];
    for (policy, note) in notes {
        let comp = Compositor::new(
            EventExpr::Sequence(vec![
                EventExpr::Primitive(EventTypeId::new(1)),
                EventExpr::Primitive(EventTypeId::new(2)),
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            policy,
        );
        let mut firings = Vec::new();
        for (ty, seq) in [(1u64, 1u64), (1, 2), (2, 3)] {
            for f in comp.feed(&occ(ty, seq)) {
                let used: Vec<&str> = f.constituents.iter().map(|o| label(o.seq.raw())).collect();
                firings.push(format!("({})", used.join(", ")));
            }
        }
        println!(
            "{:<12} {:<28} {}",
            policy.to_string(),
            if firings.is_empty() {
                "-".to_string()
            } else {
                firings.join(" ")
            },
            note
        );
    }

    // ---- throughput: well-matched stream (e1 e2 e1 e2 ...) ----
    const N: u64 = 200_000;
    println!("\nthroughput (matched 1:1 stream of {N} events):");
    println!(
        "{:<12} {:>14} {:>12} {:>16}",
        "policy", "events/s", "firings", "live instances"
    );
    println!("{}", "-".repeat(58));
    for policy in ConsumptionPolicy::ALL {
        let comp = Compositor::new(
            EventExpr::Sequence(vec![
                EventExpr::Primitive(EventTypeId::new(1)),
                EventExpr::Primitive(EventTypeId::new(2)),
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            policy,
        );
        let start = Instant::now();
        let mut fired = 0usize;
        for i in 0..N {
            let ty = if i % 2 == 1 { 2 } else { 1 };
            fired += comp.feed(&occ(ty, i + 1)).len();
        }
        let tput = N as f64 / start.elapsed().as_secs_f64();
        println!(
            "{:<12} {:>14.0} {:>12} {:>16}",
            policy.to_string(),
            tput,
            fired,
            comp.live_instances()
        );
    }
    // ---- degradation: initiator-heavy stream (3×e1 per e2) ----
    const M: u64 = 40_000;
    println!("\ndegradation (initiator-heavy 3:1 stream of {M} events):");
    println!(
        "{:<12} {:>14} {:>12} {:>16}",
        "policy", "events/s", "firings", "live instances"
    );
    println!("{}", "-".repeat(58));
    for policy in ConsumptionPolicy::ALL {
        let comp = Compositor::new(
            EventExpr::Sequence(vec![
                EventExpr::Primitive(EventTypeId::new(1)),
                EventExpr::Primitive(EventTypeId::new(2)),
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            policy,
        );
        let start = Instant::now();
        let mut fired = 0usize;
        for i in 0..M {
            let ty = if i % 4 == 3 { 2 } else { 1 };
            fired += comp.feed(&occ(ty, i + 1)).len();
        }
        let tput = M as f64 / start.elapsed().as_secs_f64();
        println!(
            "{:<12} {:>14.0} {:>12} {:>16}",
            policy.to_string(),
            tput,
            fired,
            comp.live_instances()
        );
    }
    println!(
        "  (chronicle/continuous queue unconsumed initiators; the pool is\n\
          capped at {} instances — §3.3 pressure GC — so cost stays bounded)",
        reach_core::compositor::MAX_POOL
    );
    println!(
        "\nshape check: recent/cumulative hold one instance (cheapest);\n\
         chronicle queues unconsumed initiators; continuous opens a window\n\
         per initiator (most instances, most firings) — the ordering the\n\
         SNOOP contexts imply."
    );
}
