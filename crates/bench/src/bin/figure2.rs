//! Regenerates **Figure 2** of the paper: "ECA-oriented architecture
//! (method part)" — the message flow from a detected method call through
//! the primitive ECA-manager, the rules it fires, and the composite
//! ECA-managers it feeds, as an execution trace of the real system.
//!
//! ```sh
//! cargo run -p reach-bench --bin figure2
//! ```

use reach_bench::sensor_world;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, CouplingMode, EventExpr, Lifespan, ReachConfig,
    RuleBuilder,
};
use reach_object::Value;
use std::sync::Arc;

fn main() {
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    let sys = &w.sys;
    // The Figure 2 cast: a method event, a rule fired directly by it,
    // and a composite ECA-manager fed by it (whose completion fires a
    // non-immediate rule through the Rule PM).
    let method_ev = sys
        .define_method_event("method-event", w.class, "report", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("direct-rule")
            .on(method_ev)
            .coupling(CouplingMode::Immediate)
            .then(|_| Ok(())),
    )
    .unwrap();
    let composite = sys
        .define_composite(
            "composite-event",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(method_ev)),
                count: 2,
            },
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("non-immediate-rule")
            .on(composite)
            .coupling(CouplingMode::Deferred)
            .then(|_| Ok(())),
    )
    .unwrap();

    sys.router().trace.enable();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, w.sensors[0], "report", &[Value::Int(1)])
        .unwrap();
    db.invoke(t, w.sensors[0], "report", &[Value::Int(2)])
        .unwrap();
    db.commit(t).unwrap();

    println!("Figure 2: ECA-oriented architecture — message flow trace");
    println!("{}", "=".repeat(64));
    println!("scenario: begin TX; report(1); report(2); commit");
    println!("(two method events; the second completes the composite,");
    println!(" whose deferred rule then runs at pre-commit)\n");
    for (i, line) in sys.router().trace.take().iter().enumerate() {
        println!("{:>3}. {line}", i + 1);
    }
    println!("{}", "=".repeat(64));
    let stats = sys.stats();
    println!(
        "immediate rule runs: {}, deferred rule runs: {}",
        stats.immediate_runs, stats.deferred_runs
    );
}
