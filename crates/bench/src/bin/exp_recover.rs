//! Experiment E17 — bounded recovery under fuzzy checkpointing.
//!
//! Runs the deterministic torture workload at increasing sizes, crashes
//! at the end (the buffer pool dies, the log survives), reboots, and
//! measures what recovery had to do — surviving log bytes, records
//! scanned, operations redone, wall time — once with threshold-driven
//! checkpoints armed (32 KiB of log growth) and once without any
//! checkpointing. The headline is the *shape*: without checkpoints
//! every column grows linearly with ops-since-start; with them the
//! analysis/redo work stays bounded by the checkpoint interval while
//! the recovered state is byte-identical in both modes.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_recover [--smoke]
//! ```

use reach_storage::torture::{run_workload, visible_state, State, WorkloadSpec};
use reach_storage::{MemDisk, StableStorage, StorageManager, WriteAheadLog};
use std::sync::Arc;
use std::time::Instant;

/// Log-growth threshold that arms the checkpointer in the "on" mode.
const CHECKPOINT_BYTES: u64 = 32 * 1024;

struct CaseResult {
    checkpoints: u64,
    surviving_bytes: u64,
    records_scanned: usize,
    redone: usize,
    recover_ms: f64,
    state: State,
}

/// Run `ops` workload operations, crash, reboot, recover. The workload
/// stream is identical for both modes (`manual_checkpoints` off; the
/// byte threshold is the only difference), so the recovered states must
/// match exactly.
fn run_case(ops: usize, checkpoint_bytes: Option<u64>) -> CaseResult {
    let spec = WorkloadSpec {
        seed: 0xE17,
        ops,
        pool_frames: 32,
        manual_checkpoints: false,
    };
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        spec.pool_frames,
    )
    .expect("fresh open");
    sm.set_checkpoint_threshold(checkpoint_bytes);
    run_workload(&sm, &spec).expect("fault-free workload");
    let checkpoints = sm.metrics().ckpt.taken.get();
    drop(sm); // crash: the pool dies with the machine, the log survives

    let image = wal.image().expect("in-memory image");
    let surviving_bytes = image.len() as u64;
    let revived = Arc::new(WriteAheadLog::in_memory_from(image));
    let t0 = Instant::now();
    let (sm2, report) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        revived,
        spec.pool_frames,
    )
    .expect("recovery");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    CaseResult {
        checkpoints,
        surviving_bytes,
        records_scanned: report.records_scanned,
        redone: report.redone,
        recover_ms,
        state: visible_state(&sm2).expect("post-recovery scan"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // 2000 ops is the largest size the torture workload supports (its
    // payloads grow with txn-id digits and in-place updates need room).
    let sizes: &[usize] = if smoke {
        &[250, 1000]
    } else {
        &[250, 500, 1000, 2000]
    };

    println!("E17 — recovery work vs ops-since-checkpoint (threshold {CHECKPOINT_BYTES} B)");
    println!(
        "{:>6}  {:>4}  {:>6}  {:>10}  {:>8}  {:>7}  {:>9}",
        "ops", "mode", "ckpts", "log bytes", "scanned", "redone", "recov ms"
    );
    let mut rows: Vec<(usize, CaseResult, CaseResult)> = Vec::new();
    for &ops in sizes {
        let on = run_case(ops, Some(CHECKPOINT_BYTES));
        let off = run_case(ops, None);
        assert_eq!(
            on.state, off.state,
            "checkpointing changed the recovered state at {ops} ops"
        );
        for (mode, r) in [("on", &on), ("off", &off)] {
            println!(
                "{:>6}  {:>4}  {:>6}  {:>10}  {:>8}  {:>7}  {:>9.3}",
                ops,
                mode,
                r.checkpoints,
                r.surviving_bytes,
                r.records_scanned,
                r.redone,
                r.recover_ms
            );
        }
        rows.push((ops, on, off));
    }

    let (ops, on, off) = rows.last().expect("at least one size");
    println!(
        "at {ops} ops: checkpointing kept {}/{} log bytes ({}x less analysis), redo {} vs {}",
        on.surviving_bytes,
        off.surviving_bytes,
        off.surviving_bytes / on.surviving_bytes.max(1),
        on.redone,
        off.redone
    );
    println!("recovered states identical in both modes at every size");

    if smoke {
        assert!(
            on.checkpoints >= 2,
            "smoke: threshold never armed ({} checkpoints)",
            on.checkpoints
        );
        assert!(
            on.surviving_bytes < off.surviving_bytes / 2,
            "smoke: surviving log not bounded ({} vs {})",
            on.surviving_bytes,
            off.surviving_bytes
        );
        assert!(
            on.redone < off.redone / 2,
            "smoke: redo work not bounded ({} vs {})",
            on.redone,
            off.redone
        );
        // Bounded-vs-linear shape: the no-checkpoint log grows with ops,
        // the checkpointed survivor does not (stays within the interval).
        let (small_ops, small_on, small_off) = &rows[0];
        assert!(
            off.surviving_bytes > small_off.surviving_bytes * 2,
            "smoke: baseline did not grow from {small_ops} to {ops} ops"
        );
        assert!(
            on.surviving_bytes < small_on.surviving_bytes.max(CHECKPOINT_BYTES) * 4,
            "smoke: checkpointed log grew with ops instead of staying bounded"
        );
        println!("smoke assertions passed: recovery work is bounded, state exact");
    }
}
