//! Experiment E15 — observability: the firing-path report and what it
//! costs to produce.
//!
//! Runs the E13 mixed-coupling monitoring workload (`exp_throughput`'s
//! sensors + immediate guard + deferred audit + detached correlated
//! storm alarm) twice over fresh worlds:
//!
//! 1. **registry off** — the instrumented-but-disabled path every record
//!    site takes by default (one relaxed atomic load + branch), which is
//!    the E4 "useless overhead" baseline;
//! 2. **registry on** — spans, histograms and gated counters live —
//!    then dumps the full per-stage metrics report.
//!
//! The difference between the two wall-clock figures is the price of
//! turning observability on; the first figure against `exp_throughput`
//! is the price of having it compiled in at all.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_observe [events]
//! ```

use reach_bench::sensor_world;
use reach_bench::workload::sensor_stream;
use reach_common::Stage;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, Correlation, CouplingMode, EventExpr, Lifespan,
    ReachConfig, RuleBuilder,
};
use reach_object::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SENSORS: usize = 16;
const DEFAULT_EVENTS: usize = 50_000;

/// Build the E13 world and run the telemetry stream through it,
/// returning the wall-clock time of the stream (not the setup).
fn run_workload(events: usize, enable_metrics: bool) -> (reach_bench::SensorWorld, Duration) {
    let w = sensor_world(SENSORS, ReachConfig::default()).unwrap();
    let sys = &w.sys;
    if enable_metrics {
        sys.enable_metrics();
    }
    let ev = sys
        .define_method_event("report", w.class, "report", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("guard")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))
            }),
    )
    .unwrap();
    sys.define_rule(
        RuleBuilder::new("audit")
            .on(ev)
            .coupling(CouplingMode::Deferred)
            .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
            .then(|_| Ok(())),
    )
    .unwrap();
    let anomaly_sig = sys.define_signal("anomaly").unwrap();
    {
        let sys2 = Arc::downgrade(sys);
        sys.define_rule(
            RuleBuilder::new("signal-bridge")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
                .then(move |ctx| {
                    if let Some(sys) = sys2.upgrade() {
                        sys.raise_signal_for(Some(ctx.txn), "anomaly", ctx.receiver(), vec![])?;
                    }
                    Ok(())
                }),
        )
        .unwrap();
    }
    let storm = sys
        .define_composite_correlated(
            "sensor-storm",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(anomaly_sig)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
            Correlation::SameReceiver,
        )
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("storm-alarm")
            .on(storm)
            .coupling(CouplingMode::Detached)
            .then(|_| Ok(())),
    )
    .unwrap();

    let stream = sensor_stream(42, SENSORS, events, 10);
    let start = Instant::now();
    for batch in stream.chunks(100) {
        let t = w.db.begin().unwrap();
        for r in batch {
            w.db.invoke(t, w.sensors[r.sensor], "report", &[Value::Int(r.value)])
                .unwrap();
        }
        w.db.commit(t).unwrap();
    }
    w.sys.wait_quiescent();
    let elapsed = start.elapsed();
    (w, elapsed)
}

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("events must be a usize"))
        .unwrap_or(DEFAULT_EVENTS);

    println!("E15 — observability overhead and report ({SENSORS} sensors, {events} events)");

    let (_off, t_off) = run_workload(events, false);
    println!(
        "registry OFF: {t_off:?}  ({:.0} events/s)",
        events as f64 / t_off.as_secs_f64()
    );

    let (on, t_on) = run_workload(events, true);
    println!(
        "registry ON:  {t_on:?}  ({:.0} events/s)",
        events as f64 / t_on.as_secs_f64()
    );
    let overhead = (t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0;
    println!("enabling the registry cost {overhead:+.1}% wall clock\n");

    let snap = on.sys.metrics_snapshot();
    print!("{}", snap.render());

    // Every stage of the firing path must have been exercised.
    for st in snap.stages.iter() {
        assert!(
            st.count > 0,
            "stage {:?} recorded nothing — the workload missed part of the firing path",
            st.stage.name()
        );
    }
    assert!(snap.txn_commits > 0, "no commits recorded");
    assert!(snap.wal_forces > 0, "no WAL forces recorded");
    assert!(
        snap.sentry_useful.iter().sum::<u64>() > 0,
        "no sentry detections recorded"
    );
    assert!(snap.composites_completed > 0, "no composites completed");
    assert!(snap.immediate_runs > 0, "no immediate firings");
    // The span rings are bounded: a 50k-event run must have truncated.
    let sentry = snap
        .stages
        .iter()
        .find(|s| s.stage == Stage::Sentry)
        .unwrap();
    assert!(
        sentry.recent.len() <= reach_common::obs::SPAN_RING_CAPACITY,
        "span ring exceeded its bound"
    );
    println!("\nall firing-path stages recorded nonzero traversals");
}
