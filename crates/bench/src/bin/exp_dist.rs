//! Experiment E22 — the price of distribution (§7 outlook).
//!
//! For each deployment size (2/4/8 shards) the same update-plus-signal
//! transaction runs in two placements:
//!
//! * **single-shard** — the attribute write and the raised signal land
//!   on one shard, so commit is the ordinary local single-force path;
//! * **cross-shard** — the transaction writes attributes on two
//!   different shards, so commit goes through presumed-abort two-phase
//!   commit (one vote round plus one forced `CoordCommit`).
//!
//! The gap between the two latency columns is the measured cost of the
//! extra WAL forces and the coordinator round; events/s counts signals
//! flowing through the firing pipeline during each phase. Invariants
//! are asserted, not eyeballed: single-shard commits must NOT produce a
//! 2PC gid, cross-shard commits MUST, every raised signal must fire its
//! immediate rule exactly once, and no dead letters may appear.
//!
//! Results land in `BENCH_E22.json` in the working directory; the
//! committed `gate_commits_per_s` is the regression floor checked by
//! `scripts/tier1.sh --bench-check`.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_dist [--smoke]
//! ```

use reach_common::ObjectId;
use reach_core::{CouplingMode, RuleBuilder};
use reach_dist::{DistSystem, DistTxn};
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct PhaseResult {
    mode: &'static str,
    commits: u64,
    elapsed_s: f64,
    p50_us: f64,
    p99_us: f64,
    signals: u64,
}

impl PhaseResult {
    fn commits_per_s(&self) -> f64 {
        self.commits as f64 / self.elapsed_s
    }
    fn events_per_s(&self) -> f64 {
        self.signals as f64 / self.elapsed_s
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// One deployment: `shards` engines, one "Acct" object per shard, a
/// "tick" signal whose immediate rule counts firings.
struct Deployment {
    dist: Arc<DistSystem>,
    objects: Vec<ObjectId>,
    fired: Arc<AtomicU64>,
}

fn build(shards: u32) -> Deployment {
    let dist = DistSystem::in_memory(shards).expect("deployment");
    let fired = Arc::new(AtomicU64::new(0));
    let mut classes = Vec::new();
    for sys in dist.systems() {
        let class = sys
            .db()
            .define_class("Acct")
            .attr("v", ValueType::Int, Value::Int(0))
            .define()
            .expect("class");
        classes.push(class);
        let tick = sys.define_signal("tick").expect("signal");
        let fired = Arc::clone(&fired);
        sys.define_rule(
            RuleBuilder::new("count-tick")
                .on(tick)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    fired.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
        )
        .expect("rule");
    }
    let mut t = dist.begin();
    let objects: Vec<ObjectId> = (0..shards)
        .map(|s| {
            let oid = dist
                .create_on(&mut t, s, classes[s as usize])
                .expect("create");
            dist.persist(&mut t, oid).expect("persist");
            oid
        })
        .collect();
    dist.commit(t).expect("setup commit");
    Deployment {
        dist,
        objects,
        fired,
    }
}

/// Run `txns` transactions, each raising `signals_per_txn` ticks on its
/// primary object, writing its attribute, and — when `cross` — also
/// writing the attribute of an object on the *next* shard, forcing a
/// two-phase commit.
fn run_phase(dep: &Deployment, txns: u64, signals_per_txn: u64, cross: bool) -> PhaseResult {
    let dist = &dep.dist;
    let shards = dist.shard_count();
    let mut lat_us = Vec::with_capacity(txns as usize);
    let fired_before = dep.fired.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for i in 0..txns {
        let primary = dep.objects[(i % shards as u64) as usize];
        let t_start = Instant::now();
        let mut t: DistTxn = dist.begin();
        for k in 0..signals_per_txn {
            dist.raise_signal(
                &mut t,
                "tick",
                primary,
                vec![Value::Int((i * 8 + k) as i64)],
            )
            .expect("raise");
        }
        dist.set_attr(&mut t, primary, "v", Value::Int(i as i64))
            .expect("set primary");
        if cross {
            let secondary = dep.objects[((i + 1) % shards as u64) as usize];
            dist.set_attr(&mut t, secondary, "v", Value::Int(i as i64))
                .expect("set secondary");
        }
        let gid = dist.commit(t).expect("commit");
        lat_us.push(t_start.elapsed().as_secs_f64() * 1e6);
        if cross {
            assert!(gid.is_some(), "cross-shard commit skipped 2PC (txn {i})");
        } else {
            assert!(gid.is_none(), "single-shard commit ran 2PC (txn {i})");
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    dist.wait_quiescent();
    let signals = txns * signals_per_txn;
    let fired = dep.fired.load(Ordering::Relaxed) - fired_before;
    assert_eq!(
        fired, signals,
        "immediate rule fired {fired} times for {signals} signals"
    );
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PhaseResult {
        mode: if cross { "cross" } else { "single" },
        commits: txns,
        elapsed_s,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        signals,
    }
}

fn json_phase(r: &PhaseResult) -> String {
    format!(
        "{{\"commits\": {}, \"commits_per_s\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"events_per_s\": {:.0}}}",
        r.commits,
        r.commits_per_s(),
        r.p50_us,
        r.p99_us,
        r.events_per_s()
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (txns, signals_per_txn, shard_counts): (u64, u64, &[u32]) = if smoke {
        (300, 2, &[2, 4])
    } else {
        (2_000, 2, &[2, 4, 8])
    };

    println!("E22: single-shard vs cross-shard (2PC) commit, {txns} txns per phase");
    println!(
        "{:>6} {:>7} {:>11} {:>9} {:>9} {:>10}",
        "shards", "mode", "commits/s", "p50µs", "p99µs", "events/s"
    );

    let mut rows = Vec::new();
    let mut headline_cross_per_s = 0.0f64;
    let mut headline_events_per_s = 0.0f64;
    for &shards in shard_counts {
        let dep = build(shards);
        let single = run_phase(&dep, txns, signals_per_txn, false);
        let cross = run_phase(&dep, txns, signals_per_txn, true);
        for r in [&single, &cross] {
            println!(
                "{:>6} {:>7} {:>11.0} {:>9.1} {:>9.1} {:>10.0}",
                shards,
                r.mode,
                r.commits_per_s(),
                r.p50_us,
                r.p99_us,
                r.events_per_s()
            );
        }
        let letters = dep.dist.dead_letters();
        assert!(letters.is_empty(), "dead letters: {letters:?}");
        if shards == 2 {
            headline_cross_per_s = cross.commits_per_s();
            headline_events_per_s = cross.events_per_s();
        }
        rows.push(format!(
            "    {{\"shards\": {shards}, \"single\": {}, \"cross\": {}}}",
            json_phase(&single),
            json_phase(&cross)
        ));
    }

    // The committed gate is checked against the 2-shard cross-shard
    // commit rate — the headline cost this experiment exists to bound.
    let gate = 3_000u64;
    let json = format!(
        "{{\n  \"experiment\": \"E22\",\n  \"smoke\": {smoke},\n  \
         \"commits_per_s\": {headline_cross_per_s:.0},\n  \
         \"events_per_s\": {headline_events_per_s:.0},\n  \
         \"gate_commits_per_s\": {gate},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_E22.json", &json).expect("write BENCH_E22.json");

    println!(
        "{} ok: 2-shard cross-shard commits at {:.0}/s ({:.0} events/s) with \
         every invariant holding",
        if smoke { "smoke" } else { "full" },
        headline_cross_per_s,
        headline_events_per_s
    );
}
