//! Experiment E20 — snapshot reads never block.
//!
//! Writers churn single-attribute update transactions (exclusive locks,
//! WAL commits) over a pool of hot objects while reader threads time
//! every read transaction end to end. The same reader workload runs
//! twice: once as ordinary locking transactions (shared locks — each
//! read queues behind whichever writer holds the object) and once as
//! MVCC snapshot transactions (`begin_read_only` — a stamp and a
//! version-chain walk, zero lock-manager traffic). The paper's §4
//! motivation for an integrated active OODBMS is exactly this tail:
//! condition evaluation must not stall behind update transactions.
//!
//! The zero-lock claim is *asserted*, not eyeballed: writers count
//! their own exclusive grants, and the metrics registry's global
//! `lock_acquisitions` delta over the snapshot phase must equal the
//! writers' count exactly — any excess is a reader touching the lock
//! manager.
//!
//! Results land in `BENCH_E20.json` in the working directory.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_snapshot [--smoke]
//! ```

use open_oodb::Database;
use reach_common::ObjectId;
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct PhaseResult {
    mode: &'static str,
    reads: u64,
    elapsed_s: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    writer_commits: u64,
    reader_lock_grants: u64,
}

impl PhaseResult {
    fn reads_per_s(&self) -> f64 {
        self.reads as f64 / self.elapsed_s
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// One measured phase: `readers` threads each timing `reads_each` read
/// transactions against `oids`, while one writer per object commits
/// updates in a loop until the readers finish.
fn run_phase(
    db: &Arc<Database>,
    oids: &Arc<Vec<ObjectId>>,
    readers: usize,
    reads_each: u64,
    snapshot: bool,
) -> PhaseResult {
    let stop = Arc::new(AtomicBool::new(false));
    let writer_commits = Arc::new(AtomicU64::new(0));
    let grants_before = db.metrics().txn.lock_acquisitions.get();

    let t0 = Instant::now();
    let mut writers = Vec::new();
    for (w, &oid) in oids.iter().enumerate() {
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let commits = Arc::clone(&writer_commits);
        writers.push(std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let txn = db.begin().expect("writer begin");
                db.set_attr(txn, oid, "v", Value::Int((w as i64) << 32 | i))
                    .expect("writer set");
                db.commit(txn).expect("writer commit");
                commits.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }

    let mut handles = Vec::new();
    for r in 0..readers {
        let db = Arc::clone(db);
        let oids = Arc::clone(oids);
        handles.push(std::thread::spawn(move || {
            let mut lat_us = Vec::with_capacity(reads_each as usize);
            for i in 0..reads_each {
                let oid = oids[(r as u64 + i) as usize % oids.len()];
                let t = Instant::now();
                let txn = if snapshot {
                    db.begin_read_only().expect("reader begin")
                } else {
                    db.begin().expect("reader begin")
                };
                let v = db.get_attr(txn, oid, "v").expect("reader get");
                db.commit(txn).expect("reader commit");
                lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                assert!(matches!(v, Value::Int(_)), "unexpected value {v:?}");
            }
            lat_us
        }));
    }
    let mut lat_us: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader thread"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer thread");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let writer_commits = writer_commits.load(Ordering::Relaxed);
    let grants = db.metrics().txn.lock_acquisitions.get() - grants_before;
    // Every writer transaction takes exactly one exclusive grant; the
    // remainder of the delta is reader lock traffic.
    let reader_lock_grants = grants - writer_commits;

    PhaseResult {
        mode: if snapshot { "snapshot" } else { "locking" },
        reads: lat_us.len() as u64,
        elapsed_s,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        max_us: lat_us.last().copied().unwrap_or(0.0),
        writer_commits,
        reader_lock_grants,
    }
}

fn print_row(r: &PhaseResult) {
    println!(
        "{:>9} {:>8} {:>11.0} {:>9.1} {:>9.1} {:>10.1} {:>13} {:>12}",
        r.mode,
        r.reads,
        r.reads_per_s(),
        r.p50_us,
        r.p99_us,
        r.max_us,
        r.writer_commits,
        r.reader_lock_grants,
    );
}

fn json_mode(r: &PhaseResult) -> String {
    format!(
        "{{\"reads\": {}, \"reads_per_s\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"max_us\": {:.1}, \"writer_commits\": {}, \"reader_lock_grants\": {}}}",
        r.reads,
        r.reads_per_s(),
        r.p50_us,
        r.p99_us,
        r.max_us,
        r.writer_commits,
        r.reader_lock_grants
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (writers, readers, reads_each) = if smoke {
        (2usize, 2usize, 200u64)
    } else {
        (4, 4, 2_000)
    };

    let db = Database::in_memory_realtime().expect("db");
    let class = db
        .define_class("Hot")
        .attr("v", ValueType::Int, Value::Int(0))
        .define()
        .expect("class");
    let setup = db.begin().expect("setup txn");
    let oids: Vec<ObjectId> = (0..writers)
        .map(|_| db.create(setup, class).expect("create"))
        .collect();
    db.commit(setup).expect("setup commit");
    let oids = Arc::new(oids);
    db.metrics().enable();

    println!("E20: reader latency while {writers} writers churn (µs per read txn)");
    println!(
        "{:>9} {:>8} {:>11} {:>9} {:>9} {:>10} {:>13} {:>12}",
        "mode", "reads", "reads/s", "p50", "p99", "max", "writer-txns", "reader-locks"
    );

    let locking = run_phase(&db, &oids, readers, reads_each, false);
    print_row(&locking);
    let snapshot = run_phase(&db, &oids, readers, reads_each, true);
    print_row(&snapshot);

    let mut failed = false;
    if snapshot.reader_lock_grants != 0 {
        eprintln!(
            "violation: snapshot readers took {} lock(s); must be zero",
            snapshot.reader_lock_grants
        );
        failed = true;
    }
    if locking.reader_lock_grants != locking.reads {
        eprintln!(
            "violation: locking readers took {} grants for {} reads; metrics accounting broken",
            locking.reader_lock_grants, locking.reads
        );
        failed = true;
    }
    if snapshot.writer_commits == 0 || locking.writer_commits == 0 {
        eprintln!("violation: writers starved; phases are not measuring contention");
        failed = true;
    }

    let json = format!(
        "{{\n  \"experiment\": \"E20\",\n  \"writers\": {writers},\n  \"readers\": {readers},\n  \
         \"reads_per_reader\": {reads_each},\n  \"smoke\": {smoke},\n  \
         \"locking\": {},\n  \"snapshot\": {}\n}}\n",
        json_mode(&locking),
        json_mode(&snapshot)
    );
    std::fs::write("BENCH_E20.json", &json).expect("write BENCH_E20.json");

    if failed {
        std::process::exit(1);
    }
    println!(
        "{} ok: snapshot readers took 0 locks across {} reads while writers \
         committed {}; locking p99 {:.1}µs vs snapshot p99 {:.1}µs",
        if smoke { "smoke" } else { "full" },
        snapshot.reads,
        snapshot.writer_commits,
        locking.p99_us,
        snapshot.p99_us
    );
}
