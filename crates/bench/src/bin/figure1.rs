//! Regenerates **Figure 1** of the paper: the Open OODB architecture —
//! policy managers plugged on the meta-architecture module, with the
//! support modules underneath — as a manifest of the *running* system.
//!
//! ```sh
//! cargo run -p reach-bench --bin figure1
//! ```

use open_oodb::Database;

fn main() {
    let db = Database::in_memory().unwrap();
    println!("Figure 1: Open OODB Architecture (live manifest)");
    println!("{}", "=".repeat(56));
    for line in db.manifest() {
        println!("{line}");
    }
    println!("{}", "=".repeat(56));
    println!("dimensions plugged: {:?}", db.meta().dimensions());
    println!(
        "\nExtender modules (the REACH active layer) plug in exactly like\n\
         the PMs above: `ReachSystem::new(db, ..)` registers its event\n\
         detectors on the same sentry hooks — run `figure2` to see them."
    );
}
