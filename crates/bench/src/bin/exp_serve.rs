//! Experiment E19 — server overload behaviour.
//!
//! Drives waves of concurrent connections through the network layer,
//! ramping past the admission bound, and reports — per wave — how many
//! connections were served vs shed, request throughput, and p50/p99
//! request latency *for admitted clients*. The properties under test:
//!
//! * overload is handled by **explicit shedding** (`Overloaded`
//!   rejections at admission), never by silent queueing;
//! * latency for admitted clients stays bounded while excess load is
//!   shed — the overload wave's p99 should look like the at-capacity
//!   wave's, not grow with offered load;
//! * the server never panics.
//!
//! Each client owns a private named root, so the measurement isolates
//! the network/session layer rather than lock contention.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_serve [--smoke]
//! ```

use open_oodb::Database;
use reach_common::ReachError;
use reach_core::{ReachConfig, ReachSystem};
use reach_object::{Value, ValueType};
use reach_server::{serve, Client, ClientConfig, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct WaveResult {
    clients: usize,
    served: u64,
    shed: u64,
    requests: u64,
    elapsed_s: f64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One wave: `clients` threads each try to hold a session for `ops`
/// begin/set/get/commit cycles. A thread that is shed at admission
/// records the rejection and exits — explicit shedding is the policy
/// being measured, so no retry.
fn run_wave(addr: &str, clients: usize, ops: u64) -> WaveResult {
    let served = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let requests = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.to_string();
            let served = Arc::clone(&served);
            let shed = Arc::clone(&shed);
            let requests = Arc::clone(&requests);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    deadline_ms: 2_000,
                    max_attempts: 1,
                    ..ClientConfig::default()
                };
                let mut c = match Client::connect(&addr, cfg) {
                    Ok(c) => c,
                    Err(ReachError::Overloaded(_)) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(e) => panic!("client {i}: unexpected connect error {e:?}"),
                };
                let root = match c.fetch_root(&format!("r{i}")) {
                    Ok(o) => o,
                    Err(e) => panic!("client {i}: fetch_root failed: {e:?}"),
                };
                let mut local = Vec::with_capacity(ops as usize * 4);
                for n in 0..ops {
                    let step = |c: &mut Client, local: &mut Vec<u64>| -> Result<(), ReachError> {
                        let q0 = Instant::now();
                        let t = c.begin()?;
                        local.push(q0.elapsed().as_micros() as u64);
                        let q = Instant::now();
                        c.set(t, root, "v", Value::Int(n as i64))?;
                        local.push(q.elapsed().as_micros() as u64);
                        let q = Instant::now();
                        let _ = c.get(t, root, "v")?;
                        local.push(q.elapsed().as_micros() as u64);
                        let q = Instant::now();
                        c.commit(t)?;
                        local.push(q.elapsed().as_micros() as u64);
                        Ok(())
                    };
                    match step(&mut c, &mut local) {
                        Ok(()) => {
                            requests.fetch_add(4, Ordering::Relaxed);
                        }
                        Err(e) => panic!("client {i} op {n}: {e:?}"),
                    }
                }
                served.fetch_add(1, Ordering::Relaxed);
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread must not panic");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    WaveResult {
        clients,
        served: served.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        requests: requests.load(Ordering::Relaxed),
        elapsed_s,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn print_row(r: &WaveResult) {
    println!(
        "{:>8} {:>7} {:>6} {:>9} {:>11.0} {:>9} {:>9}",
        r.clients,
        r.served,
        r.shed,
        r.requests,
        r.requests as f64 / r.elapsed_s,
        r.p50_us,
        r.p99_us,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (max_sessions, waves, ops): (usize, Vec<usize>, u64) = if smoke {
        (8, vec![4, 8, 24], 40)
    } else {
        (64, vec![32, 64, 128, 256], 200)
    };

    let db = Database::in_memory().expect("in-memory db");
    db.define_class("Res")
        .attr("v", ValueType::Int, Value::Int(0))
        .define()
        .expect("class");
    let sys = ReachSystem::new(db, ReachConfig::default());
    sys.metrics().enable();
    // One private root per potential client in the largest wave.
    {
        let db = sys.db();
        let class = db.schema().class_by_name("Res").expect("class");
        let t = db.begin().expect("begin");
        for i in 0..*waves.iter().max().expect("non-empty ramp") {
            let oid = db.create(t, class).expect("create");
            db.persist_named(t, &format!("r{i}"), oid).expect("persist");
        }
        db.commit(t).expect("commit");
    }
    let handle = serve(
        Arc::clone(&sys),
        ServerConfig {
            max_sessions,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    println!("E19: server overload ramp (admission bound = {max_sessions} sessions)");
    println!(
        "{:>8} {:>7} {:>6} {:>9} {:>11} {:>9} {:>9}",
        "clients", "served", "shed", "requests", "requests/s", "p50(us)", "p99(us)"
    );
    let results: Vec<WaveResult> = waves
        .iter()
        .map(|&c| {
            let r = run_wave(&addr, c, ops);
            print_row(&r);
            r
        })
        .collect();

    let m = &sys.metrics().server;
    println!(
        "server: sessions={} rejected={} requests={} errors={} panics={}",
        m.sessions_opened.get(),
        m.admissions_rejected.get(),
        m.requests.get(),
        m.request_errors.get(),
        m.panics.get(),
    );
    handle.shutdown();

    let mut failed = false;
    let overload = results.last().expect("at least one wave");
    if overload.shed == 0 {
        eprintln!("violation: the overload wave shed nothing — admission bound not enforced");
        failed = true;
    }
    if overload.served == 0 {
        eprintln!("violation: the overload wave served nobody — shedding everything");
        failed = true;
    }
    if results.iter().any(|r| r.served > 0 && r.p99_us > 2_000_000) {
        eprintln!("violation: p99 for admitted clients exceeded the 2 s deadline budget");
        failed = true;
    }
    if m.panics.get() > 0 {
        eprintln!("violation: server panicked under load");
        failed = true;
    }
    // Explicit-rejection accounting: every shed connection corresponds
    // to an admission rejection the server counted.
    if m.admissions_rejected.get() < overload.shed {
        eprintln!("violation: clients saw more Overloaded errors than the server recorded");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!("smoke ok: overload shed explicitly, admitted p99 bounded, no panics");
    }
}
