//! Experiment E10 — rule-firing selectivity (§6.4).
//!
//! "To make rule firing efficient the crucial part is to minimize the
//! search for the rule that is to be fired." ECA-managers are dedicated
//! per event type, so lookup is O(rules on this event). The rejected
//! alternative — one global rule list scanned per event — is O(all
//! rules). This experiment registers R rules spread over R/10 event
//! types and measures the per-event firing cost both ways.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_dispatch
//! ```

use reach_bench::{fmt_ns, sensor_world, time_per_op};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, RuleBuilder};
use reach_object::{Value, ValueType};
use std::sync::Arc;

const ITERS: u64 = 50_000;

/// ECA-manager dispatch: R rules over M method-event types; fire one.
fn eca_dispatch(total_rules: usize) -> f64 {
    let db = open_oodb::Database::in_memory().unwrap();
    // M classes, each with one monitored method and 10 rules.
    let types = (total_rules / 10).max(1);
    let mut class_ids = Vec::new();
    for m in 0..types {
        let (b, mid) = db
            .define_class(&format!("C{m}"))
            .attr("v", ValueType::Int, Value::Int(0))
            .virtual_method("go");
        let class = b.define().unwrap();
        db.methods().register_fn(mid, |_| Ok(Value::Null));
        class_ids.push(class);
    }
    let sys = reach_core::ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    for (m, class) in class_ids.iter().enumerate() {
        let ev = sys
            .define_method_event(&format!("ev{m}"), *class, "go", MethodPhase::After)
            .unwrap();
        for r in 0..(total_rules / types) {
            sys.define_rule(
                RuleBuilder::new(&format!("r{m}-{r}"))
                    .on(ev)
                    .coupling(CouplingMode::Immediate)
                    .when(|_| Ok(false)) // measure lookup + condition only
                    .then(|_| Ok(())),
            )
            .unwrap();
        }
    }
    let t = db.begin().unwrap();
    let oid = db.create(t, class_ids[0]).unwrap();
    let ns = time_per_op(ITERS, || {
        db.invoke(t, oid, "go", &[]).unwrap();
    });
    db.commit(t).unwrap();
    ns
}

/// The rejected design: a global rule list; every event scans all R
/// rules, testing each for applicability.
fn global_scan(total_rules: usize) -> f64 {
    struct FlatRule {
        event_key: usize,
        _priority: i32,
    }
    let rules: Vec<FlatRule> = (0..total_rules)
        .map(|i| FlatRule {
            event_key: i / 10,
            _priority: 0,
        })
        .collect();
    let target_key = 0usize;
    time_per_op(ITERS * 4, || {
        let mut matched = 0usize;
        for r in &rules {
            if r.event_key == target_key {
                matched += 1;
            }
        }
        std::hint::black_box(matched);
    })
}

fn main() {
    println!("E10: rule dispatch — per-event-type ECA-managers vs global scan");
    println!("(R rules over R/10 event types; one event fires; its 10 rules'");
    println!(" conditions evaluate to false)\n");
    println!(
        "{:>8} {:>18} {:>22}",
        "rules", "ECA-manager/event", "global-scan lookup only"
    );
    println!("{}", "-".repeat(52));
    for &r in &[10usize, 100, 1_000, 10_000] {
        let eca = eca_dispatch(r);
        let scan = global_scan(r);
        println!("{:>8} {:>18} {:>22}", r, fmt_ns(eca), fmt_ns(scan));
    }
    // Baseline: the same world with zero rules on the fired event.
    let w = sensor_world(1, ReachConfig::default()).unwrap();
    let db = &w.db;
    let t = db.begin().unwrap();
    let oid = w.sensors[0];
    let base = time_per_op(ITERS, || {
        db.invoke(t, oid, "noop", &[]).unwrap();
    });
    db.commit(t).unwrap();
    println!("{:>8} {:>18}   (unmonitored baseline)", "-", fmt_ns(base));
    println!(
        "\nshape check (paper): ECA-manager cost is flat in the total rule\n\
         count (only this event's rules are touched); the global scan's\n\
         *lookup alone* grows linearly with R and overtakes the entire\n\
         integrated dispatch well before 10k rules."
    );
}
