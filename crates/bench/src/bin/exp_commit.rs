//! Experiment E16 — group-commit scaling.
//!
//! Sweeps committer threads over a file-backed storage manager twice:
//! once with the WAL's group-commit sequencer on (committers share one
//! `sync_data` per batch) and once with it off (the pre-group baseline,
//! a private sync per commit). Each committer runs short write
//! transactions back to back; the interesting numbers are
//! committed-txn/s and forces/commit — the inverse batching factor,
//! read from the same `MetricsRegistry` the rest of the stack reports
//! into. With one thread the two modes are equivalent (every commit
//! leads its own force); with many threads the baseline flatlines on
//! fsync while group commit amortizes it.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_commit [--smoke]
//! ```

use reach_common::TxnId;
use reach_storage::StorageManager;
use std::sync::Arc;
use std::time::Instant;

struct CaseResult {
    threads: usize,
    group: bool,
    commits: u64,
    elapsed_s: f64,
    forces: u64,
}

impl CaseResult {
    fn commits_per_s(&self) -> f64 {
        self.commits as f64 / self.elapsed_s
    }
    fn forces_per_commit(&self) -> f64 {
        self.forces as f64 / self.commits as f64
    }
}

/// One measured case: `threads` committers, `commits_each` short write
/// transactions per committer, group commit on or off.
fn run_case(dir: &std::path::Path, threads: usize, commits_each: u64, group: bool) -> CaseResult {
    let case_dir = dir.join(format!(
        "t{threads}-{}",
        if group { "group" } else { "base" }
    ));
    std::fs::create_dir_all(&case_dir).expect("case dir");
    let sm = Arc::new(StorageManager::open(&case_dir, 256).expect("open"));
    sm.metrics().enable();
    sm.wal().set_group_commit(group);
    sm.create_segment("commits").expect("segment");
    let forces_before = sm.metrics().wal.forces.get();

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let sm = Arc::clone(&sm);
        handles.push(std::thread::spawn(move || {
            let seg = sm.segment("commits").expect("segment");
            for i in 0..commits_each {
                // Distinct id spaces per thread; id 0 is reserved.
                let txn = TxnId::new(((t as u64) << 32) | (i + 1));
                sm.begin(txn).expect("begin");
                let payload = format!("committer {t} txn {i} {:>40}", i);
                sm.insert(txn, seg, payload.as_bytes()).expect("insert");
                sm.commit(txn).expect("commit");
            }
        }));
    }
    for h in handles {
        h.join().expect("committer thread");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let forces = sm.metrics().wal.forces.get() - forces_before;
    let commits = threads as u64 * commits_each;

    // Sanity: every committed insert is readable.
    let seg = sm.segment("commits").expect("segment");
    let visible = sm.scan(seg).expect("scan").len() as u64;
    assert_eq!(visible, commits, "committed inserts missing after the run");

    CaseResult {
        threads,
        group,
        commits,
        elapsed_s,
        forces,
    }
}

fn print_row(r: &CaseResult) {
    println!(
        "{:>8} {:>6} {:>9} {:>12.0} {:>8} {:>14.3} {:>10.1}",
        r.threads,
        if r.group { "group" } else { "base" },
        r.commits,
        r.commits_per_s(),
        r.forces,
        r.forces_per_commit(),
        1.0 / r.forces_per_commit(),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dir = std::env::temp_dir().join(format!("reach-e16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("E16: group-commit scaling (file-backed WAL, 1 insert/txn)");
    println!(
        "{:>8} {:>6} {:>9} {:>12} {:>8} {:>14} {:>10}",
        "threads", "mode", "commits", "commits/s", "forces", "forces/commit", "batching"
    );

    if smoke {
        // CI gate: correctness + the batching invariant, small enough
        // to finish in seconds. 4 threads must show real batching.
        let mut failed = false;
        for &(threads, group) in &[(1usize, true), (4, true), (4, false)] {
            let r = run_case(&dir, threads, 24, group);
            print_row(&r);
            if r.forces == 0 {
                eprintln!("smoke violation: no force recorded at all");
                failed = true;
            }
            if r.group && r.threads > 1 && r.forces_per_commit() > 1.0 {
                eprintln!(
                    "smoke violation: group mode at {} threads syncs more than once per commit",
                    r.threads
                );
                failed = true;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        if failed {
            std::process::exit(1);
        }
        println!("smoke ok: group commit batches and loses nothing");
        return;
    }

    let commits_each = 200;
    let mut group_at_8 = None;
    let mut base_at_8 = None;
    for &threads in &[1usize, 2, 4, 8, 16] {
        for group in [false, true] {
            let r = run_case(&dir, threads, commits_each, group);
            print_row(&r);
            if threads == 8 {
                if group {
                    group_at_8 = Some((r.commits_per_s(), r.forces_per_commit()));
                } else {
                    base_at_8 = Some(r.commits_per_s());
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    if let (Some((g_tps, g_fpc)), Some(b_tps)) = (group_at_8, base_at_8) {
        println!(
            "at 8 threads: {g_fpc:.3} forces/commit (batching {:.1}x), \
             {:.2}x the baseline's committed-txn/s",
            1.0 / g_fpc,
            g_tps / b_tps
        );
    }
}
