//! The four sentry mechanisms §6.2 surveys, behind one interface.
//!
//! "Many sentry-like mechanisms exist in a variety of domains" — the
//! paper weighs hardware interrupts, virtual-memory traps, dispatch
//! redefinition, root-class traps, surrogate objects and in-line
//! wrappers, and Open OODB picks the in-line wrapper. We implement the
//! four that are meaningful in a safe-Rust runtime so experiment E4 can
//! *measure* the trade-offs the paper argues qualitatively:
//!
//! | mechanism        | transparent | traps state | per-call cost when idle |
//! |------------------|------------|-------------|---------------------------|
//! | in-line wrapper  | yes        | yes (space) | one atomic load           |
//! | root-class trap  | yes        | no          | hierarchy walk, always    |
//! | surrogate object | yes        | **no**      | identity-map indirection  |
//! | announce         | **no**     | n/a         | zero (app must announce)  |
//!
//! Each mechanism reports observed calls to an [`EventSink`].

use reach_common::sync::RwLock;
use reach_common::{ClassId, MethodId, MetricsRegistry, ObjectId, Result, TxnId};
use reach_object::{Dispatcher, ObjectSpace, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Consumer of detected invocation events.
pub trait EventSink: Send + Sync {
    fn on_detected(&self, txn: TxnId, oid: ObjectId, method: &str);
}

/// A way of detecting method invocations.
pub trait SentryMechanism: Send + Sync {
    fn name(&self) -> &'static str;
    /// Invoke a method through this mechanism.
    fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value>;
    /// Whether direct state access is also trapped (§4: surrogates and
    /// root-class traps miss it, which "would cause the behavioral
    /// extensions to be omitted").
    fn traps_state_access(&self) -> bool;
    /// Whether applications keep their source unchanged (the announce
    /// mechanism "forces applications to announce the events").
    fn transparent(&self) -> bool;
}

/// Shared world the mechanisms operate on.
pub struct SentryWorld {
    pub space: Arc<ObjectSpace>,
    pub dispatcher: Arc<Dispatcher>,
    pub sink: Arc<dyn EventSink>,
    /// Observability registry; each mechanism reports its invocation and
    /// detection counts here (gated — free when observability is off).
    pub metrics: Arc<MetricsRegistry>,
}

// ---------------------------------------------------------------------
// 1. In-line wrapper (the Open OODB / REACH choice)
// ---------------------------------------------------------------------

/// The integrated mechanism: the dispatcher's sentry chain. Monitoring
/// is toggled per (class, method); the unmonitored path costs one atomic
/// load (see `reach_object::dispatch`).
pub struct InlineWrapperSentry {
    world: SentryWorld,
}

impl InlineWrapperSentry {
    /// Wires a dispatcher-level sentry to the sink.
    pub fn new(world: SentryWorld) -> Self {
        struct Bridge(Arc<dyn EventSink>, Arc<MetricsRegistry>);
        impl reach_object::MethodSentry for Bridge {
            fn before(&self, call: &reach_object::MethodCall) -> Result<()> {
                if self.1.on() {
                    self.1.sentry.inline_detections.inc();
                }
                self.0
                    .on_detected(call.txn, call.receiver, &call.method_name);
                Ok(())
            }
            fn after(&self, _c: &reach_object::MethodCall, _r: &Result<Value>) {}
        }
        world.dispatcher.add_sentry(Arc::new(Bridge(
            Arc::clone(&world.sink),
            Arc::clone(&world.metrics),
        )));
        InlineWrapperSentry { world }
    }

    /// Enable detection for a (class, method).
    pub fn monitor(&self, class: ClassId, method: MethodId) {
        self.world.dispatcher.monitor(class, method);
    }
}

impl SentryMechanism for InlineWrapperSentry {
    fn name(&self) -> &'static str {
        "inline-wrapper"
    }
    fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        if self.world.metrics.on() {
            self.world.metrics.sentry.inline_invocations.inc();
        }
        self.world
            .dispatcher
            .invoke(&self.world.space, txn, oid, method, args)
    }
    fn traps_state_access(&self) -> bool {
        true // the object space's state sentries are part of the design
    }
    fn transparent(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// 2. Root-class trap
// ---------------------------------------------------------------------

/// Traps inherited from a conceptual root class. Every invocation — on
/// monitored and unmonitored classes alike — pays the "is my class
/// hierarchy trapped?" walk that inheritance-based traps impose, and
/// state access is invisible to it.
pub struct RootClassTrapSentry {
    world: SentryWorld,
    trapped: RwLock<HashSet<ClassId>>,
}

impl RootClassTrapSentry {
    pub fn new(world: SentryWorld) -> Self {
        RootClassTrapSentry {
            world,
            trapped: RwLock::new(HashSet::new()),
        }
    }

    /// Make `class` (conceptually) inherit the trap-bearing root class.
    pub fn trap_class(&self, class: ClassId) {
        self.trapped.write().insert(class);
    }
}

impl SentryMechanism for RootClassTrapSentry {
    fn name(&self) -> &'static str {
        "root-class-trap"
    }
    fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        // The hierarchy walk happens on *every* call — this is the
        // mechanism's structural overhead (multiple-inheritance
        // indirection in the C++ rendering).
        let class = self.world.space.class_of(oid)?;
        let lineage = self.world.space.schema().lineage(class)?;
        let trapped = {
            let set = self.trapped.read();
            lineage.iter().any(|c| set.contains(c))
        };
        if self.world.metrics.on() {
            self.world.metrics.sentry.trap_invocations.inc();
            if trapped {
                self.world.metrics.sentry.trap_detections.inc();
            }
        }
        if trapped {
            self.world.sink.on_detected(txn, oid, method);
        }
        self.world
            .dispatcher
            .invoke(&self.world.space, txn, oid, method, args)
    }
    fn traps_state_access(&self) -> bool {
        false // public state bypasses member functions (§6.2)
    }
    fn transparent(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// 3. Surrogate object
// ---------------------------------------------------------------------

/// A surrogate "stands in for some other object ... intercepts all
/// messages directed at the actual object". Calls go to the surrogate
/// id and are forwarded after detection; touching the real object's
/// state directly bypasses the surrogate entirely — the semantic hole
/// §6.2 calls out.
pub struct SurrogateSentry {
    world: SentryWorld,
    forward: RwLock<HashMap<ObjectId, ObjectId>>,
}

impl SurrogateSentry {
    pub fn new(world: SentryWorld) -> Self {
        SurrogateSentry {
            world,
            forward: RwLock::new(HashMap::new()),
        }
    }

    /// Create a surrogate id for `real`; calls through the surrogate are
    /// detected.
    pub fn wrap(&self, surrogate: ObjectId, real: ObjectId) {
        self.forward.write().insert(surrogate, real);
    }
}

impl SentryMechanism for SurrogateSentry {
    fn name(&self) -> &'static str {
        "surrogate"
    }
    fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        // Every call pays the identity-map lookup.
        let target = {
            let map = self.forward.read();
            map.get(&oid).copied()
        };
        if self.world.metrics.on() {
            self.world.metrics.sentry.surrogate_invocations.inc();
            if target.is_some() {
                self.world.metrics.sentry.surrogate_detections.inc();
            }
        }
        let real = match target {
            Some(real) => {
                self.world.sink.on_detected(txn, real, method);
                real
            }
            None => oid,
        };
        self.world
            .dispatcher
            .invoke(&self.world.space, txn, real, method, args)
    }
    fn traps_state_access(&self) -> bool {
        false
    }
    fn transparent(&self) -> bool {
        true // same call syntax, but only via the surrogate handle
    }
}

// ---------------------------------------------------------------------
// 4. Announce (application-signalled events)
// ---------------------------------------------------------------------

/// No detection at all: the application must call
/// [`AnnounceSentry::announce`] at each interesting point. Zero idle
/// overhead, zero transparency — "forces applications to announce the
/// events ... clutters a program" (§6.2).
pub struct AnnounceSentry {
    world: SentryWorld,
}

impl AnnounceSentry {
    pub fn new(world: SentryWorld) -> Self {
        AnnounceSentry { world }
    }

    /// The explicit announcement the application must remember to make.
    pub fn announce(&self, txn: TxnId, oid: ObjectId, method: &str) {
        if self.world.metrics.on() {
            self.world.metrics.sentry.announce_detections.inc();
        }
        self.world.sink.on_detected(txn, oid, method);
    }
}

impl SentryMechanism for AnnounceSentry {
    fn name(&self) -> &'static str {
        "announce"
    }
    fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        self.world
            .dispatcher
            .invoke(&self.world.space, txn, oid, method, args)
    }
    fn traps_state_access(&self) -> bool {
        false
    }
    fn transparent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_common::sync::Mutex;
    use reach_object::{ClassBuilder, MethodRegistry, Schema};

    struct Counter(Mutex<usize>);
    impl EventSink for Counter {
        fn on_detected(&self, _t: TxnId, _o: ObjectId, _m: &str) {
            *self.0.lock() += 1;
        }
    }

    fn world() -> (SentryWorld, Arc<Counter>, ClassId, MethodId, ObjectId) {
        let schema = Arc::new(Schema::new());
        let (b, m) = ClassBuilder::new(&schema, "Thing").virtual_method("touch");
        let class = b.define().unwrap();
        let methods = Arc::new(MethodRegistry::new());
        methods.register_fn(m, |_| Ok(Value::Null));
        let space = Arc::new(ObjectSpace::new(Arc::clone(&schema)));
        let dispatcher = Arc::new(Dispatcher::new(Arc::clone(&schema), methods));
        let oid = space.create(TxnId::NULL, class).unwrap();
        let sink = Arc::new(Counter(Mutex::new(0)));
        (
            SentryWorld {
                space,
                dispatcher,
                sink: Arc::clone(&sink) as Arc<dyn EventSink>,
                metrics: MetricsRegistry::new_shared(),
            },
            sink,
            class,
            m,
            oid,
        )
    }

    #[test]
    fn inline_wrapper_detects_only_monitored() {
        let (w, sink, class, m, oid) = world();
        let s = InlineWrapperSentry::new(w);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 0);
        s.monitor(class, m);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 1);
        assert!(s.traps_state_access() && s.transparent());
    }

    #[test]
    fn root_class_trap_detects_trapped_hierarchy() {
        let (w, sink, class, _m, oid) = world();
        let s = RootClassTrapSentry::new(w);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 0);
        s.trap_class(class);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 1);
        assert!(!s.traps_state_access());
    }

    #[test]
    fn surrogate_detects_through_handle_only() {
        let (w, sink, _class, _m, oid) = world();
        let s = SurrogateSentry::new(w);
        let handle = ObjectId::new(999_999);
        s.wrap(handle, oid);
        // Through the surrogate: detected and forwarded.
        s.invoke(TxnId::NULL, handle, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 1);
        // Direct call on the real object: silent — the semantic hole.
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 1);
    }

    #[test]
    fn mechanisms_report_useful_and_useless_work() {
        let (w, _sink, class, _m, oid) = world();
        let metrics = Arc::clone(&w.metrics);
        metrics.enable();
        let s = RootClassTrapSentry::new(w);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap(); // useless walk
        s.trap_class(class);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap(); // useful
        assert_eq!(metrics.sentry.trap_invocations.get(), 2);
        assert_eq!(metrics.sentry.trap_detections.get(), 1);
        let snap = metrics.snapshot();
        // Mechanism order in the snapshot: inline, trap, surrogate, announce.
        assert_eq!(snap.sentry_useful[1], 1);
        assert_eq!(snap.sentry_useless[1], 1);
    }

    #[test]
    fn announce_detects_nothing_by_itself() {
        let (w, sink, _class, _m, oid) = world();
        let s = AnnounceSentry::new(w);
        s.invoke(TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(*sink.0.lock(), 0);
        s.announce(TxnId::NULL, oid, "touch");
        assert_eq!(*sink.0.lock(), 1);
        assert!(!s.transparent());
    }
}
