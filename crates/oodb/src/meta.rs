//! The meta-architecture "software bus".
//!
//! Figure 1 of the paper shows database components — policy managers —
//! plugged into a meta-architecture module, with support modules
//! (address spaces, communication, translation, data dictionary)
//! underneath. This module is that bus: a registry keyed by *dimension*
//! ("persistence", "transactions", "indexing", ...) into which PMs are
//! plugged, exchanged, or added — including, later, REACH's Rule PM,
//! which is exactly how the paper extends the system.

use reach_common::sync::RwLock;
use reach_common::{ReachError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A pluggable database component (Persistence PM, Transaction PM, ...).
pub trait PolicyManager: Send + Sync {
    /// The orthogonal dimension of database functionality this PM
    /// implements (e.g. `"persistence"`).
    fn dimension(&self) -> &'static str;
    /// Human-readable implementation name (e.g. `"wal-persistence"`).
    fn name(&self) -> &'static str;
    /// One-line description for the architecture manifest.
    fn describe(&self) -> String {
        format!("{} policy manager ({})", self.dimension(), self.name())
    }
}

/// A support module beneath the bus (ASMs, translation, dictionary...).
pub trait SupportModule: Send + Sync {
    fn name(&self) -> &'static str;
    fn describe(&self) -> String {
        format!("support module {}", self.name())
    }
}

/// The bus itself.
pub struct MetaArchitecture {
    pms: RwLock<BTreeMap<&'static str, Arc<dyn PolicyManager>>>,
    support: RwLock<Vec<Arc<dyn SupportModule>>>,
}

impl MetaArchitecture {
    pub fn new() -> Self {
        MetaArchitecture {
            pms: RwLock::new(BTreeMap::new()),
            support: RwLock::new(Vec::new()),
        }
    }

    /// Plug a policy manager into its dimension, replacing any previous
    /// occupant (the architecture's "possibility of exchanging or adding
    /// new policy managers"). Returns the displaced PM, if any.
    pub fn plug(&self, pm: Arc<dyn PolicyManager>) -> Option<Arc<dyn PolicyManager>> {
        self.pms.write().insert(pm.dimension(), pm)
    }

    /// The PM serving a dimension.
    pub fn manager(&self, dimension: &str) -> Result<Arc<dyn PolicyManager>> {
        self.pms
            .read()
            .get(dimension)
            .cloned()
            .ok_or_else(|| ReachError::PolicyManagerMissing(dimension.to_string()))
    }

    /// Register a support module.
    pub fn add_support(&self, module: Arc<dyn SupportModule>) {
        self.support.write().push(module);
    }

    /// All plugged dimensions, sorted.
    pub fn dimensions(&self) -> Vec<&'static str> {
        self.pms.read().keys().copied().collect()
    }

    /// The architecture manifest — the textual form of Figure 1. The
    /// `figure1` experiment binary prints exactly this.
    pub fn manifest(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push("Application Programming Interface".to_string());
        out.push("Meta Architecture Support (Sentries)".to_string());
        for (dim, pm) in self.pms.read().iter() {
            out.push(format!("  [PM] {:<12} -> {}", dim, pm.name()));
        }
        for sm in self.support.read().iter() {
            out.push(format!("  [support] {}", sm.name()));
        }
        out
    }
}

impl Default for MetaArchitecture {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetaArchitecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaArchitecture")
            .field("dimensions", &self.dimensions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakePm(&'static str, &'static str);
    impl PolicyManager for FakePm {
        fn dimension(&self) -> &'static str {
            self.0
        }
        fn name(&self) -> &'static str {
            self.1
        }
    }

    struct FakeSupport;
    impl SupportModule for FakeSupport {
        fn name(&self) -> &'static str {
            "exodus-asm"
        }
    }

    #[test]
    fn plugging_and_lookup() {
        let bus = MetaArchitecture::new();
        assert!(bus.manager("persistence").is_err());
        bus.plug(Arc::new(FakePm("persistence", "wal")));
        assert_eq!(bus.manager("persistence").unwrap().name(), "wal");
        assert_eq!(bus.dimensions(), vec!["persistence"]);
    }

    #[test]
    fn replugging_replaces_and_returns_old() {
        let bus = MetaArchitecture::new();
        bus.plug(Arc::new(FakePm("indexing", "hash")));
        let old = bus.plug(Arc::new(FakePm("indexing", "btree"))).unwrap();
        assert_eq!(old.name(), "hash");
        assert_eq!(bus.manager("indexing").unwrap().name(), "btree");
    }

    #[test]
    fn manifest_lists_pms_and_support() {
        let bus = MetaArchitecture::new();
        bus.plug(Arc::new(FakePm("transactions", "nested-2pl")));
        bus.add_support(Arc::new(FakeSupport));
        let m = bus.manifest().join("\n");
        assert!(m.contains("transactions"));
        assert!(m.contains("nested-2pl"));
        assert!(m.contains("exodus-asm"));
    }
}
