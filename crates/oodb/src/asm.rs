//! Address-space managers (§5).
//!
//! "ASMs may be passive or active. A passive ASM is simply a data
//! repository (e.g., a file system). An active ASM allows computation
//! [...] In an Open OODB system configuration, at least one ASM must be
//! active." The active ASM here is the resident object space; the
//! passive one wraps the storage manager.

use crate::meta::SupportModule;
use reach_common::Result;
use reach_object::ObjectSpace;
use reach_storage::StorageManager;
use std::sync::Arc;

/// An address space in the configuration.
pub trait AddressSpace: Send + Sync {
    fn name(&self) -> &'static str;
    /// Active spaces can execute methods; passive ones only store bytes.
    fn is_active(&self) -> bool;
    /// Rough population count (for introspection).
    fn population(&self) -> Result<usize>;
}

/// The active, computing address space: resident objects.
pub struct ActiveMemorySpace {
    space: Arc<ObjectSpace>,
}

impl ActiveMemorySpace {
    pub fn new(space: Arc<ObjectSpace>) -> Self {
        ActiveMemorySpace { space }
    }
}

impl AddressSpace for ActiveMemorySpace {
    fn name(&self) -> &'static str {
        "active-memory"
    }
    fn is_active(&self) -> bool {
        true
    }
    fn population(&self) -> Result<usize> {
        Ok(self.space.resident_count())
    }
}

impl SupportModule for ActiveMemorySpace {
    fn name(&self) -> &'static str {
        "asm:active-memory"
    }
}

/// The passive repository: the EXODUS-substitute storage manager.
pub struct PassiveStoreSpace {
    sm: Arc<StorageManager>,
    segment_name: String,
}

impl PassiveStoreSpace {
    pub fn new(sm: Arc<StorageManager>, segment_name: &str) -> Self {
        PassiveStoreSpace {
            sm,
            segment_name: segment_name.to_string(),
        }
    }
}

impl AddressSpace for PassiveStoreSpace {
    fn name(&self) -> &'static str {
        "passive-store"
    }
    fn is_active(&self) -> bool {
        false
    }
    fn population(&self) -> Result<usize> {
        let seg = self.sm.segment(&self.segment_name)?;
        self.sm.scan_count(seg)
    }
}

impl SupportModule for PassiveStoreSpace {
    fn name(&self) -> &'static str {
        "asm:passive-store"
    }
}

/// Validate an ASM configuration: at least one active space (§5).
pub fn validate_configuration(spaces: &[&dyn AddressSpace]) -> Result<()> {
    if spaces.iter().any(|s| s.is_active()) {
        Ok(())
    } else {
        Err(reach_common::ReachError::NotSupported(
            "configuration has no active address space".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_object::Schema;

    #[test]
    fn active_space_reports_population() {
        let schema = Arc::new(Schema::new());
        let space = Arc::new(ObjectSpace::new(Arc::clone(&schema)));
        let asm = ActiveMemorySpace::new(Arc::clone(&space));
        assert!(asm.is_active());
        assert_eq!(asm.population().unwrap(), 0);
    }

    #[test]
    fn configuration_needs_an_active_space() {
        let schema = Arc::new(Schema::new());
        let space = Arc::new(ObjectSpace::new(schema));
        let active = ActiveMemorySpace::new(space);
        let sm = Arc::new(StorageManager::new_in_memory(8).unwrap());
        sm.create_segment("objects").unwrap();
        let passive = PassiveStoreSpace::new(sm, "objects");
        assert!(validate_configuration(&[&active, &passive]).is_ok());
        assert!(validate_configuration(&[&passive]).is_err());
    }
}
