//! Translation: moving objects between address spaces (§5).
//!
//! When an object crosses from the active (in-memory) address space to a
//! passive one (the storage manager) it is translated to a
//! self-describing byte string: `oid | class | attribute values`. The
//! inverse direction rebuilds the resident [`ObjectState`].

use reach_common::{ObjectId, ReachError, Result};
use reach_object::ObjectState;

/// Format version tag, bumped on layout changes.
const VERSION: u8 = 1;

/// Serialize `(oid, state)` for a passive address space.
pub fn externalize(oid: ObjectId, state: &ObjectState) -> Vec<u8> {
    let body = state.encode();
    let mut out = Vec::with_capacity(body.len() + 9);
    out.push(VERSION);
    out.extend_from_slice(&oid.raw().to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Rebuild `(oid, state)` from a passive representation.
pub fn internalize(buf: &[u8]) -> Result<(ObjectId, ObjectState)> {
    if buf.len() < 9 {
        return Err(ReachError::Io("truncated external object".into()));
    }
    if buf[0] != VERSION {
        return Err(ReachError::Io(format!(
            "unsupported object format version {}",
            buf[0]
        )));
    }
    let oid = ObjectId::new(u64::from_le_bytes(buf[1..9].try_into().unwrap()));
    let state = ObjectState::decode(&buf[9..])?;
    Ok((oid, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_common::ClassId;
    use reach_object::Value;

    #[test]
    fn round_trip() {
        let state = ObjectState {
            class: ClassId::new(3),
            attrs: vec![Value::Int(1), Value::Str("x".into())],
        };
        let ext = externalize(ObjectId::new(42), &state);
        let (oid, back) = internalize(&ext).unwrap();
        assert_eq!(oid, ObjectId::new(42));
        assert_eq!(back, state);
    }

    #[test]
    fn rejects_bad_version_and_truncation() {
        let state = ObjectState {
            class: ClassId::new(1),
            attrs: vec![],
        };
        let mut ext = externalize(ObjectId::new(1), &state);
        ext[0] = 9;
        assert!(internalize(&ext).is_err());
        assert!(internalize(&[1, 2, 3]).is_err());
    }
}
