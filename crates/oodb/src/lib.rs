//! `open-oodb` — a Rust rendering of Texas Instruments' Open OODB
//! meta-architecture (§5 of the paper, \[WBT92\]).
//!
//! Open OODB's computational model "transparently extends the behavior
//! of operations in application programming languages": any operation
//! can be an *event*, a *sentry* tracks events, and *policy managers*
//! plugged onto the meta-architecture "software bus" implement the
//! extended behaviour. The paper chose this platform because the model
//! is "philosophically close to the active database paradigm" — REACH's
//! detectors are just more sentries and its rule manager just another
//! policy manager.
//!
//! Crate layout:
//!
//! * [`meta`] — the software bus: policy-manager and support-module
//!   registries plus the architecture manifest (Figure 1);
//! * [`sentry`] — the four candidate sentry mechanisms §6.2 surveys
//!   (in-line wrapper, root-class trap, surrogate object, announce),
//!   behind one interface so they can be compared;
//! * [`pm`] — the policy managers: Persistence, Transaction, Change,
//!   Indexing, Query;
//! * [`dictionary`] — the data dictionary (named object roots — the
//!   `OpenOODB->fetch("Block A")` of the paper's rule example);
//! * [`asm`] — active/passive address-space managers and
//! * [`translation`] — the object ⇄ byte-string translation used when
//!   objects move between address spaces;
//! * [`database`] — the assembled DBMS facade that REACH extends.

pub mod asm;
pub mod database;
pub mod dictionary;
pub mod meta;
pub mod pm;
pub mod sentry;
pub mod translation;

pub use database::{Database, DatabaseConfig};
pub use dictionary::DataDictionary;
pub use meta::{MetaArchitecture, PolicyManager, SupportModule};
pub use pm::change::ChangePm;
pub use pm::indexing::IndexingPm;
pub use pm::persistence::PersistencePm;
pub use pm::query::{Expr, Query, QueryPm};
pub use pm::snapshot::SnapshotPm;
pub use pm::transaction::TransactionPm;
pub use reach_storage::CheckpointStats;
