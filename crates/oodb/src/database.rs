//! The assembled OODBMS: the facade REACH extends.
//!
//! [`Database`] wires together the schema, object space, dispatcher,
//! transaction manager, storage manager and every policy manager, and
//! plugs them all onto the meta-architecture bus. Its public surface is
//! what an Open OODB application sees: define classes, create objects,
//! invoke methods (sentried), run transactions, persist objects to named
//! roots, query extents.
//!
//! Concurrency control is strict 2PL at object granularity: method
//! invocations and attribute writes take exclusive locks, reads take
//! shared locks; all locks are held to end of (top-level) transaction.

use crate::dictionary::DataDictionary;
use crate::meta::{MetaArchitecture, PolicyManager};
use crate::pm::change::ChangePm;
use crate::pm::indexing::IndexingPm;
use crate::pm::persistence::PersistencePm;
use crate::pm::query::{Plan, QueryPm};
use crate::pm::snapshot::SnapshotPm;
use crate::pm::transaction::TransactionPm;
use reach_common::{ClassId, MetricsRegistry, ObjectId, ReachError, Result, TxnId, VirtualClock};
use reach_object::{ClassBuilder, Dispatcher, MethodRegistry, ObjectSpace, Schema, Value};
use reach_storage::StorageManager;
use reach_txn::{LockMode, ResourceManager, TransactionManager};
use std::path::Path;
use std::sync::Arc;

/// Configuration for a database instance.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Buffer pool frames for the storage manager.
    pub pool_frames: usize,
    /// Use the wall clock instead of a controllable virtual clock.
    pub real_time: bool,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            pool_frames: 256,
            real_time: false,
        }
    }
}

/// The full OODBMS.
pub struct Database {
    schema: Arc<Schema>,
    methods: Arc<MethodRegistry>,
    space: Arc<ObjectSpace>,
    dispatcher: Arc<Dispatcher>,
    clock: Arc<VirtualClock>,
    tm: Arc<TransactionManager>,
    sm: Arc<StorageManager>,
    meta: MetaArchitecture,
    dictionary: Arc<DataDictionary>,
    change: Arc<ChangePm>,
    persistence: Arc<PersistencePm>,
    indexing: Arc<IndexingPm>,
    query: Arc<QueryPm>,
    txn_pm: Arc<TransactionPm>,
    snapshot: Arc<SnapshotPm>,
}

impl Database {
    /// A fully in-memory database (tests, benchmarks, examples).
    pub fn in_memory() -> Result<Arc<Self>> {
        let config = DatabaseConfig::default();
        let sm = Arc::new(StorageManager::new_in_memory(config.pool_frames)?);
        Self::assemble(sm, config)
    }

    /// A database with a real (wall) clock — used when temporal events
    /// must fire from actual elapsed time.
    pub fn in_memory_realtime() -> Result<Arc<Self>> {
        let config = DatabaseConfig {
            real_time: true,
            ..Default::default()
        };
        let sm = Arc::new(StorageManager::new_in_memory(config.pool_frames)?);
        Self::assemble(sm, config)
    }

    /// Open (or create) a persistent database in `dir`. The application
    /// must re-declare its classes (like C++ class definitions, the
    /// schema lives in code) in the same order before touching persisted
    /// objects.
    pub fn open(dir: &Path, config: DatabaseConfig) -> Result<Arc<Self>> {
        let sm = Arc::new(StorageManager::open(dir, config.pool_frames)?);
        Self::assemble(sm, config)
    }

    /// Assemble a database over an already-opened storage manager. This
    /// is the distribution layer's entry point: a shard resolves any
    /// in-doubt 2PC transactions against the coordinator log at the
    /// storage level *before* the object layer loads persisted state,
    /// then hands the clean storage manager here.
    pub fn open_with_storage(sm: Arc<StorageManager>, config: DatabaseConfig) -> Result<Arc<Self>> {
        Self::assemble(sm, config)
    }

    fn assemble(sm: Arc<StorageManager>, config: DatabaseConfig) -> Result<Arc<Self>> {
        let schema = Arc::new(Schema::new());
        let methods = Arc::new(MethodRegistry::new());
        let space = Arc::new(ObjectSpace::new(Arc::clone(&schema)));
        let dispatcher = Arc::new(Dispatcher::new(Arc::clone(&schema), Arc::clone(&methods)));
        let clock = Arc::new(if config.real_time {
            VirtualClock::new_real()
        } else {
            VirtualClock::new_virtual()
        });
        // One registry for the whole stack: born in the storage manager,
        // shared by the transaction manager and everything above.
        let tm = Arc::new(TransactionManager::with_metrics(
            Arc::clone(&clock),
            Arc::clone(sm.metrics()),
        ));
        let dictionary = Arc::new(DataDictionary::new(Arc::clone(&schema)));
        // Sentry-driven PMs first so they observe everything that follows.
        let indexing = IndexingPm::new(&space, &tm, Arc::clone(&sm));
        let change = ChangePm::new(Arc::downgrade(&tm), Arc::clone(&space));
        let persistence = PersistencePm::new(
            Arc::clone(&sm),
            Arc::clone(&space),
            Arc::clone(&change),
            Arc::clone(&dictionary),
        )?;
        // Resource-manager order matters: indexing flushes its buffered
        // B+Tree operations inside the transaction's WAL window (the
        // persistence PM's commit_top holds the sm.commit durability
        // point), then persistence writes back dirty objects, and the
        // change PM drops its log last.
        tm.add_resource_manager(Arc::clone(&indexing) as Arc<dyn ResourceManager>);
        tm.add_resource_manager(Arc::clone(&persistence) as Arc<dyn ResourceManager>);
        tm.add_resource_manager(Arc::clone(&change) as Arc<dyn ResourceManager>);
        // MVCC bridge: committed write sets become version-chain entries
        // at commit (publish-then-advance); snapshot reads resolve here.
        let snapshot = SnapshotPm::new(Arc::clone(&change), Arc::clone(&space));
        tm.add_version_publisher(Arc::clone(&snapshot) as Arc<dyn reach_txn::VersionPublisher>);
        let query = Arc::new(QueryPm::new(
            Arc::clone(&space),
            Arc::clone(&dispatcher),
            Arc::clone(&indexing),
        ));
        let txn_pm = Arc::new(TransactionPm::new(Arc::clone(&tm)));
        let meta = MetaArchitecture::new();
        meta.plug(Arc::clone(&persistence) as Arc<dyn PolicyManager>);
        meta.plug(Arc::clone(&change) as Arc<dyn PolicyManager>);
        meta.plug(Arc::clone(&indexing) as Arc<dyn PolicyManager>);
        meta.plug(Arc::clone(&query) as Arc<dyn PolicyManager>);
        meta.plug(Arc::clone(&txn_pm) as Arc<dyn PolicyManager>);
        meta.plug(Arc::clone(&snapshot) as Arc<dyn PolicyManager>);
        meta.add_support(Arc::clone(&dictionary) as Arc<dyn crate::meta::SupportModule>);
        meta.add_support(Arc::new(crate::asm::ActiveMemorySpace::new(Arc::clone(
            &space,
        ))));
        meta.add_support(Arc::new(crate::asm::PassiveStoreSpace::new(
            Arc::clone(&sm),
            "sys.objects",
        )));
        Ok(Arc::new(Database {
            schema,
            methods,
            space,
            dispatcher,
            clock,
            tm,
            sm,
            meta,
            dictionary,
            change,
            persistence,
            indexing,
            query,
            txn_pm,
            snapshot,
        }))
    }

    // ---- component access (REACH and the benches need the internals) ----

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
    pub fn methods(&self) -> &Arc<MethodRegistry> {
        &self.methods
    }
    pub fn space(&self) -> &Arc<ObjectSpace> {
        &self.space
    }
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }
    pub fn txn_manager(&self) -> &Arc<TransactionManager> {
        &self.tm
    }
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }
    /// The stack-wide observability registry (owned by the storage layer).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.sm.metrics()
    }
    pub fn meta(&self) -> &MetaArchitecture {
        &self.meta
    }
    pub fn dictionary(&self) -> &Arc<DataDictionary> {
        &self.dictionary
    }
    pub fn change_pm(&self) -> &Arc<ChangePm> {
        &self.change
    }
    pub fn persistence_pm(&self) -> &Arc<PersistencePm> {
        &self.persistence
    }
    pub fn indexing_pm(&self) -> &Arc<IndexingPm> {
        &self.indexing
    }
    pub fn query_pm(&self) -> &Arc<QueryPm> {
        &self.query
    }
    pub fn transaction_pm(&self) -> &Arc<TransactionPm> {
        &self.txn_pm
    }
    pub fn snapshot_pm(&self) -> &Arc<SnapshotPm> {
        &self.snapshot
    }

    /// Start defining a class.
    pub fn define_class(&self, name: &str) -> ClassBuilder<'_> {
        ClassBuilder::new(&self.schema, name)
    }

    // ---- transactions ----

    pub fn begin(&self) -> Result<TxnId> {
        self.tm.begin()
    }

    /// Begin a read-only snapshot transaction: reads resolve against
    /// the newest committed versions at the transaction's begin stamp
    /// and acquire **no locks** — they never block behind writers. Any
    /// mutation through it fails with [`ReachError::ReadOnlyTxn`].
    pub fn begin_read_only(&self) -> Result<TxnId> {
        self.tm.begin_read_only()
    }

    pub fn begin_nested(&self, parent: TxnId) -> Result<TxnId> {
        self.tm.begin_nested(parent)
    }

    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.tm.commit(txn)
    }

    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.tm.abort(txn)
    }

    /// Two-phase commit, phase one: run pre-commit work, write back and
    /// force-log everything needed to commit `txn` under global
    /// transaction `gid`, then park it in-doubt with locks pinned. The
    /// coordinator's [`Self::decide`] finishes it either way.
    pub fn prepare(&self, txn: TxnId, gid: u64) -> Result<()> {
        self.tm.prepare(txn, gid)
    }

    /// Two-phase commit, phase two: apply the coordinator's decision to
    /// a transaction parked by [`Self::prepare`].
    pub fn decide(&self, txn: TxnId, commit: bool) -> Result<()> {
        self.tm.decide(txn, commit)
    }

    fn check_active(&self, txn: TxnId) -> Result<()> {
        if self.tm.is_active(txn) {
            Ok(())
        } else {
            Err(ReachError::TxnNotActive(txn))
        }
    }

    /// Mutations guard: active, and not a read-only snapshot (creation
    /// and persistence bypass the lock manager, so [`TransactionManager::lock`]'s
    /// own read-only check never sees them).
    fn check_writable(&self, txn: TxnId) -> Result<()> {
        self.check_active(txn)?;
        if self.tm.is_read_only(txn) {
            return Err(ReachError::ReadOnlyTxn(txn));
        }
        Ok(())
    }

    // ---- objects ----

    /// Create an object with class defaults.
    pub fn create(&self, txn: TxnId, class: ClassId) -> Result<ObjectId> {
        self.check_writable(txn)?;
        self.space.create(txn, class)
    }

    /// Create an object with attribute overrides.
    pub fn create_with(
        &self,
        txn: TxnId,
        class: ClassId,
        overrides: &[(&str, Value)],
    ) -> Result<ObjectId> {
        self.check_writable(txn)?;
        self.space.create_with(txn, class, overrides)
    }

    /// Delete an object (its destructor event is the lifecycle sentry).
    pub fn delete_object(&self, txn: TxnId, oid: ObjectId) -> Result<()> {
        self.check_active(txn)?;
        self.tm.lock(txn, oid, LockMode::Exclusive)?;
        self.space.delete(txn, oid)?;
        Ok(())
    }

    /// Invoke a (possibly sentried) method under an exclusive lock.
    pub fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        self.check_active(txn)?;
        self.tm.lock(txn, oid, LockMode::Exclusive)?;
        self.dispatcher.invoke(&self.space, txn, oid, method, args)
    }

    /// Invoke a batch of (possibly sentried) methods within one
    /// transaction — the hot-path variant of calling [`Database::invoke`]
    /// per entry. Two costs are amortized over the batch: each distinct
    /// receiver is locked once (strict 2PL holds the locks to EOT
    /// anyway, so per-call re-acquisition is pure overhead), and
    /// monitored *after*-events are raised once at the end of the batch
    /// (before-sentries still run per call, preserving the veto).
    /// Results come back in call order; the first error stops the batch
    /// — calls already executed stay executed, exactly as a mid-
    /// transaction error in the unbatched loop would leave them.
    pub fn invoke_batch(
        &self,
        txn: TxnId,
        calls: &[(ObjectId, &str, &[Value])],
    ) -> Result<Vec<Value>> {
        self.check_active(txn)?;
        let mut locked: Vec<ObjectId> = Vec::new();
        for &(oid, _, _) in calls {
            // Batches cycle through a small receiver set; a linear scan
            // beats hashing at that size and allocates nothing extra.
            if !locked.contains(&oid) {
                self.tm.lock(txn, oid, LockMode::Exclusive)?;
                locked.push(oid);
            }
        }
        self.dispatcher.invoke_batch(&self.space, txn, calls)
    }

    /// Read an attribute. Writer transactions take a shared lock and
    /// read the live object; read-only snapshot transactions resolve
    /// the committed version at their begin stamp, lock-free.
    pub fn get_attr(&self, txn: TxnId, oid: ObjectId, attr: &str) -> Result<Value> {
        self.check_active(txn)?;
        if self.tm.is_read_only(txn) {
            // `snapshot_stamp` also enforces an expired per-request
            // deadline: a lock-free read has no wait to interrupt.
            let stamp = self.tm.snapshot_stamp(txn)?;
            let state = self
                .snapshot
                .read(oid, stamp)?
                .ok_or(ReachError::ObjectNotFound(oid))?;
            let slot = self.schema.attr_slot(state.class, attr)?;
            return Ok(state.attrs[slot].clone());
        }
        self.tm.lock(txn, oid, LockMode::Shared)?;
        self.space.get_attr(oid, attr)
    }

    /// Write an attribute under an exclusive lock (state sentries fire).
    pub fn set_attr(&self, txn: TxnId, oid: ObjectId, attr: &str, value: Value) -> Result<()> {
        self.check_active(txn)?;
        self.tm.lock(txn, oid, LockMode::Exclusive)?;
        self.space.set_attr(txn, oid, attr, value)
    }

    // ---- persistence ----

    /// Make an object persistent (written back at commit).
    pub fn persist(&self, txn: TxnId, oid: ObjectId) -> Result<()> {
        self.check_writable(txn)?;
        self.persistence.persist(txn, oid)
    }

    /// Persist an object and bind it to a root name — the paper's
    /// `OpenOODB->fetch("Block A")` works via [`Database::fetch`].
    pub fn persist_named(&self, txn: TxnId, name: &str, oid: ObjectId) -> Result<()> {
        self.persist(txn, oid)?;
        self.dictionary.bind(name, oid);
        Ok(())
    }

    /// Resolve a named root.
    pub fn fetch(&self, name: &str) -> Result<ObjectId> {
        self.dictionary.lookup(name)
    }

    // ---- queries & indexes ----

    /// Run an OQL-flavoured query.
    pub fn query(&self, txn: TxnId, src: &str) -> Result<Vec<ObjectId>> {
        self.check_active(txn)?;
        Ok(self.query.execute(txn, src)?.0)
    }

    /// Run a query and also report the plan chosen.
    pub fn query_with_plan(&self, txn: TxnId, src: &str) -> Result<(Vec<ObjectId>, Plan)> {
        self.check_active(txn)?;
        self.query.execute(txn, src)
    }

    /// Create an index on `class.attribute`.
    pub fn create_index(&self, class: ClassId, attribute: &str) -> Result<()> {
        self.indexing.create_index(&self.space, class, attribute)
    }

    /// Take a fuzzy checkpoint: flush, log the dirty-page and
    /// active-writer tables, and truncate the obsolete log prefix. The
    /// storage manager tracks its own writer table, so nothing is
    /// passed down; [`TransactionManager::active_snapshot`] gives the
    /// transaction-layer view of the same moment.
    pub fn checkpoint(&self) -> Result<reach_storage::CheckpointStats> {
        self.sm.checkpoint()
    }

    /// The Figure-1 architecture manifest.
    pub fn manifest(&self) -> Vec<String> {
        self.meta.manifest()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("classes", &self.schema.len())
            .field("resident", &self.space.resident_count())
            .field("stored", &self.persistence.stored_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_object::ValueType;

    fn counter_db() -> (Arc<Database>, ClassId) {
        let db = Database::in_memory().unwrap();
        let (b, inc) = db
            .define_class("Counter")
            .attr("n", ValueType::Int, Value::Int(0))
            .virtual_method("inc");
        let class = b.define().unwrap();
        db.methods().register_fn(inc, |ctx| {
            let n = ctx.get("n")?.as_int()? + 1;
            ctx.set("n", Value::Int(n))?;
            Ok(Value::Int(n))
        });
        (db, class)
    }

    #[test]
    fn end_to_end_transactional_object_life() {
        let (db, class) = counter_db();
        let txn = db.begin().unwrap();
        let oid = db.create(txn, class).unwrap();
        db.invoke(txn, oid, "inc", &[]).unwrap();
        db.invoke(txn, oid, "inc", &[]).unwrap();
        assert_eq!(db.get_attr(txn, oid, "n").unwrap(), Value::Int(2));
        db.commit(txn).unwrap();
        // Committed state survives in a new transaction.
        let txn2 = db.begin().unwrap();
        assert_eq!(db.get_attr(txn2, oid, "n").unwrap(), Value::Int(2));
        db.commit(txn2).unwrap();
    }

    #[test]
    fn abort_rolls_back_object_state() {
        let (db, class) = counter_db();
        let t0 = db.begin().unwrap();
        let oid = db.create(t0, class).unwrap();
        db.commit(t0).unwrap();
        let t1 = db.begin().unwrap();
        db.invoke(t1, oid, "inc", &[]).unwrap();
        db.set_attr(t1, oid, "n", Value::Int(99)).unwrap();
        let phantom = db.create(t1, class).unwrap();
        db.abort(t1).unwrap();
        let t2 = db.begin().unwrap();
        assert_eq!(db.get_attr(t2, oid, "n").unwrap(), Value::Int(0));
        assert!(db.get_attr(t2, phantom, "n").is_err());
        db.commit(t2).unwrap();
    }

    #[test]
    fn subtransaction_abort_keeps_parent_work() {
        let (db, class) = counter_db();
        let parent = db.begin().unwrap();
        let oid = db.create(parent, class).unwrap();
        db.invoke(parent, oid, "inc", &[]).unwrap(); // n = 1
        let child = db.begin_nested(parent).unwrap();
        db.invoke(child, oid, "inc", &[]).unwrap(); // n = 2
        db.invoke(child, oid, "inc", &[]).unwrap(); // n = 3
        db.abort(child).unwrap();
        // Child's increments rolled back, parent's survives.
        assert_eq!(db.get_attr(parent, oid, "n").unwrap(), Value::Int(1));
        db.commit(parent).unwrap();
    }

    #[test]
    fn subtransaction_commit_is_kept_then_parent_abort_undoes_all() {
        let (db, class) = counter_db();
        let parent = db.begin().unwrap();
        let oid = db.create(parent, class).unwrap();
        db.commit(parent).unwrap();
        let parent = db.begin().unwrap();
        let child = db.begin_nested(parent).unwrap();
        db.invoke(child, oid, "inc", &[]).unwrap();
        db.commit(child).unwrap();
        assert_eq!(db.get_attr(parent, oid, "n").unwrap(), Value::Int(1));
        db.abort(parent).unwrap();
        let t = db.begin().unwrap();
        assert_eq!(db.get_attr(t, oid, "n").unwrap(), Value::Int(0));
        db.commit(t).unwrap();
    }

    #[test]
    fn query_uses_index_when_available() {
        let db = Database::in_memory().unwrap();
        let class = db
            .define_class("River")
            .attr("level", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        let txn = db.begin().unwrap();
        for i in 0..100 {
            db.create_with(txn, class, &[("level", Value::Int(i))])
                .unwrap();
        }
        db.commit(txn).unwrap();
        db.create_index(class, "level").unwrap();
        let txn = db.begin().unwrap();
        let (hits, plan) = db
            .query_with_plan(txn, "select r from River r where r.level < 10")
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert!(matches!(plan, Plan::IndexRange { .. }));
        // Unindexed predicate falls back to a scan.
        let (hits, plan) = db
            .query_with_plan(txn, "select r from River r where r.level + 1 == 5")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(plan, Plan::ExtentScan);
        db.commit(txn).unwrap();
    }

    #[test]
    fn index_stays_consistent_across_abort() {
        let db = Database::in_memory().unwrap();
        let class = db
            .define_class("Doc")
            .attr("size", ValueType::Int, Value::Int(1))
            .define()
            .unwrap();
        db.create_index(class, "size").unwrap();
        let t0 = db.begin().unwrap();
        let kept = db
            .create_with(t0, class, &[("size", Value::Int(5))])
            .unwrap();
        db.commit(t0).unwrap();
        let t1 = db.begin().unwrap();
        db.set_attr(t1, kept, "size", Value::Int(50)).unwrap();
        let _phantom = db
            .create_with(t1, class, &[("size", Value::Int(5))])
            .unwrap();
        db.abort(t1).unwrap();
        // After abort the index must answer as before t1.
        let t2 = db.begin().unwrap();
        let (hits, plan) = db
            .query_with_plan(t2, "select d from Doc d where d.size == 5")
            .unwrap();
        assert_eq!(hits, vec![kept]);
        assert!(matches!(plan, Plan::IndexEq { .. }));
        db.commit(t2).unwrap();
    }

    #[test]
    fn index_shadow_matches_persistent_tree_at_every_quiescent_point() {
        // The differential-oracle contract: after every commit and
        // every abort, the in-memory shadow and the WAL-logged B+Tree
        // hold exactly the same (memcomparable key, oid) pairs.
        let db = Database::in_memory().unwrap();
        let class = db
            .define_class("Doc")
            .attr("size", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        db.create_index(class, "size").unwrap();
        db.indexing_pm().verify_shadow().unwrap();

        let t0 = db.begin().unwrap();
        let mut oids = Vec::new();
        for i in 0..20 {
            oids.push(
                db.create_with(t0, class, &[("size", Value::Int(i % 7))])
                    .unwrap(),
            );
        }
        db.commit(t0).unwrap();
        db.indexing_pm().verify_shadow().unwrap();

        // Updates, a delete, and a subtransaction rollback in one txn.
        let t1 = db.begin().unwrap();
        db.set_attr(t1, oids[0], "size", Value::Int(100)).unwrap();
        db.delete_object(t1, oids[1]).unwrap();
        let child = db.begin_nested(t1).unwrap();
        db.set_attr(child, oids[2], "size", Value::Int(200))
            .unwrap();
        db.create_with(child, class, &[("size", Value::Int(300))])
            .unwrap();
        db.abort(child).unwrap();
        db.commit(t1).unwrap();
        db.indexing_pm().verify_shadow().unwrap();

        // A full abort leaves both structures at the pre-txn state.
        let t2 = db.begin().unwrap();
        db.set_attr(t2, oids[3], "size", Value::Int(400)).unwrap();
        db.delete_object(t2, oids[4]).unwrap();
        db.create_with(t2, class, &[("size", Value::Int(500))])
            .unwrap();
        db.abort(t2).unwrap();
        db.indexing_pm().verify_shadow().unwrap();

        // And the rolled-back child's values never reached either side.
        let t3 = db.begin().unwrap();
        let (hits, _) = db
            .query_with_plan(t3, "select d from Doc d where d.size == 200")
            .unwrap();
        assert!(hits.is_empty());
        db.commit(t3).unwrap();
    }

    #[test]
    fn index_survives_process_restart_without_faulting_objects() {
        // The restart payoff of persistent indexes: after reopen, the
        // index answers from the recovered B+Tree (adopted into the
        // shadow by decoding stored keys) before any object is resident.
        let dir = std::env::temp_dir().join(format!("reach-idx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let declare = |db: &Database| -> ClassId {
            db.define_class("Doc")
                .attr("size", ValueType::Int, Value::Int(0))
                .define()
                .unwrap()
        };
        let stored;
        {
            let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
            let class = declare(&db);
            db.create_index(class, "size").unwrap();
            let txn = db.begin().unwrap();
            let oid = db
                .create_with(txn, class, &[("size", Value::Int(42))])
                .unwrap();
            for i in 0..10 {
                db.create_with(txn, class, &[("size", Value::Int(i))])
                    .unwrap();
            }
            db.persist_named(txn, "the-doc", oid).unwrap();
            db.commit(txn).unwrap();
            stored = oid;
            db.indexing_pm().verify_shadow().unwrap();
            db.checkpoint().unwrap();
        }
        {
            let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
            let class = declare(&db);
            // Nothing resident yet: create_index must adopt the
            // recovered persistent tree rather than scan the extent.
            db.create_index(class, "size").unwrap();
            db.indexing_pm().verify_shadow().unwrap();
            let hits = db
                .indexing_pm()
                .lookup_eq(class, "size", &Value::Int(42))
                .unwrap();
            assert_eq!(hits, vec![stored]);
            // The index keeps absorbing changes after the restart.
            let txn = db.begin().unwrap();
            let oid = db.fetch("the-doc").unwrap();
            db.set_attr(txn, oid, "size", Value::Int(43)).unwrap();
            db.commit(txn).unwrap();
            db.indexing_pm().verify_shadow().unwrap();
            assert!(db
                .indexing_pm()
                .lookup_eq(class, "size", &Value::Int(42))
                .unwrap()
                .is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistence_round_trip_within_one_process() {
        let (db, class) = counter_db();
        let txn = db.begin().unwrap();
        let oid = db.create(txn, class).unwrap();
        db.invoke(txn, oid, "inc", &[]).unwrap();
        db.persist_named(txn, "the-counter", oid).unwrap();
        db.commit(txn).unwrap();
        assert!(db.persistence_pm().is_stored(oid));
        // Evict, then fault back in through the dictionary.
        db.space().evict(oid).unwrap();
        assert!(!db.space().is_resident(oid));
        let txn = db.begin().unwrap();
        let fetched = db.fetch("the-counter").unwrap();
        assert_eq!(fetched, oid);
        assert_eq!(db.get_attr(txn, fetched, "n").unwrap(), Value::Int(1));
        db.commit(txn).unwrap();
    }

    #[test]
    fn persistent_database_survives_process_restart() {
        let dir = std::env::temp_dir().join(format!("reach-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let declare = |db: &Database| -> ClassId {
            let (b, inc) = db
                .define_class("Counter")
                .attr("n", ValueType::Int, Value::Int(0))
                .virtual_method("inc");
            let class = b.define().unwrap();
            db.methods().register_fn(inc, |ctx| {
                let n = ctx.get("n")?.as_int()? + 1;
                ctx.set("n", Value::Int(n))?;
                Ok(Value::Int(n))
            });
            class
        };
        {
            let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
            let class = declare(&db);
            let txn = db.begin().unwrap();
            let oid = db.create(txn, class).unwrap();
            db.invoke(txn, oid, "inc", &[]).unwrap();
            db.invoke(txn, oid, "inc", &[]).unwrap();
            db.persist_named(txn, "root", oid).unwrap();
            db.commit(txn).unwrap();
            db.checkpoint().unwrap();
        }
        // "Restart": everything in-memory is gone; classes re-declared.
        {
            let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
            declare(&db);
            let txn = db.begin().unwrap();
            let oid = db.fetch("root").unwrap();
            assert_eq!(db.get_attr(txn, oid, "n").unwrap(), Value::Int(2));
            // And it is still updatable + persistent.
            db.invoke(txn, oid, "inc", &[]).unwrap();
            db.commit(txn).unwrap();
        }
        {
            let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
            declare(&db);
            let txn = db.begin().unwrap();
            let oid = db.fetch("root").unwrap();
            assert_eq!(db.get_attr(txn, oid, "n").unwrap(), Value::Int(3));
            db.commit(txn).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn operations_on_finished_transactions_fail() {
        let (db, class) = counter_db();
        let txn = db.begin().unwrap();
        let oid = db.create(txn, class).unwrap();
        db.commit(txn).unwrap();
        assert!(db.invoke(txn, oid, "inc", &[]).is_err());
        assert!(db.create(txn, class).is_err());
    }

    #[test]
    fn snapshot_read_ignores_later_and_uncommitted_writes() {
        let (db, class) = counter_db();
        let t0 = db.begin().unwrap();
        let oid = db.create(t0, class).unwrap();
        db.set_attr(t0, oid, "n", Value::Int(1)).unwrap();
        db.commit(t0).unwrap();
        let reader = db.begin_read_only().unwrap();
        // A writer mutates in place (uncommitted) — invisible.
        let w1 = db.begin().unwrap();
        db.set_attr(w1, oid, "n", Value::Int(50)).unwrap();
        assert_eq!(db.get_attr(reader, oid, "n").unwrap(), Value::Int(1));
        db.commit(w1).unwrap();
        // Committed after the reader's stamp — still invisible.
        assert_eq!(db.get_attr(reader, oid, "n").unwrap(), Value::Int(1));
        db.commit(reader).unwrap();
        // A fresh snapshot sees the new committed state.
        let reader2 = db.begin_read_only().unwrap();
        assert_eq!(db.get_attr(reader2, oid, "n").unwrap(), Value::Int(50));
        db.commit(reader2).unwrap();
    }

    #[test]
    fn snapshot_read_never_blocks_behind_exclusive_lock() {
        let (db, class) = counter_db();
        db.metrics().enable();
        let t0 = db.begin().unwrap();
        let oid = db.create(t0, class).unwrap();
        db.commit(t0).unwrap();
        // Writer parks on the exclusive lock for the whole read.
        let writer = db.begin().unwrap();
        db.set_attr(writer, oid, "n", Value::Int(7)).unwrap();
        let grants = db.metrics().txn.lock_acquisitions.get();
        let reader = db.begin_read_only().unwrap();
        assert_eq!(db.get_attr(reader, oid, "n").unwrap(), Value::Int(0));
        db.commit(reader).unwrap();
        assert_eq!(
            db.metrics().txn.lock_acquisitions.get(),
            grants,
            "snapshot read touched the lock manager"
        );
        db.abort(writer).unwrap();
    }

    #[test]
    fn snapshot_sees_deletes_and_creates_at_its_stamp() {
        let (db, class) = counter_db();
        let t0 = db.begin().unwrap();
        let doomed = db.create(t0, class).unwrap();
        db.commit(t0).unwrap();
        let reader = db.begin_read_only().unwrap();
        let w = db.begin().unwrap();
        db.delete_object(w, doomed).unwrap();
        let newborn = db.create(w, class).unwrap();
        db.commit(w).unwrap();
        // The snapshot predates both the delete and the create.
        assert_eq!(db.get_attr(reader, doomed, "n").unwrap(), Value::Int(0));
        assert!(db.get_attr(reader, newborn, "n").is_err());
        db.commit(reader).unwrap();
        let reader2 = db.begin_read_only().unwrap();
        assert!(db.get_attr(reader2, doomed, "n").is_err());
        assert_eq!(db.get_attr(reader2, newborn, "n").unwrap(), Value::Int(0));
        db.commit(reader2).unwrap();
    }

    #[test]
    fn read_only_transactions_reject_mutations() {
        let (db, class) = counter_db();
        let t0 = db.begin().unwrap();
        let oid = db.create(t0, class).unwrap();
        db.commit(t0).unwrap();
        let r = db.begin_read_only().unwrap();
        let is_ro_err = |e: ReachError| matches!(e, ReachError::ReadOnlyTxn(_));
        assert!(is_ro_err(db.create(r, class).unwrap_err()));
        assert!(is_ro_err(
            db.set_attr(r, oid, "n", Value::Int(1)).unwrap_err()
        ));
        assert!(is_ro_err(db.invoke(r, oid, "inc", &[]).unwrap_err()));
        assert!(is_ro_err(db.delete_object(r, oid).unwrap_err()));
        assert!(is_ro_err(db.persist(r, oid).unwrap_err()));
        db.commit(r).unwrap();
    }

    #[test]
    fn manifest_names_all_policy_managers() {
        let (db, _) = counter_db();
        let m = db.manifest().join("\n");
        for dim in ["persistence", "transactions", "change", "indexing", "query"] {
            assert!(m.contains(dim), "manifest missing {dim}: {m}");
        }
        assert!(m.contains("data-dictionary"));
    }
}
