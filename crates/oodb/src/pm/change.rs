//! The Change PM: transactional change tracking for the object space.
//!
//! Storage is only touched at commit (the Persistence PM's write-back),
//! so *in-memory* object state is what must be rolled back when a
//! transaction or subtransaction aborts. The Change PM keeps, per
//! top-level transaction, an ordered log of `attribute write / create /
//! delete` entries and implements the [`ResourceManager`] savepoint
//! protocol over it — giving REACH the nested-transaction rollback the
//! commercial systems of §4 could not provide.
//!
//! Undo is performed through the public mutation API with
//! `TxnId::NULL`, so other sentries (notably indexing) observe the
//! compensating operations and stay consistent for free.

use crate::meta::PolicyManager;
use reach_common::sync::Mutex;
use reach_common::{ObjectId, Result, TxnId};
use reach_object::{LifecycleSentry, ObjectSpace, ObjectState, StateChange, StateSentry, Value};
use reach_txn::manager::ResourceManager;
use reach_txn::TransactionManager;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

#[derive(Debug, Clone)]
enum Change {
    Attr {
        oid: ObjectId,
        attribute: String,
        old: Value,
    },
    Create {
        oid: ObjectId,
    },
    Delete {
        oid: ObjectId,
        state: ObjectState,
    },
}

/// Per-transaction in-memory undo log.
pub struct ChangePm {
    tm: Weak<TransactionManager>,
    space: Arc<ObjectSpace>,
    log: Mutex<HashMap<TxnId, Vec<Change>>>,
    /// Commit-time parking lot for the MVCC bridge: when capture is on,
    /// `commit_top` moves the transaction's log here instead of dropping
    /// it, and the version publisher drains it after publication.
    pending_publish: Mutex<HashMap<TxnId, Vec<Change>>>,
    capture: AtomicBool,
}

impl ChangePm {
    pub fn new(tm: Weak<TransactionManager>, space: Arc<ObjectSpace>) -> Arc<Self> {
        let pm = Arc::new(ChangePm {
            tm,
            space: Arc::clone(&space),
            log: Mutex::new(HashMap::new()),
            pending_publish: Mutex::new(HashMap::new()),
            capture: AtomicBool::new(false),
        });
        space.add_state_sentry(Arc::clone(&pm) as Arc<dyn StateSentry>);
        space.add_lifecycle_sentry(Arc::clone(&pm) as Arc<dyn LifecycleSentry>);
        pm
    }

    /// Retain committed write sets for the MVCC version publisher (which
    /// must call [`ChangePm::finish_publish`] to drain them). Off by
    /// default so a ChangePm used without a publisher never accumulates.
    pub fn enable_publish_capture(&self) {
        self.capture.store(true, Ordering::SeqCst);
    }

    /// Resolve the owning *top-level* transaction of an event, if the
    /// transaction is live and managed. System writes (`TxnId::NULL`) and
    /// unknown transactions are not tracked.
    fn top_of(&self, txn: TxnId) -> Option<TxnId> {
        if txn.is_null() {
            return None;
        }
        let tm = self.tm.upgrade()?;
        tm.top_of(txn).ok()
    }

    fn record(&self, txn: TxnId, change: Change) {
        if let Some(top) = self.top_of(txn) {
            self.log.lock().entry(top).or_default().push(change);
        }
    }

    fn undo(&self, change: Change) {
        // Compensations run under TxnId::NULL: not re-tracked, but other
        // sentries (indexing) still observe them.
        match change {
            Change::Attr {
                oid,
                attribute,
                old,
            } => {
                let _ = self.space.set_attr(TxnId::NULL, oid, &attribute, old);
            }
            Change::Create { oid } => {
                let _ = self.space.delete(TxnId::NULL, oid);
            }
            Change::Delete { oid, state } => {
                self.space.install_existing(oid, state);
            }
        }
    }

    /// Objects touched (written or created) by `top`, in first-touch
    /// order, deduplicated. The Persistence PM uses this to find dirty
    /// persistent objects at commit.
    pub fn touched(&self, top: TxnId) -> Vec<ObjectId> {
        let log = self.log.lock();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        if let Some(changes) = log.get(&top) {
            for c in changes {
                let oid = match c {
                    Change::Attr { oid, .. } | Change::Create { oid } => *oid,
                    Change::Delete { .. } => continue,
                };
                if seen.insert(oid) {
                    out.push(oid);
                }
            }
        }
        out
    }

    /// Objects deleted by `top`.
    pub fn deleted(&self, top: TxnId) -> Vec<ObjectId> {
        let log = self.log.lock();
        log.get(&top)
            .map(|changes| {
                changes
                    .iter()
                    .filter_map(|c| match c {
                        Change::Delete { oid, .. } => Some(*oid),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of pending change entries for `top` (introspection).
    pub fn pending(&self, top: TxnId) -> usize {
        self.log.lock().get(&top).map_or(0, |v| v.len())
    }

    // ---- MVCC publication support ----

    /// The committed write set parked by `commit_top` for `top`: each
    /// written object with whether its final state is *deleted*. Objects
    /// appear once, in first-touch order.
    pub fn publish_set(&self, top: TxnId) -> Vec<(ObjectId, bool)> {
        let pending = self.pending_publish.lock();
        let mut order = Vec::new();
        let mut alive: HashMap<ObjectId, bool> = HashMap::new();
        if let Some(changes) = pending.get(&top) {
            for c in changes {
                let (oid, is_delete) = match c {
                    Change::Attr { oid, .. } | Change::Create { oid } => (*oid, false),
                    Change::Delete { oid, .. } => (*oid, true),
                };
                if !alive.contains_key(&oid) {
                    order.push(oid);
                }
                alive.insert(oid, !is_delete);
            }
        }
        order.into_iter().map(|oid| (oid, !alive[&oid])).collect()
    }

    /// Drop the parked write set of `top` (publication done).
    pub fn finish_publish(&self, top: TxnId) {
        self.pending_publish.lock().remove(&top);
    }

    /// The newest *committed* state of `oid`, reconstructed by undoing
    /// any in-flight (or committing-but-unpublished) transaction's
    /// changes on top of the in-place object state. `Ok(None)` means
    /// the object does not exist in committed state.
    ///
    /// Strict 2PL makes this well-defined: at most one transaction holds
    /// the exclusive lock, so at most one log (active or parked) has
    /// entries for `oid`. The space is read *before* the logs — if a
    /// writer mutates between the two reads, its freshly recorded undo
    /// entry re-derives the same pre-image (applying `old` to a state
    /// that still holds `old` is a no-op), so the interleaving is
    /// harmless.
    pub fn committed_base(&self, oid: ObjectId) -> Result<Option<ObjectState>> {
        let mut state = match self.space.snapshot(oid) {
            Ok(s) => Some(s),
            Err(reach_common::ReachError::ObjectNotFound(_)) => None,
            Err(e) => return Err(e),
        };
        let undo: Vec<Change> = {
            let log = self.log.lock();
            let pending = self.pending_publish.lock();
            log.values()
                .chain(pending.values())
                .flat_map(|changes| changes.iter())
                .filter(|c| match c {
                    Change::Attr { oid: o, .. }
                    | Change::Create { oid: o }
                    | Change::Delete { oid: o, .. } => *o == oid,
                })
                .cloned()
                .collect()
        };
        let schema = self.space.schema();
        for change in undo.into_iter().rev() {
            match change {
                Change::Attr { attribute, old, .. } => {
                    if let Some(s) = state.as_mut() {
                        let slot = schema.attr_slot(s.class, &attribute)?;
                        s.attrs[slot] = old;
                    }
                }
                Change::Create { .. } => state = None,
                Change::Delete { state: saved, .. } => state = Some(saved),
            }
        }
        Ok(state)
    }
}

impl StateSentry for ChangePm {
    fn on_change(&self, change: &StateChange) {
        self.record(
            change.txn,
            Change::Attr {
                oid: change.oid,
                attribute: change.attribute.clone(),
                old: change.old.clone(),
            },
        );
    }
}

impl LifecycleSentry for ChangePm {
    fn on_create(&self, txn: TxnId, oid: ObjectId, _state: &ObjectState) {
        self.record(txn, Change::Create { oid });
    }

    fn on_delete(&self, txn: TxnId, oid: ObjectId, state: &ObjectState) {
        self.record(
            txn,
            Change::Delete {
                oid,
                state: state.clone(),
            },
        );
    }
}

impl ResourceManager for ChangePm {
    fn begin_top(&self, txn: TxnId) -> Result<()> {
        self.log.lock().insert(txn, Vec::new());
        Ok(())
    }

    fn savepoint(&self, top: TxnId) -> Result<u64> {
        Ok(self.log.lock().get(&top).map_or(0, |v| v.len()) as u64)
    }

    fn rollback_to(&self, top: TxnId, savepoint: u64) -> Result<()> {
        let tail: Vec<Change> = {
            let mut log = self.log.lock();
            match log.get_mut(&top) {
                Some(changes) if changes.len() > savepoint as usize => {
                    changes.split_off(savepoint as usize)
                }
                _ => Vec::new(),
            }
        };
        for change in tail.into_iter().rev() {
            self.undo(change);
        }
        Ok(())
    }

    fn commit_top(&self, txn: TxnId) -> Result<()> {
        // The write set is final here (locks still held). With MVCC
        // capture on, park it for the version publisher — which runs
        // after every resource manager, still under those locks — rather
        // than dropping it.
        let entry = self.log.lock().remove(&txn);
        if self.capture.load(Ordering::SeqCst) {
            if let Some(changes) = entry {
                if !changes.is_empty() {
                    self.pending_publish.lock().insert(txn, changes);
                }
            }
        }
        Ok(())
    }

    fn abort_top(&self, txn: TxnId) -> Result<()> {
        let changes = self.log.lock().remove(&txn).unwrap_or_default();
        for change in changes.into_iter().rev() {
            self.undo(change);
        }
        Ok(())
    }
}

impl PolicyManager for ChangePm {
    fn dimension(&self) -> &'static str {
        "change"
    }
    fn name(&self) -> &'static str {
        "undo-log-change"
    }
}
