//! The Snapshot PM: the bridge between the transaction manager's MVCC
//! machinery and the object space.
//!
//! Writers mutate objects *in place* (the Change PM keeps the undo
//! log), so a lock-free reader can never look at the space directly —
//! it might see uncommitted state. Instead this PM maintains a
//! [`VersionStore`] of committed [`ObjectState`]s:
//!
//! * at writer commit the transaction manager calls
//!   [`VersionPublisher::publish`] — after every resource manager
//!   reported durable, while the writer's exclusive locks are still
//!   held, before the commit clock advances. The PM takes the parked
//!   write set from the Change PM, seeds the *pre-commit* committed
//!   state as the chain baseline (reconstructed by undoing the parked
//!   log), then publishes the post-commit state at the new timestamp;
//! * a snapshot read resolves through [`SnapshotPm::read`]: chain hit,
//!   or — for objects never written since start-up — a race-free
//!   baseline seed from [`ChangePm::committed_base`].
//!
//! Because the baseline is seeded *before* the first higher-timestamp
//! version exists, a chain never starts mid-history: any reader whose
//! stamp predates an object's first MVCC-era write finds the ts-0
//! baseline, never a version from its future.

use crate::meta::PolicyManager;
use crate::pm::change::ChangePm;
use reach_common::{ObjectId, Result, TxnId};
use reach_object::{ObjectSpace, ObjectState};
use reach_txn::mvcc::{CommitTs, VersionPublisher, VersionStore};
use std::sync::Arc;

/// Committed-version store over the object space (see module docs).
pub struct SnapshotPm {
    store: VersionStore<ObjectState>,
    change: Arc<ChangePm>,
    space: Arc<ObjectSpace>,
}

impl SnapshotPm {
    /// Build the bridge and switch the Change PM to publish capture.
    pub fn new(change: Arc<ChangePm>, space: Arc<ObjectSpace>) -> Arc<Self> {
        change.enable_publish_capture();
        Arc::new(SnapshotPm {
            store: VersionStore::new(),
            change,
            space,
        })
    }

    /// The committed state of `oid` visible at snapshot `stamp`, or
    /// `None` if the object does not exist at that stamp. Acquires no
    /// locks; never observes in-place uncommitted state.
    pub fn read(&self, oid: ObjectId, stamp: CommitTs) -> Result<Option<ObjectState>> {
        self.store
            .read_or_seed(oid, stamp, || self.change.committed_base(oid))
    }

    /// Total committed versions currently retained (introspection).
    pub fn retained_versions(&self) -> usize {
        self.store.total_versions()
    }
}

impl VersionPublisher for SnapshotPm {
    fn publish(&self, txn: TxnId, ts: CommitTs) -> usize {
        let write_set = self.change.publish_set(txn);
        for (oid, deleted) in &write_set {
            // Seed the pre-commit committed state first: the parked log
            // is still in place, so `committed_base` undoes this very
            // transaction's changes. No-op if the chain already exists.
            let _ = self
                .store
                .seed_baseline_with(*oid, || self.change.committed_base(*oid));
            let payload = if *deleted {
                None
            } else {
                // Locks are held and all RMs reported durable: the
                // in-place state *is* the committed post-image.
                self.space.snapshot(*oid).ok()
            };
            self.store.publish(*oid, ts, payload);
        }
        self.change.finish_publish(txn);
        write_set.len()
    }

    fn vacuum(&self, watermark: CommitTs) -> usize {
        self.store.vacuum(watermark)
    }

    fn longest_chain(&self) -> usize {
        self.store.longest_chain()
    }
}

impl PolicyManager for SnapshotPm {
    fn dimension(&self) -> &'static str {
        "snapshot"
    }
    fn name(&self) -> &'static str {
        "mvcc-version-store"
    }
}
