//! The Persistence PM: explicit persistence with fault-in, write-back at
//! commit, and persistent named roots.
//!
//! Open OODB extends object dereference to support persistence: a
//! non-resident object is faulted in transparently when touched. Here
//! the [`ObjectSpace`]'s fault handler plays the sentry role, and this
//! PM implements the policy:
//!
//! * [`PersistencePm::persist`] marks an object persistent within a
//!   transaction; at top-level commit its state is externalized and
//!   written through the storage manager (logged, recoverable);
//! * dirty persistent objects (reported by the Change PM) are written
//!   back at commit;
//! * deletions of persistent objects remove the stored record — giving
//!   REACH the *explicit delete* whose absence under O2's
//!   persistence-by-reachability made deletion rules nearly impossible
//!   (§4);
//! * data-dictionary name bindings are stored in their own segment so
//!   roots survive restarts.

use crate::dictionary::DataDictionary;
use crate::meta::PolicyManager;
use crate::pm::change::ChangePm;
use crate::translation::{externalize, internalize};
use reach_common::sync::{Mutex, RwLock};
use reach_common::{ObjectId, ReachError, Result, TxnId};
use reach_object::ObjectSpace;
use reach_storage::{RecordId, SegmentId, StorageManager};
use reach_txn::ResourceManager;
use std::collections::HashMap;
use std::sync::Arc;

const OBJECT_SEGMENT: &str = "sys.objects";
const ROOTS_SEGMENT: &str = "sys.roots";

/// The persistence policy manager.
pub struct PersistencePm {
    sm: Arc<StorageManager>,
    space: Arc<ObjectSpace>,
    change: Arc<ChangePm>,
    dictionary: Arc<DataDictionary>,
    objects_seg: SegmentId,
    roots_seg: SegmentId,
    /// Where each persistent object lives on disk.
    locations: Mutex<HashMap<ObjectId, RecordId>>,
    /// Objects whose `persist()` happened in a still-running transaction.
    pending: Mutex<HashMap<TxnId, Vec<ObjectId>>>,
    /// Location of the single roots record, once written, plus the
    /// bytes last stored there — unchanged roots are skipped at commit
    /// so read-only transactions log nothing and hit the WAL's
    /// no-force fast path.
    roots_record: Mutex<(Option<RecordId>, Option<Vec<u8>>)>,
    /// Observers of `persist()` calls — the paper's `persist`
    /// DB-internal event (§3.1) is detected here.
    persist_hooks: RwLock<Vec<PersistHook>>,
    /// Transactions whose write-back already ran under `prepare_top`
    /// (2PC): their `commit_top` must only seal the decision, not
    /// repeat the write-back.
    prepared: Mutex<std::collections::HashSet<TxnId>>,
}

/// Observer of `persist()` calls.
pub type PersistHook = Arc<dyn Fn(TxnId, ObjectId) + Send + Sync>;

impl PersistencePm {
    /// Create the PM, its segments, and install the fault handler;
    /// existing stored objects and roots are loaded automatically.
    pub fn new(
        sm: Arc<StorageManager>,
        space: Arc<ObjectSpace>,
        change: Arc<ChangePm>,
        dictionary: Arc<DataDictionary>,
    ) -> Result<Arc<Self>> {
        let objects_seg = sm.create_segment(OBJECT_SEGMENT)?;
        let roots_seg = sm.create_segment(ROOTS_SEGMENT)?;
        let pm = Arc::new(PersistencePm {
            sm,
            space: Arc::clone(&space),
            change,
            dictionary,
            objects_seg,
            roots_seg,
            locations: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            roots_record: Mutex::new((None, None)),
            persist_hooks: RwLock::new(Vec::new()),
            prepared: Mutex::new(std::collections::HashSet::new()),
        });
        let weak = Arc::downgrade(&pm);
        space.set_fault_handler(Arc::new(move |oid| match weak.upgrade() {
            Some(pm) => pm.fault(oid),
            None => Ok(None),
        }));
        pm.load_existing().map(|_| pm)
    }

    /// Rebuild the location index and name roots from storage. Walks
    /// the objects segment in place (borrowed payloads — only the oid
    /// header is decoded, nothing is copied) instead of materializing
    /// every stored object into a scan vector.
    fn load_existing(&self) -> Result<()> {
        self.load_locations()?;
        // Roots: a single record of `name_len name oid` triples.
        if let Some((rid, bytes)) = self.sm.scan_first(self.roots_seg)? {
            self.dictionary.load(decode_roots(&bytes)?);
            *self.roots_record.lock() = (Some(rid), Some(bytes));
        }
        Ok(())
    }

    /// Rebuild the oid → record-id index from the objects segment.
    fn load_locations(&self) -> Result<()> {
        let mut locations = self.locations.lock();
        locations.clear();
        let mut bad = None;
        self.sm
            .for_each_while(self.objects_seg, |rid, bytes| match internalize(bytes) {
                Ok((oid, _)) => {
                    locations.insert(oid, rid);
                    self.space.mark_persistent_known(oid);
                    std::ops::ControlFlow::Continue(())
                }
                Err(e) => {
                    bad = Some(e);
                    std::ops::ControlFlow::Break(())
                }
            })?;
        if let Some(e) = bad {
            return Err(e);
        }
        Ok(())
    }

    /// Fault handler: load a persistent object's state from storage.
    fn fault(&self, oid: ObjectId) -> Result<Option<reach_object::ObjectState>> {
        let rid = match self.locations.lock().get(&oid) {
            Some(r) => *r,
            None => return Ok(None),
        };
        let bytes = self.sm.get(self.objects_seg, rid)?;
        let (stored_oid, state) = internalize(&bytes)?;
        debug_assert_eq!(stored_oid, oid);
        Ok(Some(state))
    }

    /// Make `oid` persistent. The object is marked immediately (so
    /// §3.2's transient-reference check passes) and written back when
    /// `txn`'s top level commits.
    pub fn persist(&self, txn: TxnId, oid: ObjectId) -> Result<()> {
        if !self.space.is_resident(oid) {
            return Err(ReachError::ObjectNotFound(oid));
        }
        self.space.mark_persistent(oid);
        self.pending.lock().entry(txn).or_default().push(oid);
        let hooks = self.persist_hooks.read().clone();
        for h in hooks.iter() {
            h(txn, oid);
        }
        Ok(())
    }

    /// Observe `persist()` calls (the REACH detector for the paper's
    /// `persist` DB-internal event registers here).
    pub fn add_persist_hook(&self, h: PersistHook) {
        self.persist_hooks.write().push(h);
    }

    /// Whether the object is known to live in stable storage.
    pub fn is_stored(&self, oid: ObjectId) -> bool {
        self.locations.lock().contains_key(&oid)
    }

    /// Number of stored objects.
    pub fn stored_count(&self) -> usize {
        self.locations.lock().len()
    }

    /// All persistent object ids (for full scans after restart).
    pub fn stored_ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.locations.lock().keys().copied().collect();
        v.sort();
        v
    }

    fn write_back(&self, txn: TxnId, oid: ObjectId) -> Result<()> {
        let state = self.space.snapshot(oid)?;
        let bytes = externalize(oid, &state);
        let mut locations = self.locations.lock();
        match locations.get(&oid) {
            Some(rid) => self.sm.update(txn, self.objects_seg, *rid, &bytes)?,
            None => {
                let rid = self.sm.insert(txn, self.objects_seg, &bytes)?;
                locations.insert(oid, rid);
            }
        }
        Ok(())
    }

    fn save_roots(&self, txn: TxnId) -> Result<()> {
        let bytes = encode_roots(&self.dictionary.bindings());
        let mut rec = self.roots_record.lock();
        // Unchanged roots need no logged update: a transaction that
        // touched nothing then commits without a single WAL write, so
        // the storage manager's read-only fast path skips the sync.
        if rec.1.as_deref() == Some(bytes.as_slice()) {
            return Ok(());
        }
        match rec.0 {
            Some(rid) => self.sm.update(txn, self.roots_seg, rid, &bytes)?,
            None => rec.0 = Some(self.sm.insert(txn, self.roots_seg, &bytes)?),
        }
        rec.1 = Some(bytes);
        Ok(())
    }
}

impl ResourceManager for PersistencePm {
    fn begin_top(&self, txn: TxnId) -> Result<()> {
        self.sm.begin(txn)
    }

    fn savepoint(&self, _top: TxnId) -> Result<u64> {
        // Storage is only written during commit, so mid-transaction
        // rollback has nothing to undo here.
        Ok(0)
    }

    fn rollback_to(&self, _top: TxnId, _savepoint: u64) -> Result<()> {
        Ok(())
    }

    fn commit_top(&self, txn: TxnId) -> Result<()> {
        // 2PC commit decision: the write-back already happened under
        // `prepare_top` and sits below the forced Prepare record; only
        // the Commit record remains.
        if self.prepared.lock().remove(&txn) {
            return self.sm.decide_commit(txn);
        }
        // 1. Newly persisted objects.
        let pending = self.pending.lock().remove(&txn).unwrap_or_default();
        let mut written = std::collections::HashSet::new();
        for oid in pending {
            if self.space.is_resident(oid) && written.insert(oid) {
                self.write_back(txn, oid)?;
            }
        }
        // 2. Dirty persistent objects (touched this transaction).
        for oid in self.change.touched(txn) {
            if !written.contains(&oid) && self.space.is_persistent(oid) && self.is_stored(oid) {
                self.write_back(txn, oid)?;
                written.insert(oid);
            }
        }
        // 3. Deleted persistent objects lose their stored record.
        for oid in self.change.deleted(txn) {
            let rid = self.locations.lock().remove(&oid);
            if let Some(rid) = rid {
                self.sm.delete(txn, self.objects_seg, rid)?;
            }
        }
        // 4. Persist the name roots (cheap; always current).
        self.save_roots(txn)?;
        // 5. Durability point.
        self.sm.commit(txn)
    }

    fn prepare_top(&self, txn: TxnId, gid: u64) -> Result<()> {
        // The same write-back as `commit_top` steps 1–4, then the
        // forced Prepare record instead of the Commit: everything the
        // eventual commit decision needs is durable, and everything an
        // abort decision must undo is WAL-covered.
        let pending = self.pending.lock().remove(&txn).unwrap_or_default();
        let mut written = std::collections::HashSet::new();
        for oid in pending {
            if self.space.is_resident(oid) && written.insert(oid) {
                self.write_back(txn, oid)?;
            }
        }
        for oid in self.change.touched(txn) {
            if !written.contains(&oid) && self.space.is_persistent(oid) && self.is_stored(oid) {
                self.write_back(txn, oid)?;
                written.insert(oid);
            }
        }
        for oid in self.change.deleted(txn) {
            let rid = self.locations.lock().remove(&oid);
            if let Some(rid) = rid {
                self.sm.delete(txn, self.objects_seg, rid)?;
            }
        }
        self.save_roots(txn)?;
        self.sm.prepare(txn, gid)?;
        self.prepared.lock().insert(txn);
        Ok(())
    }

    fn abort_top(&self, txn: TxnId) -> Result<()> {
        let was_prepared = self.prepared.lock().remove(&txn);
        self.pending.lock().remove(&txn);
        // An abort may have rolled back a roots update this PM already
        // cached; drop the cache so the next commit rewrites them.
        self.roots_record.lock().1 = None;
        self.sm.abort(txn)?;
        if was_prepared {
            // The undone prepare write-back created/removed stored
            // records behind the location index; rebuild it from the
            // (now rolled-back) segment. Rare path: only a coordinator
            // abort decision after a successful local prepare lands here.
            self.load_locations()?;
        }
        Ok(())
    }
}

impl PolicyManager for PersistencePm {
    fn dimension(&self) -> &'static str {
        "persistence"
    }
    fn name(&self) -> &'static str {
        "wal-write-back"
    }
}

fn encode_roots(bindings: &[(String, ObjectId)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(bindings.len() as u32).to_le_bytes());
    for (name, oid) in bindings {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&oid.raw().to_le_bytes());
    }
    out
}

fn decode_roots(buf: &[u8]) -> Result<Vec<(String, ObjectId)>> {
    let corrupt = || ReachError::Io("corrupt roots record".into());
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        if pos + n > buf.len() {
            return Err(corrupt());
        }
        let s = &buf[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(len)?.to_vec()).map_err(|_| corrupt())?;
        let oid = ObjectId::new(u64::from_le_bytes(take(8)?.try_into().unwrap()));
        out.push((name, oid));
    }
    Ok(out)
}

/// Extension trait hook: marking a faulted/known object persistent
/// without a transaction (restart path).
trait SpaceExt {
    fn mark_persistent_known(&self, oid: ObjectId);
}

impl SpaceExt for ObjectSpace {
    fn mark_persistent_known(&self, oid: ObjectId) {
        self.mark_persistent(oid);
    }
}

/// Convenience used by tests and the Database facade: persist an object
/// and bind it to a root name in one step.
pub fn persist_named(
    pm: &PersistencePm,
    dictionary: &DataDictionary,
    txn: TxnId,
    name: &str,
    oid: ObjectId,
) -> Result<()> {
    pm.persist(txn, oid)?;
    dictionary.bind(name, oid);
    Ok(())
}
