//! The Query PM: an OQL[C++]-flavoured query facility over extents,
//! with index-aware planning, plus the expression language shared with
//! the REACH rule system (§7 names "the combination of the ECA-rule
//! description with Open OODB's query language, OQL[C++]" as an area of
//! interest — sharing one expression core is our answer).
//!
//! Queries have the shape
//!
//! ```text
//! select r from River r where r.waterLevel < 37 and r.getTemp() > 20.5
//! ```
//!
//! Expressions support literals, variables, attribute access (`.` or the
//! paper's C++ `->`), method calls, arithmetic, comparisons and
//! `and`/`or`/`not`. Evaluation happens against an [`EvalCtx`] that
//! carries variable bindings and (for method calls) the dispatcher.

use crate::meta::PolicyManager;
use crate::pm::indexing::IndexingPm;
use reach_common::{ClassId, ReachError, Result, TxnId};
use reach_object::{Dispatcher, ObjectSpace, Value};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Expression AST
// ---------------------------------------------------------------------

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// The expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A free variable resolved from the binding environment.
    Var(String),
    /// Attribute access: `base.attr` / `base->attr`.
    Attr(Box<Expr>, String),
    /// Method call: `base.m(args)` / `base->m(args)`.
    Call(Box<Expr>, String, Vec<Expr>),
    /// Logical negation (`not e` / `!e`).
    Not(Box<Expr>),
    /// Arithmetic negation (`-e`).
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Evaluation environment for an expression.
pub struct EvalCtx<'a> {
    pub space: &'a ObjectSpace,
    pub dispatcher: &'a Dispatcher,
    pub txn: TxnId,
    pub bindings: &'a HashMap<String, Value>,
}

impl Expr {
    /// Evaluate against a context.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Result<Value> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => ctx
                .bindings
                .get(name)
                .cloned()
                .ok_or_else(|| ReachError::Query(format!("unbound variable {name:?}"))),
            Expr::Attr(base, attr) => {
                let oid = base.eval(ctx)?.as_ref_id()?;
                ctx.space.get_attr(oid, attr)
            }
            Expr::Call(base, method, args) => {
                let oid = base.eval(ctx)?.as_ref_id()?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(a.eval(ctx)?);
                }
                ctx.dispatcher
                    .invoke(ctx.space, ctx.txn, oid, method, &argv)
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval(ctx)?.as_bool()?)),
            Expr::Neg(e) => match e.eval(ctx)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                v => Err(ReachError::TypeMismatch {
                    expected: "numeric".into(),
                    got: format!("{:?}", v.value_type()),
                }),
            },
            Expr::Bin(op, l, r) => eval_bin(*op, l, r, ctx),
        }
    }

    /// Convenience: evaluate and coerce to boolean.
    pub fn eval_bool(&self, ctx: &EvalCtx<'_>) -> Result<bool> {
        self.eval(ctx)?.as_bool()
    }
}

fn eval_bin(op: BinOp, l: &Expr, r: &Expr, ctx: &EvalCtx<'_>) -> Result<Value> {
    use std::cmp::Ordering;
    // Short-circuit logical operators.
    match op {
        BinOp::And => {
            return Ok(Value::Bool(l.eval_bool(ctx)? && r.eval_bool(ctx)?));
        }
        BinOp::Or => {
            return Ok(Value::Bool(l.eval_bool(ctx)? || r.eval_bool(ctx)?));
        }
        _ => {}
    }
    let lv = l.eval(ctx)?;
    let rv = r.eval(ctx)?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(op, &lv, &rv),
        BinOp::Eq => Ok(Value::Bool(lv.compare(&rv) == Ordering::Equal)),
        BinOp::Ne => Ok(Value::Bool(lv.compare(&rv) != Ordering::Equal)),
        BinOp::Lt => Ok(Value::Bool(lv.compare(&rv) == Ordering::Less)),
        BinOp::Le => Ok(Value::Bool(lv.compare(&rv) != Ordering::Greater)),
        BinOp::Gt => Ok(Value::Bool(lv.compare(&rv) == Ordering::Greater)),
        BinOp::Ge => Ok(Value::Bool(lv.compare(&rv) != Ordering::Less)),
        BinOp::And | BinOp::Or => unreachable!(),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral; any float operand widens.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(Value::Int(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if *b == 0 {
                    return Err(ReachError::Query("division by zero".into()));
                }
                a / b
            }
            _ => unreachable!(),
        }));
    }
    let a = l.as_float()?;
    let b = r.as_float()?;
    Ok(Value::Float(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        _ => unreachable!(),
    }))
}

// ---------------------------------------------------------------------
// Expression parser (recursive descent; shared with the rule language)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn tokenize(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '+' | '*' | '/' | '%' | '.' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '+' => "+",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    _ => ".",
                }));
                i += 1;
            }
            '-' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Sym("."));
                    i += 2;
                } else {
                    out.push(Tok::Sym("-"));
                    i += 1;
                }
            }
            '<' | '>' | '=' | '!' => {
                let two = b.get(i + 1) == Some(&b'=');
                out.push(Tok::Sym(match (c, two) {
                    ('<', true) => "<=",
                    ('<', false) => "<",
                    ('>', true) => ">=",
                    ('>', false) => ">",
                    ('=', true) => "==",
                    ('=', false) => "==", // tolerate single '='
                    ('!', true) => "!=",
                    ('!', false) => "!",
                    _ => unreachable!(),
                }));
                i += if two { 2 } else { 1 };
            }
            '&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push(Tok::Sym("and"));
                    i += 2;
                } else {
                    return Err(parse_err("expected && "));
                }
            }
            '|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push(Tok::Sym("or"));
                    i += 2;
                } else {
                    return Err(parse_err("expected ||"));
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] as char != quote {
                    j += 1;
                }
                if j == b.len() {
                    return Err(parse_err("unterminated string literal"));
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    out.push(Tok::Float(
                        src[start..i]
                            .parse()
                            .map_err(|_| parse_err("bad float literal"))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        src[start..i]
                            .parse()
                            .map_err(|_| parse_err("bad integer literal"))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match word {
                    "and" => out.push(Tok::Sym("and")),
                    "or" => out.push(Tok::Sym("or")),
                    "not" => out.push(Tok::Sym("!")),
                    "true" => out.push(Tok::Ident("true".into())),
                    "false" => out.push(Tok::Ident("false".into())),
                    "null" => out.push(Tok::Ident("null".into())),
                    _ => out.push(Tok::Ident(word.to_string())),
                }
            }
            other => return Err(parse_err(&format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_err(msg: &str) -> ReachError {
    ReachError::Query(format!("parse error: {msg}"))
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(parse_err(&format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            other => Err(parse_err(&format!("expected identifier, found {other:?}"))),
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_sym("or") {
            let right = self.and_expr()?;
            left = Expr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.cmp_expr()?;
        while self.eat_sym("and") {
            let right = self.cmp_expr()?;
            left = Expr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(BinOp::Eq),
            Some(Tok::Sym("!=")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.add_expr()?;
                Ok(Expr::Bin(op, Box::new(left), Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => BinOp::Add,
                Some(Tok::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => BinOp::Mul,
                Some(Tok::Sym("/")) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut base = self.primary_expr()?;
        while self.eat_sym(".") {
            let member = self.expect_ident()?;
            if self.eat_sym("(") {
                let mut args = Vec::new();
                if !self.eat_sym(")") {
                    loop {
                        args.push(self.or_expr()?);
                        if self.eat_sym(")") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                base = Expr::Call(Box::new(base), member, args);
            } else {
                base = Expr::Attr(Box::new(base), member);
            }
        }
        Ok(base)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(i)))
            }
            Some(Tok::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Float(f)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Str(s)))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(match name.as_str() {
                    "true" => Expr::Lit(Value::Bool(true)),
                    "false" => Expr::Lit(Value::Bool(false)),
                    "null" => Expr::Lit(Value::Null),
                    _ => Expr::Var(name),
                })
            }
            Some(Tok::Sym("(")) => {
                self.pos += 1;
                let e = self.or_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(parse_err(&format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse an expression from text.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser {
        toks: tokenize(src)?,
        pos: 0,
    };
    let e = p.or_expr()?;
    if p.pos != p.toks.len() {
        return Err(parse_err("trailing input after expression"));
    }
    Ok(e)
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

/// A parsed query: one range variable over one class extent.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub class_name: String,
    pub var: String,
    pub predicate: Option<Expr>,
}

/// Parse `select <v> from <Class> <v> [where <expr>]`.
pub fn parse_query(src: &str) -> Result<Query> {
    let mut p = Parser {
        toks: tokenize(src)?,
        pos: 0,
    };
    let kw = p.expect_ident()?;
    if kw != "select" {
        return Err(parse_err("query must start with 'select'"));
    }
    let select_var = p.expect_ident()?;
    let kw = p.expect_ident()?;
    if kw != "from" {
        return Err(parse_err("expected 'from'"));
    }
    let class_name = p.expect_ident()?;
    let var = p.expect_ident()?;
    if var != select_var {
        return Err(parse_err("select variable must match the range variable"));
    }
    let predicate = match p.peek().cloned() {
        Some(Tok::Ident(w)) if w == "where" => {
            p.pos += 1;
            Some(p.or_expr()?)
        }
        None => None,
        other => return Err(parse_err(&format!("unexpected {other:?} after class"))),
    };
    if p.pos != p.toks.len() {
        return Err(parse_err("trailing input after query"));
    }
    Ok(Query {
        class_name,
        var,
        predicate,
    })
}

/// How a query was answered (surfaced so tests and the optimizer bench
/// can assert plan choice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    ExtentScan,
    IndexEq { attribute: String },
    IndexRange { attribute: String },
}

/// The query policy manager.
pub struct QueryPm {
    space: Arc<ObjectSpace>,
    dispatcher: Arc<Dispatcher>,
    indexing: Arc<IndexingPm>,
}

impl QueryPm {
    pub fn new(
        space: Arc<ObjectSpace>,
        dispatcher: Arc<Dispatcher>,
        indexing: Arc<IndexingPm>,
    ) -> Self {
        QueryPm {
            space,
            dispatcher,
            indexing,
        }
    }

    /// Execute a query string within `txn`; returns matching object ids
    /// and the plan used.
    pub fn execute(&self, txn: TxnId, src: &str) -> Result<(Vec<reach_common::ObjectId>, Plan)> {
        let q = parse_query(src)?;
        self.run(txn, &q)
    }

    /// Execute a parsed query.
    pub fn run(&self, txn: TxnId, q: &Query) -> Result<(Vec<reach_common::ObjectId>, Plan)> {
        let class = self.space.schema().class_by_name(&q.class_name)?;
        // Plan: try to answer a sargable predicate from an index.
        if let Some(pred) = &q.predicate {
            if let Some((candidates, plan, residual)) = self.try_index(class, &q.var, pred) {
                let out = self.filter(txn, &q.var, candidates, residual.as_ref())?;
                return Ok((out, plan));
            }
        }
        let extent = self.space.extents().extent_deep(self.space.schema(), class);
        let out = self.filter(txn, &q.var, extent, q.predicate.as_ref())?;
        Ok((out, Plan::ExtentScan))
    }

    fn filter(
        &self,
        txn: TxnId,
        var: &str,
        candidates: Vec<reach_common::ObjectId>,
        predicate: Option<&Expr>,
    ) -> Result<Vec<reach_common::ObjectId>> {
        let Some(pred) = predicate else {
            return Ok(candidates);
        };
        let mut bindings = HashMap::new();
        let mut out = Vec::new();
        for oid in candidates {
            bindings.insert(var.to_string(), Value::Ref(oid));
            let ctx = EvalCtx {
                space: &self.space,
                dispatcher: &self.dispatcher,
                txn,
                bindings: &bindings,
            };
            if pred.eval_bool(&ctx)? {
                out.push(oid);
            }
        }
        Ok(out)
    }

    /// Recognize `var.attr <op> literal` (possibly under a top-level
    /// `and`) and answer it from an index. Returns the candidate set,
    /// the plan, and the residual predicate still to apply.
    fn try_index(
        &self,
        class: ClassId,
        var: &str,
        pred: &Expr,
    ) -> Option<(Vec<reach_common::ObjectId>, Plan, Option<Expr>)> {
        // Split a top-level conjunction into clauses.
        fn clauses(e: &Expr, out: &mut Vec<Expr>) {
            if let Expr::Bin(BinOp::And, l, r) = e {
                clauses(l, out);
                clauses(r, out);
            } else {
                out.push(e.clone());
            }
        }
        let mut cs = Vec::new();
        clauses(pred, &mut cs);
        for (i, clause) in cs.iter().enumerate() {
            if let Some((attr, op, value)) = sargable(clause, var) {
                if !self.indexing.has_index(class, &attr) {
                    continue;
                }
                let (candidates, plan) = match op {
                    BinOp::Eq => (
                        self.indexing.lookup_eq(class, &attr, &value)?,
                        Plan::IndexEq {
                            attribute: attr.clone(),
                        },
                    ),
                    BinOp::Lt => (
                        self.indexing.lookup_range(
                            class,
                            &attr,
                            Bound::Unbounded,
                            Bound::Excluded(value),
                        )?,
                        Plan::IndexRange {
                            attribute: attr.clone(),
                        },
                    ),
                    BinOp::Le => (
                        self.indexing.lookup_range(
                            class,
                            &attr,
                            Bound::Unbounded,
                            Bound::Included(value),
                        )?,
                        Plan::IndexRange {
                            attribute: attr.clone(),
                        },
                    ),
                    BinOp::Gt => (
                        self.indexing.lookup_range(
                            class,
                            &attr,
                            Bound::Excluded(value),
                            Bound::Unbounded,
                        )?,
                        Plan::IndexRange {
                            attribute: attr.clone(),
                        },
                    ),
                    BinOp::Ge => (
                        self.indexing.lookup_range(
                            class,
                            &attr,
                            Bound::Included(value),
                            Bound::Unbounded,
                        )?,
                        Plan::IndexRange {
                            attribute: attr.clone(),
                        },
                    ),
                    _ => continue,
                };
                // Residual: the remaining clauses re-conjoined.
                let rest: Vec<Expr> = cs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect();
                let residual = rest
                    .into_iter()
                    .reduce(|a, b| Expr::Bin(BinOp::And, Box::new(a), Box::new(b)));
                return Some((candidates, plan, residual));
            }
        }
        None
    }
}

/// `var.attr <op> literal` or `literal <op> var.attr` (flipped).
fn sargable(e: &Expr, var: &str) -> Option<(String, BinOp, Value)> {
    let Expr::Bin(op, l, r) = e else { return None };
    let flip = |op: BinOp| match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    };
    let attr_of = |e: &Expr| -> Option<String> {
        if let Expr::Attr(base, attr) = e {
            if matches!(&**base, Expr::Var(v) if v == var) {
                return Some(attr.clone());
            }
        }
        None
    };
    let lit_of = |e: &Expr| -> Option<Value> {
        if let Expr::Lit(v) = e {
            Some(v.clone())
        } else {
            None
        }
    };
    if let (Some(attr), Some(val)) = (attr_of(l), lit_of(r)) {
        return Some((attr, *op, val));
    }
    if let (Some(val), Some(attr)) = (lit_of(l), attr_of(r)) {
        return Some((attr, flip(*op), val));
    }
    None
}

impl PolicyManager for QueryPm {
    fn dimension(&self) -> &'static str {
        "query"
    }
    fn name(&self) -> &'static str {
        "oql-extent-index"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence_correctly() {
        // a + b * c < 10 and not d
        let e = parse_expr("a + b * c < 10 and not d").unwrap();
        match e {
            Expr::Bin(BinOp::And, l, r) => {
                assert!(matches!(*l, Expr::Bin(BinOp::Lt, _, _)));
                assert!(matches!(*r, Expr::Not(_)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn parses_the_papers_condition() {
        // §6.1's WaterLevel condition, almost verbatim.
        let e = parse_expr(
            "x < 37 and river->getWaterTemp() > 24.5 and reactor->getHeatOutput() > 1000000",
        )
        .unwrap();
        // Left-assoc and: ((a and b) and c)
        assert!(matches!(e, Expr::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn arrow_and_dot_are_interchangeable() {
        assert_eq!(
            parse_expr("r->level").unwrap(),
            parse_expr("r.level").unwrap()
        );
    }

    #[test]
    fn literal_evaluation() {
        let empty = HashMap::new();
        let schema = Arc::new(reach_object::Schema::new());
        let space = ObjectSpace::new(Arc::clone(&schema));
        let methods = Arc::new(reach_object::MethodRegistry::new());
        let disp = Dispatcher::new(schema, methods);
        let ctx = EvalCtx {
            space: &space,
            dispatcher: &disp,
            txn: TxnId::NULL,
            bindings: &empty,
        };
        assert_eq!(
            parse_expr("1 + 2 * 3").unwrap().eval(&ctx).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            parse_expr("(1 + 2) * 3").unwrap().eval(&ctx).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            parse_expr("10 / 4").unwrap().eval(&ctx).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            parse_expr("10.0 / 4").unwrap().eval(&ctx).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            parse_expr("1 < 2 and 2 < 3").unwrap().eval(&ctx).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            parse_expr("not (1 == 1)").unwrap().eval(&ctx).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            parse_expr("-5 + 1").unwrap().eval(&ctx).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            parse_expr("'abc' == \"abc\"").unwrap().eval(&ctx).unwrap(),
            Value::Bool(true)
        );
        assert!(parse_expr("1 / 0").unwrap().eval(&ctx).is_err());
    }

    #[test]
    fn unbound_variable_errors() {
        let empty = HashMap::new();
        let schema = Arc::new(reach_object::Schema::new());
        let space = ObjectSpace::new(Arc::clone(&schema));
        let disp = Dispatcher::new(schema, Arc::new(reach_object::MethodRegistry::new()));
        let ctx = EvalCtx {
            space: &space,
            dispatcher: &disp,
            txn: TxnId::NULL,
            bindings: &empty,
        };
        assert!(parse_expr("ghost").unwrap().eval(&ctx).is_err());
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("select r from River r where r.level < 37").unwrap();
        assert_eq!(q.class_name, "River");
        assert_eq!(q.var, "r");
        assert!(q.predicate.is_some());
        let q = parse_query("select x from Reactor x").unwrap();
        assert!(q.predicate.is_none());
        assert!(parse_query("select a from River b").is_err());
        assert!(parse_query("frobnicate the database").is_err());
    }

    #[test]
    fn sargable_recognition() {
        let e = parse_expr("r.level < 37").unwrap();
        let (attr, op, val) = sargable(&e, "r").unwrap();
        assert_eq!(attr, "level");
        assert_eq!(op, BinOp::Lt);
        assert_eq!(val, Value::Int(37));
        // Flipped comparison.
        let e = parse_expr("37 >= r.level").unwrap();
        let (_, op, _) = sargable(&e, "r").unwrap();
        assert_eq!(op, BinOp::Le);
        // Method calls are not sargable.
        assert!(sargable(&parse_expr("r.temp() < 3").unwrap(), "r").is_none());
    }
}
