//! The Indexing PM: attribute indexes maintained by sentries, persisted
//! through the storage manager's WAL-logged B+Trees.
//!
//! The paper's future-work section singles out "index maintenance PMs
//! with the active database paradigm" — indexes kept consistent by
//! reacting to events rather than by code woven into every write path.
//! This PM does exactly that: it subscribes to the state-change and
//! lifecycle sentries and updates its indexes from the event stream.
//!
//! Each index exists twice, deliberately:
//!
//! * a **persistent B+Tree** ([`reach_storage::BTree`] behind
//!   [`StorageManager::index_insert`]) keyed by the attribute value's
//!   memcomparable encoding ([`Value::index_key`]) — WAL-logged,
//!   buffer-pool-resident, crash-recovered; this is what makes
//!   rule-condition evaluation fast *after a restart*;
//! * an **in-memory `BTreeMap` shadow** — the differential oracle. The
//!   planner reads the shadow (no I/O on the query path); torture and
//!   stress runs call [`IndexingPm::verify_shadow`] to compare the two
//!   structures pair-for-pair.
//!
//! Transactional protocol: sentry events update the shadow eagerly (the
//! Change PM's undo also goes through the public mutation API, so
//! aborted transactions leave the shadow consistent with no special
//! code) and *buffer* the corresponding persistent operations per
//! top-level transaction. The buffer flushes into the storage manager
//! at `commit_top` — before the Persistence PM's durability point, so
//! the logical IndexInsert/IndexDelete records sit inside the
//! transaction's WAL window and a crash mid-commit undoes them. On
//! abort the buffer is dropped: the persistent tree was never touched.
//! Subtransaction rollback truncates the buffer to the savepoint taken
//! at the child's begin, while the Change PM's compensating events
//! (which run under `TxnId::NULL`) repair the shadow only.

use crate::meta::PolicyManager;
use reach_common::sync::{Mutex, RwLock};
use reach_common::{ClassId, ObjectId, ReachError, Result, TxnId};
use reach_object::{
    LifecycleSentry, ObjectSpace, ObjectState, Schema, StateChange, StateSentry, Value,
};
use reach_storage::StorageManager;
use reach_txn::{ResourceManager, TransactionManager};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;
use std::sync::{Arc, Weak};

/// `Value` wrapper ordered by [`Value::compare`] so it can key a B-tree.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.compare(&other.0)
    }
}

type Tree = BTreeMap<IndexKey, BTreeSet<ObjectId>>;

struct Index {
    class: ClassId,
    attribute: String,
    /// In-memory shadow — planner's read path and differential oracle.
    tree: Tree,
    /// Persistent B+Tree id in the storage manager's index catalog.
    store_id: u64,
}

/// One buffered persistent-tree operation, keyed to its index.
struct IndexOp {
    store_id: u64,
    key: Vec<u8>,
    oid: u64,
    insert: bool,
}

/// The indexing policy manager.
pub struct IndexingPm {
    schema: Arc<Schema>,
    /// Resolves event transactions to their top level (and runs the
    /// internal bulk-load transaction of `create_index`).
    tm: Weak<TransactionManager>,
    sm: Arc<StorageManager>,
    indexes: RwLock<Vec<Index>>,
    /// Persistent ops buffered per top-level transaction, flushed at
    /// `commit_top`, dropped at `abort_top`, truncated on subtransaction
    /// rollback.
    buffers: Mutex<HashMap<TxnId, Vec<IndexOp>>>,
}

impl IndexingPm {
    /// Create the PM and subscribe it to the space's sentries. The
    /// caller must also register it as the **first** resource manager —
    /// its commit flush has to precede the Persistence PM's
    /// `sm.commit` durability point.
    pub fn new(
        space: &ObjectSpace,
        tm: &Arc<TransactionManager>,
        sm: Arc<StorageManager>,
    ) -> Arc<Self> {
        let pm = Arc::new(IndexingPm {
            schema: Arc::clone(space.schema()),
            tm: Arc::downgrade(tm),
            sm,
            indexes: RwLock::new(Vec::new()),
            buffers: Mutex::new(HashMap::new()),
        });
        space.add_state_sentry(Arc::clone(&pm) as Arc<dyn StateSentry>);
        space.add_lifecycle_sentry(Arc::clone(&pm) as Arc<dyn LifecycleSentry>);
        pm
    }

    /// Build an index on `class.attribute`; future changes are absorbed
    /// from the event stream.
    ///
    /// The persistent tree is named `idx.<class>.<attribute>` (class
    /// ids are stable because the schema lives in code, re-declared in
    /// the same order each run). Two bootstrap paths:
    ///
    /// * live extent empty, persistent tree non-empty — the restart
    ///   path: the shadow is rebuilt by *decoding* the stored
    ///   memcomparable keys, no object needs to be faulted in;
    /// * otherwise the shadow is built from the (deep) extent and the
    ///   persistent tree is reconciled to it under an internal
    ///   transaction (also the drop-then-recreate repair path).
    pub fn create_index(&self, space: &ObjectSpace, class: ClassId, attribute: &str) -> Result<()> {
        // Validate the attribute exists.
        self.schema.attr_slot(class, attribute)?;
        if self
            .indexes
            .read()
            .iter()
            .any(|i| i.class == class && i.attribute == attribute)
        {
            return Err(ReachError::SchemaError(format!(
                "index on {class}.{attribute} already exists"
            )));
        }
        let store_id = self
            .sm
            .create_index(&format!("idx.{}.{}", class.raw(), attribute))?;
        let persisted: BTreeSet<(Vec<u8>, u64)> = self
            .sm
            .index_range(store_id, Bound::Unbounded, Bound::Unbounded)?
            .into_iter()
            .collect();
        let extent = space.extents().extent_deep(&self.schema, class);
        let mut tree: Tree = BTreeMap::new();
        if extent.is_empty() && !persisted.is_empty() {
            for (key, oid) in &persisted {
                let v = Value::decode_index_key(key)?;
                tree.entry(IndexKey(v))
                    .or_default()
                    .insert(ObjectId::new(*oid));
            }
        } else {
            for oid in extent {
                let v = space.get_attr(oid, attribute)?;
                tree.entry(IndexKey(v)).or_default().insert(oid);
            }
            let want = flatten(&tree);
            if want != persisted {
                let tm = self
                    .tm
                    .upgrade()
                    .ok_or_else(|| ReachError::Io("transaction manager gone".into()))?;
                let txn = tm.begin()?;
                for (k, o) in persisted.difference(&want) {
                    self.sm.index_delete(txn, store_id, k, *o)?;
                }
                for (k, o) in want.difference(&persisted) {
                    self.sm.index_insert(txn, store_id, k, *o)?;
                }
                tm.commit(txn)?;
            }
        }
        let mut indexes = self.indexes.write();
        if indexes
            .iter()
            .any(|i| i.class == class && i.attribute == attribute)
        {
            return Err(ReachError::SchemaError(format!(
                "index on {class}.{attribute} already exists"
            )));
        }
        indexes.push(Index {
            class,
            attribute: attribute.to_string(),
            tree,
            store_id,
        });
        Ok(())
    }

    /// Drop an index; true if one existed. Only the in-memory side is
    /// removed — the persistent tree stays in the catalog and is
    /// reconciled (or adopted) if the index is re-created.
    pub fn drop_index(&self, class: ClassId, attribute: &str) -> bool {
        let mut indexes = self.indexes.write();
        let before = indexes.len();
        indexes.retain(|i| !(i.class == class && i.attribute == attribute));
        indexes.len() != before
    }

    /// Whether a usable index exists for `class.attribute` (an index on
    /// the class itself or any ancestor covers the lookup).
    pub fn has_index(&self, class: ClassId, attribute: &str) -> bool {
        let indexes = self.indexes.read();
        indexes
            .iter()
            .any(|i| i.attribute == attribute && self.schema.is_subclass(class, i.class))
    }

    /// Exact-match lookup (served from the shadow — no I/O).
    pub fn lookup_eq(
        &self,
        class: ClassId,
        attribute: &str,
        value: &Value,
    ) -> Option<Vec<ObjectId>> {
        let indexes = self.indexes.read();
        let idx = indexes
            .iter()
            .find(|i| i.attribute == attribute && self.schema.is_subclass(class, i.class))?;
        let m = self.sm.metrics();
        if m.on() {
            m.index.lookups.inc();
        }
        Some(
            idx.tree
                .get(&IndexKey(value.clone()))
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )
    }

    /// Range lookup with inclusive/exclusive bounds (shadow-served).
    pub fn lookup_range(
        &self,
        class: ClassId,
        attribute: &str,
        low: Bound<Value>,
        high: Bound<Value>,
    ) -> Option<Vec<ObjectId>> {
        let indexes = self.indexes.read();
        let idx = indexes
            .iter()
            .find(|i| i.attribute == attribute && self.schema.is_subclass(class, i.class))?;
        let m = self.sm.metrics();
        if m.on() {
            m.index.range_scans.inc();
        }
        let lo = map_bound(low);
        let hi = map_bound(high);
        let mut out = Vec::new();
        for (_, oids) in idx.tree.range((lo, hi)) {
            out.extend(oids.iter().copied());
        }
        Some(out)
    }

    /// Number of indexes (introspection).
    pub fn index_count(&self) -> usize {
        self.indexes.read().len()
    }

    /// Differential check: every index's persistent B+Tree must hold
    /// exactly the shadow's `(memcomparable key, oid)` pairs. Call at a
    /// quiescent point (between transactions) — mid-transaction the
    /// shadow legitimately runs ahead of the unflushed buffer.
    pub fn verify_shadow(&self) -> Result<()> {
        let indexes = self.indexes.read();
        for idx in indexes.iter() {
            let want = flatten(&idx.tree);
            let got: BTreeSet<(Vec<u8>, u64)> = self
                .sm
                .index_range(idx.store_id, Bound::Unbounded, Bound::Unbounded)?
                .into_iter()
                .collect();
            if got != want {
                return Err(ReachError::Io(format!(
                    "index shadow divergence on {}.{}: persistent tree holds {} pairs, \
                     shadow holds {}",
                    idx.class,
                    idx.attribute,
                    got.len(),
                    want.len()
                )));
            }
        }
        Ok(())
    }

    /// Resolve the owning top-level transaction of an event. `NULL`
    /// (Change PM compensations) and unmanaged transactions buffer
    /// nothing — their shadow effect is the whole story.
    fn top_of(&self, txn: TxnId) -> Option<TxnId> {
        if txn.is_null() {
            return None;
        }
        let tm = self.tm.upgrade()?;
        tm.top_of(txn).ok()
    }

    fn buffer_ops(&self, top: TxnId, ops: Vec<IndexOp>) {
        if !ops.is_empty() {
            self.buffers.lock().entry(top).or_default().extend(ops);
        }
    }

    fn apply_to_matching<F: FnMut(&mut Index)>(&self, class: ClassId, attribute: &str, mut f: F) {
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            if idx.attribute == attribute && self.schema.is_subclass(class, idx.class) {
                f(idx);
            }
        }
    }

    fn index_object(&self, txn: TxnId, oid: ObjectId, state: &ObjectState, insert: bool) {
        let Ok(attrs) = self.schema.attributes(state.class) else {
            return;
        };
        let top = self.top_of(txn);
        let mut ops: Vec<IndexOp> = Vec::new();
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            if !self.schema.is_subclass(state.class, idx.class) {
                continue;
            }
            if let Some(slot) = attrs.iter().position(|a| a.name == idx.attribute) {
                let key = IndexKey(state.attrs[slot].clone());
                if top.is_some() {
                    ops.push(IndexOp {
                        store_id: idx.store_id,
                        key: key.0.index_key(),
                        oid: oid.raw(),
                        insert,
                    });
                }
                if insert {
                    idx.tree.entry(key).or_default().insert(oid);
                } else if let Some(set) = idx.tree.get_mut(&key) {
                    set.remove(&oid);
                    if set.is_empty() {
                        idx.tree.remove(&key);
                    }
                }
            }
        }
        drop(indexes);
        if let Some(top) = top {
            self.buffer_ops(top, ops);
        }
    }
}

/// A shadow tree's pairs in the persistent representation.
fn flatten(tree: &Tree) -> BTreeSet<(Vec<u8>, u64)> {
    tree.iter()
        .flat_map(|(k, oids)| {
            let key = k.0.index_key();
            oids.iter().map(move |o| (key.clone(), o.raw()))
        })
        .collect()
}

impl StateSentry for IndexingPm {
    fn on_change(&self, change: &StateChange) {
        let top = self.top_of(change.txn);
        let mut ops: Vec<IndexOp> = Vec::new();
        self.apply_to_matching(change.class, &change.attribute, |idx| {
            if top.is_some() {
                ops.push(IndexOp {
                    store_id: idx.store_id,
                    key: change.old.index_key(),
                    oid: change.oid.raw(),
                    insert: false,
                });
                ops.push(IndexOp {
                    store_id: idx.store_id,
                    key: change.new.index_key(),
                    oid: change.oid.raw(),
                    insert: true,
                });
            }
            let old_key = IndexKey(change.old.clone());
            if let Some(set) = idx.tree.get_mut(&old_key) {
                set.remove(&change.oid);
                if set.is_empty() {
                    idx.tree.remove(&old_key);
                }
            }
            idx.tree
                .entry(IndexKey(change.new.clone()))
                .or_default()
                .insert(change.oid);
        });
        if let Some(top) = top {
            self.buffer_ops(top, ops);
        }
    }
}

impl LifecycleSentry for IndexingPm {
    fn on_create(&self, txn: TxnId, oid: ObjectId, state: &ObjectState) {
        self.index_object(txn, oid, state, true);
    }

    fn on_delete(&self, txn: TxnId, oid: ObjectId, state: &ObjectState) {
        self.index_object(txn, oid, state, false);
    }
}

impl ResourceManager for IndexingPm {
    fn begin_top(&self, _txn: TxnId) -> Result<()> {
        // Buffers are created lazily on the first buffered op.
        Ok(())
    }

    fn savepoint(&self, top: TxnId) -> Result<u64> {
        Ok(self
            .buffers
            .lock()
            .get(&top)
            .map(|b| b.len() as u64)
            .unwrap_or(0))
    }

    fn rollback_to(&self, top: TxnId, savepoint: u64) -> Result<()> {
        // Drop the child's buffered ops; the Change PM's compensating
        // events (running under NULL) repair the shadow, so after both
        // the two structures agree again.
        if let Some(buf) = self.buffers.lock().get_mut(&top) {
            buf.truncate(savepoint as usize);
        }
        Ok(())
    }

    fn commit_top(&self, txn: TxnId) -> Result<()> {
        // Flush in event order under the committing transaction; the
        // logical WAL records land before the Persistence PM's
        // `sm.commit`, so a crash mid-commit rolls them back through
        // the tree. A compensated pair (insert then delete of the same
        // entry) nets out by sequential application.
        let ops = self.buffers.lock().remove(&txn).unwrap_or_default();
        for op in ops {
            if op.insert {
                self.sm.index_insert(txn, op.store_id, &op.key, op.oid)?;
            } else {
                self.sm.index_delete(txn, op.store_id, &op.key, op.oid)?;
            }
        }
        Ok(())
    }

    fn prepare_top(&self, txn: TxnId, _gid: u64) -> Result<()> {
        // 2PC phase one: flush the buffered tree operations now so they
        // sit below the Prepare record the Persistence PM forces next.
        // The eventual commit decision finds the buffer already drained
        // (`commit_top` then no-ops); an abort decision rolls the
        // logical records back through the tree like any other undo.
        self.commit_top(txn)
    }

    fn abort_top(&self, txn: TxnId) -> Result<()> {
        // Never flushed — the persistent tree was never touched.
        self.buffers.lock().remove(&txn);
        Ok(())
    }
}

impl PolicyManager for IndexingPm {
    fn dimension(&self) -> &'static str {
        "indexing"
    }
    fn name(&self) -> &'static str {
        "sentry-maintained-persistent-btree"
    }
}

fn map_bound(b: Bound<Value>) -> Bound<IndexKey> {
    match b {
        Bound::Included(v) => Bound::Included(IndexKey(v)),
        Bound::Excluded(v) => Bound::Excluded(IndexKey(v)),
        Bound::Unbounded => Bound::Unbounded,
    }
}
