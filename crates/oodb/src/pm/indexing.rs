//! The Indexing PM: attribute indexes maintained by sentries.
//!
//! The paper's future-work section singles out "index maintenance PMs
//! with the active database paradigm" — indexes kept consistent by
//! reacting to events rather than by code woven into every write path.
//! This PM does exactly that: it subscribes to the state-change and
//! lifecycle sentries and updates its B-trees from the event stream.
//! Because undo (Change PM) also goes through the public mutation API,
//! aborted transactions leave indexes consistent with no special code.

use crate::meta::PolicyManager;
use reach_common::sync::RwLock;
use reach_common::{ClassId, ObjectId, ReachError, Result, TxnId};
use reach_object::{
    LifecycleSentry, ObjectSpace, ObjectState, Schema, StateChange, StateSentry, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use std::sync::Arc;

/// `Value` wrapper ordered by [`Value::compare`] so it can key a B-tree.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.compare(&other.0)
    }
}

type Tree = BTreeMap<IndexKey, BTreeSet<ObjectId>>;

struct Index {
    class: ClassId,
    attribute: String,
    tree: Tree,
}

/// The indexing policy manager.
pub struct IndexingPm {
    schema: Arc<Schema>,
    indexes: RwLock<Vec<Index>>,
}

impl IndexingPm {
    /// Create the PM and subscribe it to the space's sentries.
    pub fn new(space: &ObjectSpace) -> Arc<Self> {
        let pm = Arc::new(IndexingPm {
            schema: Arc::clone(space.schema()),
            indexes: RwLock::new(Vec::new()),
        });
        space.add_state_sentry(Arc::clone(&pm) as Arc<dyn StateSentry>);
        space.add_lifecycle_sentry(Arc::clone(&pm) as Arc<dyn LifecycleSentry>);
        pm
    }

    /// Build an index on `class.attribute` over the current (deep)
    /// extent; future changes are absorbed from the event stream.
    pub fn create_index(&self, space: &ObjectSpace, class: ClassId, attribute: &str) -> Result<()> {
        // Validate the attribute exists.
        self.schema.attr_slot(class, attribute)?;
        let mut tree: Tree = BTreeMap::new();
        for oid in space.extents().extent_deep(&self.schema, class) {
            let v = space.get_attr(oid, attribute)?;
            tree.entry(IndexKey(v)).or_default().insert(oid);
        }
        let mut indexes = self.indexes.write();
        if indexes
            .iter()
            .any(|i| i.class == class && i.attribute == attribute)
        {
            return Err(ReachError::SchemaError(format!(
                "index on {class}.{attribute} already exists"
            )));
        }
        indexes.push(Index {
            class,
            attribute: attribute.to_string(),
            tree,
        });
        Ok(())
    }

    /// Drop an index; true if one existed.
    pub fn drop_index(&self, class: ClassId, attribute: &str) -> bool {
        let mut indexes = self.indexes.write();
        let before = indexes.len();
        indexes.retain(|i| !(i.class == class && i.attribute == attribute));
        indexes.len() != before
    }

    /// Whether a usable index exists for `class.attribute` (an index on
    /// the class itself or any ancestor covers the lookup).
    pub fn has_index(&self, class: ClassId, attribute: &str) -> bool {
        let indexes = self.indexes.read();
        indexes
            .iter()
            .any(|i| i.attribute == attribute && self.schema.is_subclass(class, i.class))
    }

    /// Exact-match lookup.
    pub fn lookup_eq(
        &self,
        class: ClassId,
        attribute: &str,
        value: &Value,
    ) -> Option<Vec<ObjectId>> {
        let indexes = self.indexes.read();
        let idx = indexes
            .iter()
            .find(|i| i.attribute == attribute && self.schema.is_subclass(class, i.class))?;
        Some(
            idx.tree
                .get(&IndexKey(value.clone()))
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )
    }

    /// Range lookup with inclusive/exclusive bounds.
    pub fn lookup_range(
        &self,
        class: ClassId,
        attribute: &str,
        low: Bound<Value>,
        high: Bound<Value>,
    ) -> Option<Vec<ObjectId>> {
        let indexes = self.indexes.read();
        let idx = indexes
            .iter()
            .find(|i| i.attribute == attribute && self.schema.is_subclass(class, i.class))?;
        let lo = map_bound(low);
        let hi = map_bound(high);
        let mut out = Vec::new();
        for (_, oids) in idx.tree.range((lo, hi)) {
            out.extend(oids.iter().copied());
        }
        Some(out)
    }

    /// Number of indexes (introspection).
    pub fn index_count(&self) -> usize {
        self.indexes.read().len()
    }

    fn apply_to_matching<F: FnMut(&mut Index)>(&self, class: ClassId, attribute: &str, mut f: F) {
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            if idx.attribute == attribute && self.schema.is_subclass(class, idx.class) {
                f(idx);
            }
        }
    }

    fn index_object(&self, oid: ObjectId, state: &ObjectState, insert: bool) {
        let Ok(attrs) = self.schema.attributes(state.class) else {
            return;
        };
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            if !self.schema.is_subclass(state.class, idx.class) {
                continue;
            }
            if let Some(slot) = attrs.iter().position(|a| a.name == idx.attribute) {
                let key = IndexKey(state.attrs[slot].clone());
                if insert {
                    idx.tree.entry(key).or_default().insert(oid);
                } else if let Some(set) = idx.tree.get_mut(&key) {
                    set.remove(&oid);
                    if set.is_empty() {
                        idx.tree.remove(&key);
                    }
                }
            }
        }
    }
}

impl StateSentry for IndexingPm {
    fn on_change(&self, change: &StateChange) {
        self.apply_to_matching(change.class, &change.attribute, |idx| {
            let old_key = IndexKey(change.old.clone());
            if let Some(set) = idx.tree.get_mut(&old_key) {
                set.remove(&change.oid);
                if set.is_empty() {
                    idx.tree.remove(&old_key);
                }
            }
            idx.tree
                .entry(IndexKey(change.new.clone()))
                .or_default()
                .insert(change.oid);
        });
    }
}

impl LifecycleSentry for IndexingPm {
    fn on_create(&self, _txn: TxnId, oid: ObjectId, state: &ObjectState) {
        self.index_object(oid, state, true);
    }

    fn on_delete(&self, _txn: TxnId, oid: ObjectId, state: &ObjectState) {
        self.index_object(oid, state, false);
    }
}

impl PolicyManager for IndexingPm {
    fn dimension(&self) -> &'static str {
        "indexing"
    }
    fn name(&self) -> &'static str {
        "sentry-maintained-btree"
    }
}

fn map_bound(b: Bound<Value>) -> Bound<IndexKey> {
    match b {
        Bound::Included(v) => Bound::Included(IndexKey(v)),
        Bound::Excluded(v) => Bound::Excluded(IndexKey(v)),
        Bound::Unbounded => Bound::Unbounded,
    }
}
