//! The policy managers plugged onto the meta-architecture bus
//! (Figure 1): Persistence, Transaction, Change, Indexing, Query.

pub mod change;
pub mod indexing;
pub mod persistence;
pub mod query;
pub mod snapshot;
pub mod transaction;
