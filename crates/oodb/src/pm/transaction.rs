//! The Transaction PM: the bus-visible face of the transaction manager.
//!
//! Open OODB's Transaction PM extends operation behaviour with
//! transaction semantics. Ours wraps [`TransactionManager`] (flat +
//! closed nested transactions) and is where the rule engine's deferred
//! queue plugs in: §6.4's "control now resides with the transaction
//! policy manager who knows that at commit-time the deferred rules can
//! be executed" is exactly the [`TransactionManager::defer`] hook this
//! PM exposes.

use crate::meta::PolicyManager;
use reach_common::{Result, TxnId};
use reach_txn::{TransactionManager, TxnState};
use std::sync::Arc;

/// Thin policy-manager facade over the transaction manager.
pub struct TransactionPm {
    tm: Arc<TransactionManager>,
}

impl TransactionPm {
    pub fn new(tm: Arc<TransactionManager>) -> Self {
        TransactionPm { tm }
    }

    pub fn manager(&self) -> &Arc<TransactionManager> {
        &self.tm
    }

    /// Begin a top-level transaction.
    pub fn begin(&self) -> Result<TxnId> {
        self.tm.begin()
    }

    /// Begin a subtransaction.
    pub fn begin_nested(&self, parent: TxnId) -> Result<TxnId> {
        self.tm.begin_nested(parent)
    }

    /// Commit (top-level commit runs deferred work and write-back).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.tm.commit(txn)
    }

    /// Abort.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.tm.abort(txn)
    }

    /// Current state.
    pub fn state(&self, txn: TxnId) -> Result<TxnState> {
        self.tm.state(txn)
    }
}

impl PolicyManager for TransactionPm {
    fn dimension(&self) -> &'static str {
        "transactions"
    }
    fn name(&self) -> &'static str {
        "nested-2pl"
    }
}
