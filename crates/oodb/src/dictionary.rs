//! The data dictionary: "a globally known repository of system, object,
//! name, and type information" (§5).
//!
//! Its most visible job in the paper is resolving *named roots* — the
//! rule example fetches the reactor with `OpenOODB->fetch("Block A")`.
//! Type information lives in the schema (shared by reference); this
//! module owns the name space.

use crate::meta::SupportModule;
use reach_common::sync::RwLock;
use reach_common::{ObjectId, ReachError, Result};
use reach_object::Schema;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Name ⇄ object bindings plus access to type information.
pub struct DataDictionary {
    schema: Arc<Schema>,
    names: RwLock<BTreeMap<String, ObjectId>>,
}

impl DataDictionary {
    pub fn new(schema: Arc<Schema>) -> Self {
        DataDictionary {
            schema,
            names: RwLock::new(BTreeMap::new()),
        }
    }

    /// The type repository.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Bind `name` to an object (a persistent root).
    pub fn bind(&self, name: &str, oid: ObjectId) {
        self.names.write().insert(name.to_string(), oid);
    }

    /// Remove a binding; returns the old target.
    pub fn unbind(&self, name: &str) -> Option<ObjectId> {
        self.names.write().remove(name)
    }

    /// Resolve a name (the `fetch("Block A")` of the paper).
    pub fn lookup(&self, name: &str) -> Result<ObjectId> {
        self.names
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| ReachError::NameNotFound(name.to_string()))
    }

    /// All bindings, name-sorted (persistence write-out, introspection).
    pub fn bindings(&self) -> Vec<(String, ObjectId)> {
        self.names
            .read()
            .iter()
            .map(|(n, o)| (n.clone(), *o))
            .collect()
    }

    /// Replace all bindings (persistence load).
    pub fn load(&self, bindings: Vec<(String, ObjectId)>) {
        let mut names = self.names.write();
        names.clear();
        names.extend(bindings);
    }
}

impl SupportModule for DataDictionary {
    fn name(&self) -> &'static str {
        "data-dictionary"
    }
}

impl std::fmt::Debug for DataDictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataDictionary")
            .field("names", &self.names.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let d = DataDictionary::new(Arc::new(Schema::new()));
        d.bind("Block A", ObjectId::new(7));
        assert_eq!(d.lookup("Block A").unwrap(), ObjectId::new(7));
        assert_eq!(d.unbind("Block A"), Some(ObjectId::new(7)));
        assert!(d.lookup("Block A").is_err());
    }

    #[test]
    fn load_replaces_bindings() {
        let d = DataDictionary::new(Arc::new(Schema::new()));
        d.bind("old", ObjectId::new(1));
        d.load(vec![("new".into(), ObjectId::new(2))]);
        assert!(d.lookup("old").is_err());
        assert_eq!(d.lookup("new").unwrap(), ObjectId::new(2));
        assert_eq!(d.bindings().len(), 1);
    }
}
