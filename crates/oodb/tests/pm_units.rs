//! Focused tests of the policy managers through the assembled database:
//! Change PM savepoints, Transaction PM facade, query planning details,
//! dictionary persistence, index maintenance under mixed workloads.

use open_oodb::pm::query::{parse_query, Plan};
use open_oodb::{Database, TransactionPm};
use reach_object::{Value, ValueType};
use reach_txn::TxnState;
use std::sync::Arc;

fn db_with_points() -> (Arc<Database>, reach_common::ClassId) {
    let db = Database::in_memory().unwrap();
    let class = db
        .define_class("Point")
        .attr("x", ValueType::Int, Value::Int(0))
        .attr("y", ValueType::Int, Value::Int(0))
        .define()
        .unwrap();
    (db, class)
}

#[test]
fn change_pm_savepoints_nest_arbitrarily_deep() {
    let (db, class) = db_with_points();
    let t0 = db.begin().unwrap();
    let p = db.create(t0, class).unwrap();
    db.set_attr(t0, p, "x", Value::Int(1)).unwrap();
    let t1 = db.begin_nested(t0).unwrap();
    db.set_attr(t1, p, "x", Value::Int(2)).unwrap();
    let t2 = db.begin_nested(t1).unwrap();
    db.set_attr(t2, p, "x", Value::Int(3)).unwrap();
    let t3 = db.begin_nested(t2).unwrap();
    db.set_attr(t3, p, "x", Value::Int(4)).unwrap();
    // Abort the innermost two levels one by one.
    db.abort(t3).unwrap();
    assert_eq!(db.get_attr(t2, p, "x").unwrap(), Value::Int(3));
    db.abort(t2).unwrap();
    assert_eq!(db.get_attr(t1, p, "x").unwrap(), Value::Int(2));
    // Commit the middle, then abort the root: everything unwinds.
    db.commit(t1).unwrap();
    db.abort(t0).unwrap();
    let t = db.begin().unwrap();
    assert!(db.get_attr(t, p, "x").is_err(), "object creation undone");
    db.commit(t).unwrap();
}

#[test]
fn change_pm_pending_counter_reflects_txn_work() {
    let (db, class) = db_with_points();
    let t = db.begin().unwrap();
    assert_eq!(db.change_pm().pending(t), 0);
    let p = db.create(t, class).unwrap();
    assert_eq!(db.change_pm().pending(t), 1); // the create
    db.set_attr(t, p, "x", Value::Int(5)).unwrap();
    db.set_attr(t, p, "y", Value::Int(6)).unwrap();
    assert_eq!(db.change_pm().pending(t), 3);
    db.commit(t).unwrap();
    assert_eq!(db.change_pm().pending(t), 0, "cleared at commit");
}

#[test]
fn transaction_pm_facade() {
    let (db, _class) = db_with_points();
    let pm = TransactionPm::new(Arc::clone(db.txn_manager()));
    let t = pm.begin().unwrap();
    assert_eq!(pm.state(t).unwrap(), TxnState::Active);
    let child = pm.begin_nested(t).unwrap();
    pm.commit(child).unwrap();
    pm.commit(t).unwrap();
    assert_eq!(pm.state(t).unwrap(), TxnState::Committed);
    let a = pm.begin().unwrap();
    pm.abort(a).unwrap();
    assert_eq!(pm.state(a).unwrap(), TxnState::Aborted);
}

#[test]
fn query_planner_uses_residual_predicates() {
    let (db, class) = db_with_points();
    let t = db.begin().unwrap();
    for i in 0..50 {
        db.create_with(t, class, &[("x", Value::Int(i)), ("y", Value::Int(i % 7))])
            .unwrap();
    }
    db.commit(t).unwrap();
    db.create_index(class, "x").unwrap();
    let t = db.begin().unwrap();
    // x is indexed, y is the residual filter.
    let (hits, plan) = db
        .query_with_plan(t, "select p from Point p where p.x < 20 and p.y == 3")
        .unwrap();
    assert!(matches!(plan, Plan::IndexRange { ref attribute } if attribute == "x"));
    // Expected: x in 0..20 with x % 7 == 3 -> {3, 10, 17}.
    assert_eq!(hits.len(), 3);
    db.commit(t).unwrap();
}

#[test]
fn query_planner_handles_flipped_and_equality_predicates() {
    let (db, class) = db_with_points();
    let t = db.begin().unwrap();
    for i in 0..30 {
        db.create_with(t, class, &[("x", Value::Int(i % 10))])
            .unwrap();
    }
    db.commit(t).unwrap();
    db.create_index(class, "x").unwrap();
    let t = db.begin().unwrap();
    let (hits, plan) = db
        .query_with_plan(t, "select p from Point p where 4 == p.x")
        .unwrap();
    assert!(matches!(plan, Plan::IndexEq { .. }));
    assert_eq!(hits.len(), 3);
    // >= with flipped operands becomes <=.
    let (hits, plan) = db
        .query_with_plan(t, "select p from Point p where 2 >= p.x")
        .unwrap();
    assert!(matches!(plan, Plan::IndexRange { .. }));
    assert_eq!(hits.len(), 9); // x in {0,1,2}, three each
    db.commit(t).unwrap();
}

#[test]
fn query_parse_errors_are_reported() {
    assert!(parse_query("select from where").is_err());
    assert!(parse_query("select p from Point p where ((p.x > 1)").is_err());
    let (db, _class) = db_with_points();
    let t = db.begin().unwrap();
    assert!(db.query(t, "select g from Ghost g").is_err());
    db.commit(t).unwrap();
}

#[test]
fn index_maintenance_under_mixed_workload() {
    let (db, class) = db_with_points();
    db.create_index(class, "x").unwrap();
    let t = db.begin().unwrap();
    let a = db.create_with(t, class, &[("x", Value::Int(1))]).unwrap();
    let b = db.create_with(t, class, &[("x", Value::Int(2))]).unwrap();
    let c = db.create_with(t, class, &[("x", Value::Int(3))]).unwrap();
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    db.set_attr(t, a, "x", Value::Int(10)).unwrap(); // move within index
    db.delete_object(t, b).unwrap(); // remove
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    let (hits, plan) = db
        .query_with_plan(t, "select p from Point p where p.x >= 3")
        .unwrap();
    assert!(matches!(plan, Plan::IndexRange { .. }));
    assert_eq!(hits, vec![c, a], "index order: x=3 then x=10");
    db.commit(t).unwrap();
}

#[test]
fn drop_index_falls_back_to_scan() {
    let (db, class) = db_with_points();
    db.create_index(class, "x").unwrap();
    assert!(db.indexing_pm().drop_index(class, "x"));
    assert!(!db.indexing_pm().drop_index(class, "x"));
    let t = db.begin().unwrap();
    db.create_with(t, class, &[("x", Value::Int(5))]).unwrap();
    let (hits, plan) = db
        .query_with_plan(t, "select p from Point p where p.x == 5")
        .unwrap();
    assert_eq!(plan, Plan::ExtentScan);
    assert_eq!(hits.len(), 1);
    db.commit(t).unwrap();
}

#[test]
fn duplicate_index_is_rejected_and_unknown_attr_fails() {
    let (db, class) = db_with_points();
    db.create_index(class, "x").unwrap();
    assert!(db.create_index(class, "x").is_err());
    assert!(db.create_index(class, "ghost").is_err());
}

#[test]
fn subclass_instances_answer_base_class_queries_via_base_index() {
    let db = Database::in_memory().unwrap();
    let base = db
        .define_class("Shape")
        .attr("area", ValueType::Int, Value::Int(0))
        .define()
        .unwrap();
    let circle = db.define_class("Circle").base(base).define().unwrap();
    db.create_index(base, "area").unwrap();
    let t = db.begin().unwrap();
    let c = db
        .create_with(t, circle, &[("area", Value::Int(10))])
        .unwrap();
    let s = db
        .create_with(t, base, &[("area", Value::Int(20))])
        .unwrap();
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    let (hits, plan) = db
        .query_with_plan(t, "select s from Shape s where s.area >= 10")
        .unwrap();
    assert!(matches!(plan, Plan::IndexRange { .. }));
    assert_eq!(hits, vec![c, s]);
    // Subclass extent query sees only circles.
    let hits = db.query(t, "select c from Circle c").unwrap();
    assert_eq!(hits, vec![c]);
    db.commit(t).unwrap();
}
