//! Strict two-phase locking over objects, with nested-transaction lock
//! inheritance and the lock *transfer* needed by the exclusive causally
//! dependent coupling mode (§4: "transfer resources from one transaction
//! to the other once it is determined that the spawning transaction is
//! to be aborted").
//!
//! Lock compatibility is the classic S/X matrix. A child subtransaction
//! may acquire locks its *ancestors* hold (Moss-style nested locking);
//! when a child commits, its locks are inherited by the parent
//! ([`LockManager::transfer`]), and when it aborts they are released.

use crate::deadlock::WaitsFor;
use reach_common::sync::{Condvar, Mutex};
use reach_common::{MetricsRegistry, ObjectId, ReachError, Result, TxnId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared holds.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their strongest mode.
    holders: HashMap<TxnId, LockMode>,
}

/// Number of independent lock-table stripes. A power of two so the
/// stripe index is a shift off a mixed hash.
const STRIPES: usize = 16;

#[derive(Default)]
struct StripeInner {
    locks: HashMap<ObjectId, LockState>,
    /// Reverse index: locks held per transaction *in this stripe*
    /// (release_all / transfer visit every stripe).
    held: HashMap<TxnId, HashSet<ObjectId>>,
}

struct Stripe {
    inner: Mutex<StripeInner>,
    changed: Condvar,
}

/// The lock manager.
///
/// The lock table is *striped*: an object's entry lives in one of
/// `STRIPES` independently-locked shards chosen by oid hash, so
/// transactions touching disjoint objects no longer serialize on one
/// global table mutex (the E15 profile showed ~60k grants per E13 run
/// funnelling through it while detached rule transactions ran
/// concurrently). Grant/release of an object touches only its stripe.
///
/// Cross-stripe state stays global and is touched only off the granted
/// fast path: the waits-for graph (edges are recorded only by blocked
/// requests, so deadlock cycles spanning objects in different stripes
/// are detected exactly as before) and the per-transaction deadline
/// map. Lock order is stripe → graph; the release paths take them in
/// sequence, never nested, so the two orders cannot deadlock.
pub struct LockManager {
    stripes: Vec<Stripe>,
    waits: Mutex<WaitsFor>,
    /// Per-transaction absolute lock-wait deadlines. A blocked request
    /// gives up at min(default patience, this deadline) — the hook the
    /// server uses to propagate per-request deadlines into lock waits.
    deadlines: Mutex<HashMap<TxnId, std::time::Instant>>,
    timeout: Duration,
    metrics: Arc<MetricsRegistry>,
}

impl LockManager {
    /// A manager with the default 5 s lock-wait patience.
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(5))
    }

    /// A manager whose blocked requests give up after `timeout`.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_metrics(timeout, MetricsRegistry::new_shared())
    }

    /// A manager recording lock waits and deadlocks into a shared
    /// registry (gated on its enable switch).
    pub fn with_metrics(timeout: Duration, metrics: Arc<MetricsRegistry>) -> Self {
        LockManager {
            stripes: (0..STRIPES)
                .map(|_| Stripe {
                    inner: Mutex::new(StripeInner::default()),
                    changed: Condvar::new(),
                })
                .collect(),
            waits: Mutex::new(WaitsFor::new()),
            deadlines: Mutex::new(HashMap::new()),
            timeout,
            metrics,
        }
    }

    #[inline]
    fn stripe_of(&self, oid: ObjectId) -> &Stripe {
        // Fibonacci multiply-shift: oids are sequential, so the raw low
        // bits would park neighbouring objects in the same stripe.
        let h = oid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.stripes[(h >> 60) as usize & (STRIPES - 1)]
    }

    /// Acquire `mode` on `oid` for `txn`. `ancestors` are transactions
    /// whose locks do not conflict with this request (the requester's
    /// nested-transaction ancestry). Blocks until granted; returns
    /// `Deadlock` if granting would close a waits-for cycle, or
    /// `LockTimeout` after the configured patience.
    pub fn acquire(
        &self,
        txn: TxnId,
        oid: ObjectId,
        mode: LockMode,
        ancestors: &[TxnId],
    ) -> Result<()> {
        let stripe = self.stripe_of(oid);
        let mut inner = stripe.inner.lock();
        let mut waited = false;
        let mut wait_started: Option<std::time::Instant> = None;
        // Patience is an absolute deadline, armed at the first blocked
        // pass: re-arming the full timeout on every wakeup would let a
        // waiter starved by a hot release/re-acquire loop wait forever.
        let mut deadline: Option<std::time::Instant> = None;
        let finish_wait = |started: Option<std::time::Instant>| {
            if let Some(t0) = started {
                self.metrics
                    .txn
                    .lock_wait_latency
                    .record(t0.elapsed().as_nanos() as u64);
            }
        };
        loop {
            let conflicts = Self::conflicts(&inner, txn, oid, mode, ancestors);
            if conflicts.is_empty() {
                let state = inner.locks.entry(oid).or_default();
                let entry = state.holders.entry(txn).or_insert(mode);
                if mode == LockMode::Exclusive {
                    *entry = LockMode::Exclusive;
                }
                inner.held.entry(txn).or_default().insert(oid);
                // The waits-for graph is touched only if this request
                // ever blocked — the granted fast path stays entirely
                // within the stripe.
                if waited {
                    self.waits.lock().clear(txn);
                }
                if self.metrics.on() {
                    self.metrics.txn.lock_acquisitions.inc();
                }
                finish_wait(wait_started);
                return Ok(());
            }
            // Must wait: record edges and check for a deadlock.
            waited = true;
            if wait_started.is_none() && self.metrics.on() {
                self.metrics.txn.lock_waits.inc();
                wait_started = Some(std::time::Instant::now());
            }
            // `set`, not `add`: each pass replaces the previous pass's
            // edges with exactly the current conflict set. Accumulating
            // instead leaves phantom edges to ex-holders, and only the
            // release paths' inbound scrubbing (`WaitsFor::remove`)
            // keeps those from closing false cycles — a single release
            // path that forgets the scrub turns them into spurious
            // deadlock aborts.
            {
                let mut waits = self.waits.lock();
                waits.set(txn, conflicts.iter().copied());
                if waits.has_cycle_through(txn) {
                    waits.clear(txn);
                    drop(waits);
                    if self.metrics.on() {
                        self.metrics.txn.deadlocks.inc();
                    }
                    finish_wait(wait_started);
                    return Err(ReachError::Deadlock(txn));
                }
            }
            let mut dl = *deadline.get_or_insert_with(|| std::time::Instant::now() + self.timeout);
            // A per-txn deadline can only shorten the wait, never extend
            // it. Re-read each pass so a deadline set after the wait
            // began still applies (set_deadline notifies every stripe).
            if let Some(txn_dl) = self.deadlines.lock().get(&txn) {
                dl = dl.min(*txn_dl);
            }
            let timed_out = stripe.changed.wait_until(&mut inner, dl).timed_out();
            if timed_out {
                self.waits.lock().clear(txn);
                finish_wait(wait_started);
                return Err(ReachError::LockTimeout(txn));
            }
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(
        &self,
        txn: TxnId,
        oid: ObjectId,
        mode: LockMode,
        ancestors: &[TxnId],
    ) -> Result<bool> {
        let mut inner = self.stripe_of(oid).inner.lock();
        if Self::conflicts(&inner, txn, oid, mode, ancestors).is_empty() {
            let state = inner.locks.entry(oid).or_default();
            let entry = state.holders.entry(txn).or_insert(mode);
            if mode == LockMode::Exclusive {
                *entry = LockMode::Exclusive;
            }
            inner.held.entry(txn).or_default().insert(oid);
            if self.metrics.on() {
                self.metrics.txn.lock_acquisitions.inc();
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn conflicts(
        inner: &StripeInner,
        txn: TxnId,
        oid: ObjectId,
        mode: LockMode,
        ancestors: &[TxnId],
    ) -> Vec<TxnId> {
        let Some(state) = inner.locks.get(&oid) else {
            return Vec::new();
        };
        state
            .holders
            .iter()
            .filter(|(holder, held_mode)| {
                **holder != txn && !ancestors.contains(holder) && !mode.compatible(**held_mode)
            })
            .map(|(holder, _)| *holder)
            .collect()
    }

    /// Bound (or unbound, with `None`) every lock wait `txn` makes from
    /// now on: a blocked request gives up with `LockTimeout` at
    /// min(default patience, `deadline`). Waiters already blocked pick
    /// the new deadline up on their next wakeup; `notify_all` forces
    /// one so a shortened deadline takes effect promptly. Cleared
    /// automatically by [`LockManager::release_all`].
    pub fn set_deadline(&self, txn: TxnId, deadline: Option<std::time::Instant>) {
        {
            let mut deadlines = self.deadlines.lock();
            match deadline {
                Some(d) => {
                    deadlines.insert(txn, d);
                }
                None => {
                    deadlines.remove(&txn);
                }
            }
        }
        // The waiter may be blocked on any stripe; wake them all so it
        // re-reads the deadline map (rare administrative path).
        for stripe in &self.stripes {
            stripe.changed.notify_all();
        }
    }

    /// The absolute deadline currently bound to `txn`, if any. Lock
    /// waits consult the deadline map from inside the condvar loop;
    /// lock-*free* snapshot reads have no such loop, so the snapshot
    /// read path checks this accessor at entry instead — an expired
    /// per-request deadline must fail a read that never blocks exactly
    /// as it fails one that does.
    pub fn deadline_of(&self, txn: TxnId) -> Option<std::time::Instant> {
        self.deadlines.lock().get(&txn).copied()
    }

    /// Release every lock held by `txn` (end of transaction).
    pub fn release_all(&self, txn: TxnId) {
        self.deadlines.lock().remove(&txn);
        let mut touched = [false; STRIPES];
        for (i, stripe) in self.stripes.iter().enumerate() {
            let mut inner = stripe.inner.lock();
            if let Some(oids) = inner.held.remove(&txn) {
                for oid in oids {
                    if let Some(state) = inner.locks.get_mut(&oid) {
                        state.holders.remove(&txn);
                        if state.holders.is_empty() {
                            inner.locks.remove(&oid);
                        }
                    }
                }
                touched[i] = true;
            }
        }
        // Scrub inbound edges before waking waiters: anyone who was
        // blocked on this transaction re-records its conflict set
        // against the post-release table.
        self.waits.lock().remove(txn);
        for (i, stripe) in self.stripes.iter().enumerate() {
            if touched[i] {
                stripe.changed.notify_all();
            }
        }
    }

    /// Transfer every lock held by `from` to `to`, upgrading `to`'s
    /// existing holds where `from` held stronger. Used when a committed
    /// subtransaction's locks are inherited by its parent, and by the
    /// exclusive causally dependent mode's resource hand-over.
    pub fn transfer(&self, from: TxnId, to: TxnId) {
        let mut touched = [false; STRIPES];
        for (i, stripe) in self.stripes.iter().enumerate() {
            let mut inner = stripe.inner.lock();
            if let Some(oids) = inner.held.remove(&from) {
                for oid in &oids {
                    if let Some(state) = inner.locks.get_mut(oid) {
                        if let Some(mode) = state.holders.remove(&from) {
                            let entry = state.holders.entry(to).or_insert(mode);
                            if mode == LockMode::Exclusive {
                                *entry = LockMode::Exclusive;
                            }
                        }
                    }
                }
                inner.held.entry(to).or_default().extend(oids);
                touched[i] = true;
            }
        }
        self.waits.lock().remove(from);
        for (i, stripe) in self.stripes.iter().enumerate() {
            if touched[i] {
                stripe.changed.notify_all();
            }
        }
    }

    /// The mode `txn` holds on `oid`, if any.
    pub fn held_mode(&self, txn: TxnId, oid: ObjectId) -> Option<LockMode> {
        self.stripe_of(oid)
            .inner
            .lock()
            .locks
            .get(&oid)
            .and_then(|s| s.holders.get(&txn).copied())
    }

    /// Number of objects currently locked (introspection).
    pub fn locked_objects(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.inner.lock().locks.len())
            .sum()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(t(1), o(1), LockMode::Shared, &[]).unwrap();
        lm.acquire(t(2), o(1), LockMode::Shared, &[]).unwrap();
        assert!(matches!(
            lm.acquire(t(3), o(1), LockMode::Exclusive, &[]),
            Err(ReachError::LockTimeout(_))
        ));
    }

    #[test]
    fn release_unblocks_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || lm2.acquire(t(2), o(1), LockMode::Exclusive, &[]));
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(t(1));
        h.join().unwrap().unwrap();
        assert_eq!(lm.held_mode(t(2), o(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn reentrant_acquire_and_upgrade() {
        let lm = LockManager::new();
        lm.acquire(t(1), o(1), LockMode::Shared, &[]).unwrap();
        lm.acquire(t(1), o(1), LockMode::Shared, &[]).unwrap();
        // Sole holder may upgrade.
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        assert_eq!(lm.held_mode(t(1), o(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn deadlock_is_detected() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(10)));
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        lm.acquire(t(2), o(2), LockMode::Exclusive, &[]).unwrap();
        // t1 blocks on o2 in a helper thread...
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || lm2.acquire(t(1), o(2), LockMode::Exclusive, &[]));
        std::thread::sleep(Duration::from_millis(30));
        // ... and t2 requesting o1 closes the cycle: t2 is the victim.
        let err = lm
            .acquire(t(2), o(1), LockMode::Exclusive, &[])
            .unwrap_err();
        assert_eq!(err, ReachError::Deadlock(t(2)));
        // Let t1 through by releasing t2.
        lm.release_all(t(2));
        h.join().unwrap().unwrap();
    }

    /// Guard against phantom deadlocks from stale waits-for edges.
    /// T2 blocks on o1 while BOTH t1 and t3 hold it in shared mode, so
    /// its first pass records edges t2→{t1, t3}. Then t1 releases and a
    /// reincarnated t1 blocks on an object t2 holds. If a stale t2→t1
    /// edge survived t1's release, t1's new wait would "close" a cycle
    /// t1→t2→t1 that never existed and abort t1 with a phantom
    /// deadlock. Two independent mechanisms must both keep that from
    /// happening — `acquire` re-recording edges with `WaitsFor::set`
    /// (see `set_replaces_previous_edges` for the graph-level
    /// regression) and the release paths scrubbing inbound edges — and
    /// this test pins the end-to-end result: the chain t1→t2→t3 times
    /// out, it never deadlocks.
    #[test]
    fn released_holder_leaves_no_phantom_deadlock() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(400)));
        lm.acquire(t(1), o(1), LockMode::Shared, &[]).unwrap();
        lm.acquire(t(3), o(1), LockMode::Shared, &[]).unwrap();
        lm.acquire(t(2), o(2), LockMode::Exclusive, &[]).unwrap();
        // t2 blocks on o1, recording edges to both holders.
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || lm2.acquire(t(2), o(1), LockMode::Exclusive, &[]));
        std::thread::sleep(Duration::from_millis(50));
        // t1 releases; t2 wakes, re-records its (now smaller) conflict
        // set {t3}, and keeps waiting.
        lm.release_all(t(1));
        std::thread::sleep(Duration::from_millis(50));
        // A new incarnation of t1 requests o2, held by t2. There is no
        // cycle: t1→t2→t3 is a chain, so this must time out, not abort
        // as a phantom Deadlock(t1).
        let err = lm
            .acquire(t(1), o(2), LockMode::Exclusive, &[])
            .unwrap_err();
        assert_eq!(
            err,
            ReachError::LockTimeout(t(1)),
            "stale waits-for edge produced a phantom deadlock"
        );
        // Unwind: t3 releases, t2 gets o1.
        lm.release_all(t(3));
        assert!(!matches!(h.join().unwrap(), Err(ReachError::Deadlock(_))));
    }

    /// Regression for lock-wait patience re-arming on every wakeup:
    /// under a hot release/re-acquire loop every `notify_all` used to
    /// restart the full timeout, so a starved waiter never timed out.
    /// With an absolute deadline it gives up on schedule no matter how
    /// often it is woken.
    #[test]
    fn starved_waiter_times_out_under_churn() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(150)));
        // A permanent shared holder keeps the exclusive request blocked.
        lm.acquire(t(10), o(1), LockMode::Shared, &[]).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut churners = Vec::new();
        for i in 0..2u64 {
            let lm = Arc::clone(&lm);
            let stop = Arc::clone(&stop);
            churners.push(std::thread::spawn(move || {
                let me = t(20 + i);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    lm.acquire(me, o(1), LockMode::Shared, &[]).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                    lm.release_all(me); // notify_all: wakes the waiter
                    std::thread::sleep(Duration::from_millis(2));
                }
            }));
        }
        let t0 = std::time::Instant::now();
        let err = lm
            .acquire(t(1), o(1), LockMode::Exclusive, &[])
            .unwrap_err();
        let waited = t0.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in churners {
            h.join().unwrap();
        }
        assert_eq!(err, ReachError::LockTimeout(t(1)));
        assert!(
            waited < Duration::from_secs(2),
            "patience re-armed under churn: waited {waited:?} for a 150ms timeout"
        );
    }

    /// A per-txn deadline must cut a lock wait short of the manager's
    /// default patience — the propagation path for per-request
    /// deadlines from the network server.
    #[test]
    fn txn_deadline_shortens_lock_wait() {
        let lm = LockManager::with_timeout(Duration::from_secs(30));
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        lm.set_deadline(
            t(2),
            Some(std::time::Instant::now() + Duration::from_millis(80)),
        );
        let t0 = std::time::Instant::now();
        let err = lm.acquire(t(2), o(1), LockMode::Shared, &[]).unwrap_err();
        assert_eq!(err, ReachError::LockTimeout(t(2)));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deadline did not bound the wait: {:?}",
            t0.elapsed()
        );
    }

    /// Shortening an already-blocked waiter's deadline takes effect:
    /// `set_deadline` notifies, and the waiter re-reads the map.
    #[test]
    fn deadline_set_mid_wait_applies() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(30)));
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || lm2.acquire(t(2), o(1), LockMode::Exclusive, &[]));
        std::thread::sleep(Duration::from_millis(50));
        lm.set_deadline(
            t(2),
            Some(std::time::Instant::now() + Duration::from_millis(50)),
        );
        let res = h.join().unwrap();
        assert_eq!(res.unwrap_err(), ReachError::LockTimeout(t(2)));
    }

    /// release_all clears the deadline: a reincarnated txn id waits
    /// with the default patience again.
    #[test]
    fn release_all_clears_deadline() {
        let lm = LockManager::with_timeout(Duration::from_millis(200));
        lm.set_deadline(t(2), Some(std::time::Instant::now()));
        lm.release_all(t(2));
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        let t0 = std::time::Instant::now();
        let err = lm.acquire(t(2), o(1), LockMode::Shared, &[]).unwrap_err();
        assert_eq!(err, ReachError::LockTimeout(t(2)));
        assert!(
            t0.elapsed() >= Duration::from_millis(150),
            "stale deadline survived release_all: gave up after {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn ancestors_do_not_conflict() {
        let lm = LockManager::new();
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        // Child t10 of t1 may lock what its ancestor holds.
        lm.acquire(t(10), o(1), LockMode::Exclusive, &[t(1)])
            .unwrap();
        assert_eq!(lm.held_mode(t(10), o(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn transfer_moves_and_upgrades() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(t(10), o(1), LockMode::Exclusive, &[]).unwrap();
        lm.acquire(t(10), o(2), LockMode::Shared, &[]).unwrap();
        lm.acquire(t(1), o(2), LockMode::Shared, &[]).unwrap();
        lm.transfer(t(10), t(1));
        assert_eq!(lm.held_mode(t(1), o(1)), Some(LockMode::Exclusive));
        assert_eq!(lm.held_mode(t(1), o(2)), Some(LockMode::Shared));
        assert_eq!(lm.held_mode(t(10), o(1)), None);
        // A third party still cannot take o(1).
        assert!(lm.acquire(t(3), o(1), LockMode::Shared, &[]).is_err());
    }

    #[test]
    fn try_acquire_never_blocks() {
        let lm = LockManager::new();
        lm.acquire(t(1), o(1), LockMode::Exclusive, &[]).unwrap();
        assert!(!lm.try_acquire(t(2), o(1), LockMode::Shared, &[]).unwrap());
        assert!(lm.try_acquire(t(2), o(2), LockMode::Shared, &[]).unwrap());
    }

    #[test]
    fn concurrent_increments_under_exclusive_locks() {
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0i64));
        let mut handles = Vec::new();
        for i in 0..8 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let me = t(100 + i);
                for _ in 0..50 {
                    lm.acquire(me, o(7), LockMode::Exclusive, &[]).unwrap();
                    *counter.lock() += 1;
                    lm.release_all(me);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
