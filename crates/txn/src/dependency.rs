//! Commit/abort dependencies between transactions — the machinery behind
//! the three *causally dependent* detached coupling modes (§3.2):
//!
//! * **parallel causally dependent** — the rule transaction "may begin in
//!   parallel but may not commit unless the triggering transaction
//!   commits": a [`CommitRule::IfCommitted`] dependency;
//! * **sequential causally dependent** — "may initiate only after the
//!   triggering transaction has committed": scheduling is handled by the
//!   rule engine, and the same `IfCommitted` dependency guards against
//!   races;
//! * **exclusive causally dependent** — "may commit only if the
//!   triggering transaction aborts": a [`CommitRule::IfAborted`]
//!   dependency.
//!
//! For composite events whose constituents span *several* transactions,
//! Table 1 requires the dependency on **all** of them ("all commit" /
//! "all abort"), so a dependent transaction carries a set of conditions.

use reach_common::sync::{Condvar, Mutex};
use reach_common::{ReachError, Result, TxnId};
use std::collections::HashMap;
use std::time::Duration;

/// Final fate of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted.
    Aborted,
}

/// One dependency condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitRule {
    /// The dependent may commit only if `on` committed.
    IfCommitted(TxnId),
    /// The dependent may commit only if `on` aborted.
    IfAborted(TxnId),
}

impl CommitRule {
    fn subject(&self) -> TxnId {
        match self {
            CommitRule::IfCommitted(t) | CommitRule::IfAborted(t) => *t,
        }
    }

    fn satisfied_by(&self, outcome: Outcome) -> bool {
        match self {
            CommitRule::IfCommitted(_) => outcome == Outcome::Committed,
            CommitRule::IfAborted(_) => outcome == Outcome::Aborted,
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Known final outcomes.
    outcomes: HashMap<TxnId, Outcome>,
    /// Dependencies per dependent transaction.
    deps: HashMap<TxnId, Vec<CommitRule>>,
}

/// The dependency graph. Shared between the transaction manager (which
/// records outcomes) and the rule engine (which registers dependencies).
pub struct DependencyGraph {
    inner: Mutex<Inner>,
    changed: Condvar,
}

/// What a dependent transaction is allowed to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permission {
    /// All conditions resolved in favour: commit may proceed.
    Commit,
    /// Some condition resolved against: the dependent must abort.
    MustAbort,
    /// Some condition's subject is still running.
    Wait,
}

impl DependencyGraph {
    /// An empty dependency graph.
    pub fn new() -> Self {
        DependencyGraph {
            inner: Mutex::new(Inner::default()),
            changed: Condvar::new(),
        }
    }

    /// Register a dependency for `dependent`.
    pub fn add(&self, dependent: TxnId, rule: CommitRule) {
        let mut inner = self.inner.lock();
        inner.deps.entry(dependent).or_default().push(rule);
    }

    /// Record a transaction's final outcome and wake waiters.
    pub fn record(&self, txn: TxnId, outcome: Outcome) {
        let mut inner = self.inner.lock();
        inner.outcomes.insert(txn, outcome);
        drop(inner);
        self.changed.notify_all();
    }

    /// Non-blocking check of `dependent`'s permission to commit.
    pub fn check(&self, dependent: TxnId) -> Permission {
        let inner = self.inner.lock();
        Self::check_locked(&inner, dependent)
    }

    fn check_locked(inner: &Inner, dependent: TxnId) -> Permission {
        let Some(rules) = inner.deps.get(&dependent) else {
            return Permission::Commit;
        };
        let mut all_resolved = true;
        for rule in rules {
            match inner.outcomes.get(&rule.subject()) {
                Some(outcome) => {
                    if !rule.satisfied_by(*outcome) {
                        return Permission::MustAbort;
                    }
                }
                None => all_resolved = false,
            }
        }
        if all_resolved {
            Permission::Commit
        } else {
            Permission::Wait
        }
    }

    /// Block until `dependent` may commit or must abort. Errors with
    /// `DependencyViolation` on timeout (a subject never finished).
    pub fn wait(&self, dependent: TxnId, timeout: Duration) -> Result<Permission> {
        let mut inner = self.inner.lock();
        loop {
            match Self::check_locked(&inner, dependent) {
                Permission::Wait => {}
                p => return Ok(p),
            }
            if self.changed.wait_for(&mut inner, timeout).timed_out() {
                return Err(ReachError::DependencyViolation(format!(
                    "{dependent} timed out waiting for its causal dependencies"
                )));
            }
        }
    }

    /// Wait until `txn`'s outcome is known (used by sequential causally
    /// dependent scheduling: start only after the trigger finishes).
    pub fn wait_for_outcome(&self, txn: TxnId, timeout: Duration) -> Result<Outcome> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(o) = inner.outcomes.get(&txn) {
                return Ok(*o);
            }
            if self.changed.wait_for(&mut inner, timeout).timed_out() {
                return Err(ReachError::DependencyViolation(format!(
                    "timed out waiting for outcome of {txn}"
                )));
            }
        }
    }

    /// The recorded outcome, if final.
    pub fn outcome(&self, txn: TxnId) -> Option<Outcome> {
        self.inner.lock().outcomes.get(&txn).copied()
    }

    /// Drop bookkeeping for a finished dependent.
    pub fn forget_dependent(&self, dependent: TxnId) {
        self.inner.lock().deps.remove(&dependent);
    }
}

impl Default for DependencyGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn no_dependencies_means_commit() {
        let g = DependencyGraph::new();
        assert_eq!(g.check(t(1)), Permission::Commit);
    }

    #[test]
    fn if_committed_waits_then_allows() {
        let g = DependencyGraph::new();
        g.add(t(2), CommitRule::IfCommitted(t(1)));
        assert_eq!(g.check(t(2)), Permission::Wait);
        g.record(t(1), Outcome::Committed);
        assert_eq!(g.check(t(2)), Permission::Commit);
    }

    #[test]
    fn if_committed_forbids_on_abort() {
        let g = DependencyGraph::new();
        g.add(t(2), CommitRule::IfCommitted(t(1)));
        g.record(t(1), Outcome::Aborted);
        assert_eq!(g.check(t(2)), Permission::MustAbort);
    }

    #[test]
    fn exclusive_mode_commits_only_on_abort() {
        let g = DependencyGraph::new();
        g.add(t(2), CommitRule::IfAborted(t(1)));
        g.record(t(1), Outcome::Committed);
        assert_eq!(g.check(t(2)), Permission::MustAbort);
        // And the other way round:
        g.add(t(3), CommitRule::IfAborted(t(4)));
        g.record(t(4), Outcome::Aborted);
        assert_eq!(g.check(t(3)), Permission::Commit);
    }

    #[test]
    fn multi_transaction_composite_requires_all() {
        // Table 1's "Y (all commit)" cell: dependency on every origin.
        let g = DependencyGraph::new();
        g.add(t(9), CommitRule::IfCommitted(t(1)));
        g.add(t(9), CommitRule::IfCommitted(t(2)));
        g.record(t(1), Outcome::Committed);
        assert_eq!(g.check(t(9)), Permission::Wait);
        g.record(t(2), Outcome::Aborted);
        assert_eq!(g.check(t(9)), Permission::MustAbort);
    }

    #[test]
    fn wait_blocks_until_resolution() {
        let g = Arc::new(DependencyGraph::new());
        g.add(t(2), CommitRule::IfCommitted(t(1)));
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || g2.wait(t(2), Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        g.record(t(1), Outcome::Committed);
        assert_eq!(h.join().unwrap(), Permission::Commit);
    }

    #[test]
    fn wait_times_out() {
        let g = DependencyGraph::new();
        g.add(t(2), CommitRule::IfCommitted(t(1)));
        assert!(g.wait(t(2), Duration::from_millis(30)).is_err());
    }

    #[test]
    fn wait_for_outcome_sees_later_record() {
        let g = Arc::new(DependencyGraph::new());
        let g2 = Arc::clone(&g);
        let h =
            std::thread::spawn(move || g2.wait_for_outcome(t(7), Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        g.record(t(7), Outcome::Aborted);
        assert_eq!(h.join().unwrap(), Outcome::Aborted);
    }
}
