//! Flow-control events (§3.1: "transaction-related events, such as BOT,
//! EOT, Commit, Abort").
//!
//! The REACH active layer subscribes a [`TxnListener`] to learn about
//! transaction boundaries: event lifespans end at EOT (§3.3), deferred
//! rules run at `PreCommit`, and the causally-dependent detached modes
//! hang off `Committed`/`Aborted`.

use reach_common::{TimePoint, TxnId};

/// The kinds of flow-control events the manager emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnEventKind {
    /// Begin of transaction.
    Begin,
    /// The application requested commit; deferred work runs now. The
    /// transaction may still abort (e.g. a deferred rule fails).
    PreCommit,
    /// Commit completed (durable).
    Committed,
    /// Abort completed (all effects undone).
    Aborted,
}

/// One flow-control event occurrence.
#[derive(Debug, Clone)]
pub struct TxnEvent {
    /// What happened.
    pub kind: TxnEventKind,
    /// The transaction it happened to.
    pub txn: TxnId,
    /// `None` for top-level transactions.
    pub parent: Option<TxnId>,
    /// The enclosing top-level transaction (== `txn` when top-level).
    pub top_level: TxnId,
    /// When it happened (virtual clock).
    pub at: TimePoint,
}

/// Subscriber to flow-control events.
pub trait TxnListener: Send + Sync {
    /// Called synchronously for every lifecycle event.
    fn on_txn_event(&self, event: &TxnEvent);
}
