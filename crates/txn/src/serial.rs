//! Conflict-serializability oracle.
//!
//! The lock manager promises strict two-phase locking; this module
//! checks the promise from the *outside*. Concurrent workloads record,
//! per transaction, every read and write together with a global
//! operation sequence number stamped **while the lock is held**, plus a
//! commit stamp taken before any lock is released. The checker then
//! builds the classic conflict graph — an edge `Ti → Tj` whenever `Ti`
//! performed an operation on an object before `Tj` did and at least one
//! of the two was a write — and a committed history is
//! conflict-serializable iff that graph is acyclic (the serializability
//! theorem; any cycle names the guilty transactions).
//!
//! Nothing here knows how the locks are implemented, which is the
//! point: if 2PL has a hole (a lock released early, an upgrade that
//! lets a reader slip through, a transfer that leaks), some perturbed
//! schedule produces a cycle, and the test prints the seed plus the
//! cycle instead of silently corrupting data three layers up.

use crate::locks::{LockManager, LockMode};
use reach_common::sync::sched;
use reach_common::{ObjectId, ReachError, SplitMix64, TxnId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

/// Read or write, for conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A shared-mode access.
    Read,
    /// An exclusive-mode access.
    Write,
}

impl AccessKind {
    fn conflicts_with(self, other: AccessKind) -> bool {
        !(self == AccessKind::Read && other == AccessKind::Read)
    }
}

/// One recorded operation: what was touched, how, and *when* in the
/// global operation order (stamped while the protecting lock was held).
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// The object accessed.
    pub oid: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// Global sequence number of the operation.
    pub seq: u64,
}

/// Everything one committed transaction did.
#[derive(Debug, Clone)]
pub struct TxnRun {
    /// The transaction.
    pub txn: TxnId,
    /// Its accesses, in its own program order.
    pub accesses: Vec<Access>,
    /// Global sequence stamp taken at commit, before lock release.
    pub commit_seq: u64,
}

/// A committed history: the input to the checker. Aborted transactions
/// are excluded by construction — they never reach [`Recorder::commit`].
#[derive(Debug, Default, Clone)]
pub struct History {
    /// Committed transaction runs.
    pub runs: Vec<TxnRun>,
}

impl History {
    /// Build the conflict graph and return a cycle through it if one
    /// exists (as the list of transactions on the cycle), or `None` if
    /// the history is conflict-serializable.
    pub fn conflict_cycle(&self) -> Option<Vec<TxnId>> {
        let edges = self.conflict_edges();
        // Adjacency + iterative DFS with colors.
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<TxnId, Color> =
            self.runs.iter().map(|r| (r.txn, Color::White)).collect();
        let mut parent: HashMap<TxnId, TxnId> = HashMap::new();
        for &start in color.keys().cloned().collect::<Vec<_>>().iter() {
            if color[&start] != Color::White {
                continue;
            }
            // Stack of (node, next child index).
            let mut stack = vec![(start, 0usize)];
            color.insert(start, Color::Gray);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(Color::Black) {
                        Color::White => {
                            parent.insert(child, node);
                            color.insert(child, Color::Gray);
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            // Found a back edge node → child: walk the
                            // parent chain from node back to child.
                            let mut cycle = vec![child, node];
                            let mut cur = node;
                            while cur != child {
                                cur = parent[&cur];
                                if cur != child {
                                    cycle.push(cur);
                                }
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        None
    }

    /// The conflict edges `Ti → Tj` (deduplicated): some operation of
    /// `Ti` precedes a conflicting operation of `Tj` on the same object.
    pub fn conflict_edges(&self) -> HashSet<(TxnId, TxnId)> {
        // Group accesses per object across all committed txns.
        let mut per_obj: HashMap<ObjectId, Vec<(TxnId, AccessKind, u64)>> = HashMap::new();
        for run in &self.runs {
            for a in &run.accesses {
                per_obj
                    .entry(a.oid)
                    .or_default()
                    .push((run.txn, a.kind, a.seq));
            }
        }
        let mut edges = HashSet::new();
        for ops in per_obj.values_mut() {
            ops.sort_by_key(|&(_, _, seq)| seq);
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    let (ti, ki, _) = ops[i];
                    let (tj, kj, _) = ops[j];
                    if ti != tj && ki.conflicts_with(kj) {
                        edges.insert((ti, tj));
                    }
                }
            }
        }
        edges
    }
}

/// Shared recorder a concurrent workload writes into. The global
/// sequence counter doubles as the stamp source: callers stamp each
/// access **while holding the protecting lock**, so per-object stamp
/// order equals the real serialization order at that object.
#[derive(Debug, Default)]
pub struct Recorder {
    seq: AtomicU64,
    runs: StdMutex<Vec<TxnRun>>,
}

impl Recorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw the next global sequence stamp.
    pub fn stamp(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Record a committed transaction. `commit_seq` must have been
    /// stamped before any of the transaction's locks were released.
    pub fn commit(&self, run: TxnRun) {
        self.runs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(run);
    }

    /// Freeze into a checkable history.
    pub fn into_history(self) -> History {
        History {
            runs: self.runs.into_inner().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Snapshot the committed runs so far without consuming the
    /// recorder (for recorders still referenced by a resource manager).
    pub fn snapshot(&self) -> History {
        History {
            runs: self.runs.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// Parameters for [`run_lock_workload`].
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCfg {
    /// Worker thread count.
    pub threads: u64,
    /// Transactions attempted per thread.
    pub txns_per_thread: u64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Size of the shared object pool (smaller = more contention).
    pub objects: u64,
    /// Probability numerator (out of 100) that an op is a write.
    pub write_pct: u64,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            threads: 4,
            txns_per_thread: 12,
            objects: 6,
            ops_per_txn: 4,
            write_pct: 50,
        }
    }
}

/// Outcome counts of a workload sweep, alongside the history.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkloadStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Victims of deadlock detection (aborted and discarded).
    pub deadlocks: u64,
    /// Lock-wait timeouts (aborted and discarded).
    pub timeouts: u64,
}

/// Drive a randomized transactional workload straight against a
/// [`LockManager`] under strict 2PL and record the committed history.
///
/// Each simulated transaction acquires the proper lock before each
/// access, stamps the access while the lock is held, stamps its commit
/// before releasing, and on `Deadlock`/`LockTimeout` releases
/// everything and is discarded (an abort). The caller asserts
/// [`History::conflict_cycle`] is `None`.
pub fn run_lock_workload(seed: u64, cfg: WorkloadCfg) -> (History, WorkloadStats) {
    let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(200)));
    let rec = Arc::new(Recorder::new());
    let stats = Arc::new(StdMutex::new(WorkloadStats::default()));
    let mut root = SplitMix64::new(seed);
    let handles: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let lm = Arc::clone(&lm);
            let rec = Arc::clone(&rec);
            let stats = Arc::clone(&stats);
            let mut rng = root.fork(t + 1);
            std::thread::spawn(move || {
                sched::register_thread(t);
                for i in 0..cfg.txns_per_thread {
                    let txn = TxnId::new(1 + t * cfg.txns_per_thread + i);
                    let outcome = run_one_txn(&lm, &rec, &mut rng, txn, &cfg);
                    let mut s = stats.lock().unwrap_or_else(|e| e.into_inner());
                    match outcome {
                        Ok(()) => s.committed += 1,
                        Err(ReachError::Deadlock(_)) => s.deadlocks += 1,
                        Err(ReachError::LockTimeout(_)) => s.timeouts += 1,
                        Err(e) => panic!("unexpected workload error: {e:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = *stats.lock().unwrap_or_else(|e| e.into_inner());
    let history = Arc::try_unwrap(rec)
        .expect("workers done; sole owner")
        .into_history();
    (history, stats)
}

fn run_one_txn(
    lm: &LockManager,
    rec: &Recorder,
    rng: &mut SplitMix64,
    txn: TxnId,
    cfg: &WorkloadCfg,
) -> Result<(), ReachError> {
    let mut accesses: Vec<Access> = Vec::with_capacity(cfg.ops_per_txn);
    for _ in 0..cfg.ops_per_txn {
        let oid = ObjectId::new(1 + rng.below(cfg.objects as usize) as u64);
        let write = rng.chance(cfg.write_pct, 100);
        let (mode, kind) = if write {
            (LockMode::Exclusive, AccessKind::Write)
        } else {
            (LockMode::Shared, AccessKind::Read)
        };
        if let Err(e) = lm.acquire(txn, oid, mode, &[]) {
            lm.release_all(txn);
            return Err(e);
        }
        // Stamp while the lock is held: this is what makes per-object
        // stamp order the ground-truth serialization order.
        accesses.push(Access {
            oid,
            kind,
            seq: rec.stamp(),
        });
    }
    // Commit stamp before release (strictness: nothing of ours is
    // visible to others until after this point).
    let commit_seq = rec.stamp();
    rec.commit(TxnRun {
        txn,
        accesses,
        commit_seq,
    });
    lm.release_all(txn);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    fn run(txn: u64, accesses: &[(u64, AccessKind, u64)], commit_seq: u64) -> TxnRun {
        TxnRun {
            txn: t(txn),
            accesses: accesses
                .iter()
                .map(|&(oid, kind, seq)| Access {
                    oid: o(oid),
                    kind,
                    seq,
                })
                .collect(),
            commit_seq,
        }
    }

    /// The classic lost update: T1 reads x, T2 reads x, T2 writes x,
    /// T1 writes x. Edges T1→T2 (r-w) and T2→T1 (w-w): a cycle.
    #[test]
    fn lost_update_cycle_detected() {
        let h = History {
            runs: vec![
                run(1, &[(1, AccessKind::Read, 0), (1, AccessKind::Write, 3)], 4),
                run(2, &[(1, AccessKind::Read, 1), (1, AccessKind::Write, 2)], 5),
            ],
        };
        let cycle = h.conflict_cycle().expect("lost update must be caught");
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(2)), "{cycle:?}");
    }

    /// Serial histories and read-only overlap are acyclic.
    #[test]
    fn serial_and_read_only_histories_pass() {
        let serial = History {
            runs: vec![
                run(
                    1,
                    &[(1, AccessKind::Write, 0), (2, AccessKind::Write, 1)],
                    2,
                ),
                run(
                    2,
                    &[(1, AccessKind::Write, 3), (2, AccessKind::Write, 4)],
                    5,
                ),
            ],
        };
        assert_eq!(serial.conflict_cycle(), None);
        let readers = History {
            runs: vec![
                run(1, &[(1, AccessKind::Read, 0), (1, AccessKind::Read, 2)], 4),
                run(2, &[(1, AccessKind::Read, 1), (1, AccessKind::Read, 3)], 5),
            ],
        };
        assert_eq!(readers.conflict_cycle(), None);
        assert!(readers.conflict_edges().is_empty());
    }

    /// Three-transaction cycle through distinct objects: T1→T2 on x,
    /// T2→T3 on y, T3→T1 on z.
    #[test]
    fn three_way_cycle_detected() {
        let h = History {
            runs: vec![
                run(
                    1,
                    &[(1, AccessKind::Write, 0), (3, AccessKind::Write, 5)],
                    6,
                ),
                run(
                    2,
                    &[(1, AccessKind::Write, 1), (2, AccessKind::Write, 2)],
                    7,
                ),
                run(
                    3,
                    &[(2, AccessKind::Write, 3), (3, AccessKind::Write, 4)],
                    8,
                ),
            ],
        };
        let cycle = h.conflict_cycle().expect("3-cycle must be caught");
        assert_eq!(cycle.len(), 3, "{cycle:?}");
    }

    #[test]
    fn small_workload_is_serializable() {
        let (h, stats) = run_lock_workload(
            42,
            WorkloadCfg {
                threads: 4,
                txns_per_thread: 8,
                ..WorkloadCfg::default()
            },
        );
        assert!(stats.committed > 0, "workload must commit something");
        assert_eq!(h.conflict_cycle(), None);
    }
}
