//! Conflict-serializability oracle.
//!
//! The lock manager promises strict two-phase locking; this module
//! checks the promise from the *outside*. Concurrent workloads record,
//! per transaction, every read and write together with a global
//! operation sequence number stamped **while the lock is held**, plus a
//! commit stamp taken before any lock is released. The checker then
//! builds the classic conflict graph — an edge `Ti → Tj` whenever `Ti`
//! performed an operation on an object before `Tj` did and at least one
//! of the two was a write — and a committed history is
//! conflict-serializable iff that graph is acyclic (the serializability
//! theorem; any cycle names the guilty transactions).
//!
//! Nothing here knows how the locks are implemented, which is the
//! point: if 2PL has a hole (a lock released early, an upgrade that
//! lets a reader slip through, a transfer that leaks), some perturbed
//! schedule produces a cycle, and the test prints the seed plus the
//! cycle instead of silently corrupting data three layers up.

use crate::locks::{LockManager, LockMode};
use crate::mvcc::{CommitTs, VersionStore};
use reach_common::sync::sched;
use reach_common::{ObjectId, ReachError, SplitMix64, TxnId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

/// Read or write, for conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A shared-mode access.
    Read,
    /// An exclusive-mode access.
    Write,
}

impl AccessKind {
    fn conflicts_with(self, other: AccessKind) -> bool {
        !(self == AccessKind::Read && other == AccessKind::Read)
    }
}

/// One recorded operation: what was touched, how, and *when* in the
/// global operation order (stamped while the protecting lock was held).
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// The object accessed.
    pub oid: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// Global sequence number of the operation.
    pub seq: u64,
}

/// Everything one committed transaction did.
#[derive(Debug, Clone)]
pub struct TxnRun {
    /// The transaction.
    pub txn: TxnId,
    /// Its accesses, in its own program order.
    pub accesses: Vec<Access>,
    /// Global sequence stamp taken at commit, before lock release.
    pub commit_seq: u64,
}

/// A committed history: the input to the checker. Aborted transactions
/// are excluded by construction — they never reach [`Recorder::commit`].
#[derive(Debug, Default, Clone)]
pub struct History {
    /// Committed transaction runs.
    pub runs: Vec<TxnRun>,
}

impl History {
    /// Build the conflict graph and return a cycle through it if one
    /// exists (as the list of transactions on the cycle), or `None` if
    /// the history is conflict-serializable.
    pub fn conflict_cycle(&self) -> Option<Vec<TxnId>> {
        let edges = self.conflict_edges();
        // Adjacency + iterative DFS with colors.
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<TxnId, Color> =
            self.runs.iter().map(|r| (r.txn, Color::White)).collect();
        let mut parent: HashMap<TxnId, TxnId> = HashMap::new();
        for &start in color.keys().cloned().collect::<Vec<_>>().iter() {
            if color[&start] != Color::White {
                continue;
            }
            // Stack of (node, next child index).
            let mut stack = vec![(start, 0usize)];
            color.insert(start, Color::Gray);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(Color::Black) {
                        Color::White => {
                            parent.insert(child, node);
                            color.insert(child, Color::Gray);
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            // Found a back edge node → child: walk the
                            // parent chain from node back to child.
                            let mut cycle = vec![child, node];
                            let mut cur = node;
                            while cur != child {
                                cur = parent[&cur];
                                if cur != child {
                                    cycle.push(cur);
                                }
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        None
    }

    /// The conflict edges `Ti → Tj` (deduplicated): some operation of
    /// `Ti` precedes a conflicting operation of `Tj` on the same object.
    pub fn conflict_edges(&self) -> HashSet<(TxnId, TxnId)> {
        // Group accesses per object across all committed txns.
        let mut per_obj: HashMap<ObjectId, Vec<(TxnId, AccessKind, u64)>> = HashMap::new();
        for run in &self.runs {
            for a in &run.accesses {
                per_obj
                    .entry(a.oid)
                    .or_default()
                    .push((run.txn, a.kind, a.seq));
            }
        }
        let mut edges = HashSet::new();
        for ops in per_obj.values_mut() {
            ops.sort_by_key(|&(_, _, seq)| seq);
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    let (ti, ki, _) = ops[i];
                    let (tj, kj, _) = ops[j];
                    if ti != tj && ki.conflicts_with(kj) {
                        edges.insert((ti, tj));
                    }
                }
            }
        }
        edges
    }
}

/// Shared recorder a concurrent workload writes into. The global
/// sequence counter doubles as the stamp source: callers stamp each
/// access **while holding the protecting lock**, so per-object stamp
/// order equals the real serialization order at that object.
#[derive(Debug, Default)]
pub struct Recorder {
    seq: AtomicU64,
    runs: StdMutex<Vec<TxnRun>>,
}

impl Recorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw the next global sequence stamp.
    pub fn stamp(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Record a committed transaction. `commit_seq` must have been
    /// stamped before any of the transaction's locks were released.
    pub fn commit(&self, run: TxnRun) {
        self.runs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(run);
    }

    /// Freeze into a checkable history.
    pub fn into_history(self) -> History {
        History {
            runs: self.runs.into_inner().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Snapshot the committed runs so far without consuming the
    /// recorder (for recorders still referenced by a resource manager).
    pub fn snapshot(&self) -> History {
        History {
            runs: self.runs.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// Parameters for [`run_lock_workload`].
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCfg {
    /// Worker thread count.
    pub threads: u64,
    /// Transactions attempted per thread.
    pub txns_per_thread: u64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Size of the shared object pool (smaller = more contention).
    pub objects: u64,
    /// Probability numerator (out of 100) that an op is a write.
    pub write_pct: u64,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            threads: 4,
            txns_per_thread: 12,
            objects: 6,
            ops_per_txn: 4,
            write_pct: 50,
        }
    }
}

/// Outcome counts of a workload sweep, alongside the history.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkloadStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Victims of deadlock detection (aborted and discarded).
    pub deadlocks: u64,
    /// Lock-wait timeouts (aborted and discarded).
    pub timeouts: u64,
}

/// Drive a randomized transactional workload straight against a
/// [`LockManager`] under strict 2PL and record the committed history.
///
/// Each simulated transaction acquires the proper lock before each
/// access, stamps the access while the lock is held, stamps its commit
/// before releasing, and on `Deadlock`/`LockTimeout` releases
/// everything and is discarded (an abort). The caller asserts
/// [`History::conflict_cycle`] is `None`.
pub fn run_lock_workload(seed: u64, cfg: WorkloadCfg) -> (History, WorkloadStats) {
    let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(200)));
    let rec = Arc::new(Recorder::new());
    let stats = Arc::new(StdMutex::new(WorkloadStats::default()));
    let mut root = SplitMix64::new(seed);
    let handles: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let lm = Arc::clone(&lm);
            let rec = Arc::clone(&rec);
            let stats = Arc::clone(&stats);
            let mut rng = root.fork(t + 1);
            std::thread::spawn(move || {
                sched::register_thread(t);
                for i in 0..cfg.txns_per_thread {
                    let txn = TxnId::new(1 + t * cfg.txns_per_thread + i);
                    let outcome = run_one_txn(&lm, &rec, &mut rng, txn, &cfg);
                    let mut s = stats.lock().unwrap_or_else(|e| e.into_inner());
                    match outcome {
                        Ok(()) => s.committed += 1,
                        Err(ReachError::Deadlock(_)) => s.deadlocks += 1,
                        Err(ReachError::LockTimeout(_)) => s.timeouts += 1,
                        Err(e) => panic!("unexpected workload error: {e:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = *stats.lock().unwrap_or_else(|e| e.into_inner());
    let history = Arc::try_unwrap(rec)
        .expect("workers done; sole owner")
        .into_history();
    (history, stats)
}

fn run_one_txn(
    lm: &LockManager,
    rec: &Recorder,
    rng: &mut SplitMix64,
    txn: TxnId,
    cfg: &WorkloadCfg,
) -> Result<(), ReachError> {
    let mut accesses: Vec<Access> = Vec::with_capacity(cfg.ops_per_txn);
    for _ in 0..cfg.ops_per_txn {
        let oid = ObjectId::new(1 + rng.below(cfg.objects as usize) as u64);
        let write = rng.chance(cfg.write_pct, 100);
        let (mode, kind) = if write {
            (LockMode::Exclusive, AccessKind::Write)
        } else {
            (LockMode::Shared, AccessKind::Read)
        };
        if let Err(e) = lm.acquire(txn, oid, mode, &[]) {
            lm.release_all(txn);
            return Err(e);
        }
        // Stamp while the lock is held: this is what makes per-object
        // stamp order the ground-truth serialization order.
        accesses.push(Access {
            oid,
            kind,
            seq: rec.stamp(),
        });
    }
    // Commit stamp before release (strictness: nothing of ours is
    // visible to others until after this point).
    let commit_seq = rec.stamp();
    rec.commit(TxnRun {
        txn,
        accesses,
        commit_seq,
    });
    lm.release_all(txn);
    Ok(())
}

// ---- MVCC snapshot oracle ----

/// One writer commit as observed by the version publisher: the commit
/// timestamp the publish-then-advance protocol assigned and the values
/// written. The *independent commits log* snapshot consistency is
/// checked against.
#[derive(Debug, Clone)]
pub struct WriterCommit {
    /// The committed writer.
    pub txn: TxnId,
    /// Its commit timestamp.
    pub ts: CommitTs,
    /// `(object, value)` pairs it wrote.
    pub writes: Vec<(ObjectId, u64)>,
}

/// One lock-free snapshot read: the object and the value observed
/// (`None` = the object did not exist at the snapshot).
#[derive(Debug, Clone, Copy)]
pub struct SnapshotRead {
    /// The object read.
    pub oid: ObjectId,
    /// The observed value.
    pub value: Option<u64>,
}

/// Everything one read-only snapshot transaction observed.
#[derive(Debug, Clone)]
pub struct SnapshotRun {
    /// The reader.
    pub txn: TxnId,
    /// Its snapshot stamp.
    pub stamp: CommitTs,
    /// Its reads, in program order.
    pub reads: Vec<SnapshotRead>,
}

/// A recorded MVCC history: the writers' commits (from the publisher,
/// so timestamps are ground truth) and the readers' observations.
#[derive(Debug, Default, Clone)]
pub struct SnapshotHistory {
    /// Committed writers with their publish timestamps.
    pub commits: Vec<WriterCommit>,
    /// Read-only snapshot transactions.
    pub readers: Vec<SnapshotRun>,
}

impl SnapshotHistory {
    /// Check snapshot consistency: every read of every reader must
    /// equal the newest committed write at or below the reader's stamp,
    /// replayed from the independent commits log. Returns a description
    /// of the first violation, or `None` if every reader observed a
    /// consistent committed prefix.
    ///
    /// This is the MVCC analogue of [`History::conflict_cycle`]: it
    /// knows nothing about version chains, publish gates or vacuum — it
    /// recomputes what each stamp *should* see from commit timestamps
    /// alone, so a torn publication, a GC that reclaimed a pinned
    /// version, or a stamp issued mid-publication all surface as a
    /// mismatch.
    pub fn snapshot_violation(&self) -> Option<String> {
        let mut commits = self.commits.clone();
        commits.sort_by_key(|c| c.ts);
        for r in &self.readers {
            let mut state: HashMap<ObjectId, u64> = HashMap::new();
            for c in commits.iter().take_while(|c| c.ts <= r.stamp) {
                for (oid, v) in &c.writes {
                    state.insert(*oid, *v);
                }
            }
            for read in &r.reads {
                let expect = state.get(&read.oid).copied();
                if read.value != expect {
                    return Some(format!(
                        "reader {} (stamp {}) saw {:?} = {:?}, but the committed prefix \
                         at its stamp says {expect:?}",
                        r.txn, r.stamp, read.oid, read.value
                    ));
                }
            }
        }
        None
    }
}

/// An SI transaction for the write-skew detector: snapshot stamp,
/// commit timestamp, read set and write set.
#[derive(Debug, Clone)]
pub struct SiTxn {
    /// The transaction.
    pub txn: TxnId,
    /// Snapshot stamp it read at.
    pub stamp: CommitTs,
    /// Commit timestamp of its writes.
    pub commit_ts: CommitTs,
    /// Objects it read.
    pub reads: Vec<ObjectId>,
    /// Objects it wrote.
    pub writes: Vec<ObjectId>,
}

/// Detect write skew: two *concurrent* SI transactions (each one's
/// snapshot predates the other's commit) with disjoint write sets where
/// each read something the other wrote — the classic dangerous
/// structure (two rw-antidependencies closing a cycle) that snapshot
/// isolation admits and serializability forbids.
///
/// REACH's shipped MVCC cannot produce this by construction — snapshot
/// transactions are read-*only*, so `writes` is empty and no
/// antidependency edge out of a reader exists; writers stay under
/// strict 2PL. The detector documents (and tests guard) exactly that
/// boundary: if snapshot *writers* are ever added without SSI-style
/// certification, histories fail here first.
pub fn write_skew(txns: &[SiTxn]) -> Option<(TxnId, TxnId)> {
    for (i, a) in txns.iter().enumerate() {
        for b in txns.iter().skip(i + 1) {
            let concurrent = a.stamp < b.commit_ts && b.stamp < a.commit_ts;
            if !concurrent {
                continue;
            }
            let disjoint_writes = !a.writes.iter().any(|o| b.writes.contains(o));
            let a_misses_b = a.reads.iter().any(|o| b.writes.contains(o));
            let b_misses_a = b.reads.iter().any(|o| a.writes.contains(o));
            if disjoint_writes && a_misses_b && b_misses_a {
                return Some((a.txn, b.txn));
            }
        }
    }
    None
}

/// Parameters for [`run_mvcc_workload`].
#[derive(Debug, Clone, Copy)]
pub struct MvccWorkloadCfg {
    /// Writer thread count (strict-2PL transactions through the
    /// manager).
    pub writers: u64,
    /// Snapshot-reader thread count.
    pub readers: u64,
    /// Transactions attempted per writer thread.
    pub txns_per_writer: u64,
    /// Writes per writer transaction.
    pub writes_per_txn: usize,
    /// Snapshot transactions per reader thread.
    pub snapshots_per_reader: u64,
    /// Reads per snapshot transaction.
    pub reads_per_snapshot: usize,
    /// Shared object pool size.
    pub objects: u64,
}

impl Default for MvccWorkloadCfg {
    fn default() -> Self {
        MvccWorkloadCfg {
            writers: 3,
            readers: 3,
            txns_per_writer: 10,
            writes_per_txn: 3,
            snapshots_per_reader: 10,
            reads_per_snapshot: 4,
            objects: 6,
        }
    }
}

/// Outcome counts of an MVCC workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct MvccStats {
    /// Writer transactions that committed.
    pub committed_writers: u64,
    /// Writer transactions aborted (deadlock victims).
    pub aborted_writers: u64,
    /// Snapshot transactions completed.
    pub snapshots: u64,
    /// Total snapshot reads performed.
    pub snapshot_reads: u64,
    /// Exclusive-lock grants the writers obtained (ground truth,
    /// counted at each successful `lock`).
    pub writer_lock_grants: u64,
    /// Lock-manager grants the metrics registry recorded across the
    /// whole run. Equal to `writer_lock_grants` iff snapshot readers
    /// acquired **zero** locks.
    pub metered_lock_grants: u64,
}

/// The publisher the MVCC workload registers with the manager: a bare
/// [`VersionStore`] of `u64` values plus the independent commits log
/// the oracle checks against. `publish` runs inside the commit
/// protocol — after durability, locks held, before the clock advances —
/// so the recorded `(txn, ts, writes)` triples are ground truth.
struct WorkloadPublisher {
    store: VersionStore<u64>,
    staged: StdMutex<HashMap<TxnId, Vec<(ObjectId, u64)>>>,
    commits: StdMutex<Vec<WriterCommit>>,
}

impl crate::mvcc::VersionPublisher for WorkloadPublisher {
    fn publish(&self, txn: TxnId, ts: CommitTs) -> usize {
        let writes = self
            .staged
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&txn)
            .unwrap_or_default();
        for (oid, v) in &writes {
            self.store.publish(*oid, ts, Some(*v));
        }
        let n = writes.len();
        self.commits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(WriterCommit { txn, ts, writes });
        n
    }

    fn vacuum(&self, watermark: CommitTs) -> usize {
        self.store.vacuum(watermark)
    }

    fn longest_chain(&self) -> usize {
        self.store.longest_chain()
    }
}

/// Drive writers (strict 2PL through a real
/// [`TransactionManager`](crate::manager::TransactionManager))
/// concurrently with lock-free snapshot readers, and record both sides:
/// the writers' publish log and every reader's observations. The caller
/// asserts [`SnapshotHistory::snapshot_violation`] is `None` and that
/// `metered_lock_grants == writer_lock_grants` (readers acquired no
/// locks).
pub fn run_mvcc_workload(seed: u64, cfg: MvccWorkloadCfg) -> (SnapshotHistory, MvccStats) {
    use crate::manager::TransactionManager;
    use reach_common::{MetricsRegistry, VirtualClock};

    let metrics = MetricsRegistry::new_shared();
    metrics.enable();
    let tm = Arc::new(TransactionManager::with_metrics(
        Arc::new(VirtualClock::new_virtual()),
        Arc::clone(&metrics),
    ));
    let publisher = Arc::new(WorkloadPublisher {
        store: VersionStore::new(),
        staged: StdMutex::new(HashMap::new()),
        commits: StdMutex::new(Vec::new()),
    });
    tm.add_version_publisher(Arc::clone(&publisher) as Arc<dyn crate::mvcc::VersionPublisher>);

    let readers_log = Arc::new(StdMutex::new(Vec::<SnapshotRun>::new()));
    let stats = Arc::new(StdMutex::new(MvccStats::default()));
    let mut root = SplitMix64::new(seed);

    let mut handles = Vec::new();
    for w in 0..cfg.writers {
        let tm = Arc::clone(&tm);
        let publisher = Arc::clone(&publisher);
        let stats = Arc::clone(&stats);
        let mut rng = root.fork(w + 1);
        handles.push(std::thread::spawn(move || {
            sched::register_thread(w);
            for i in 0..cfg.txns_per_writer {
                let txn = tm.begin().unwrap();
                let mut grants = 0u64;
                let mut ok = true;
                for op in 0..cfg.writes_per_txn {
                    let oid = ObjectId::new(1 + rng.below(cfg.objects as usize) as u64);
                    match tm.lock(txn, oid, LockMode::Exclusive) {
                        Ok(()) => {
                            grants += 1;
                            // Value encodes (writer, txn attempt, op):
                            // unique per write, so a torn read cannot
                            // alias a legitimate one.
                            let v = ((w + 1) << 24) | (i << 8) | op as u64;
                            publisher
                                .staged
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .entry(txn)
                                .or_default()
                                .push((oid, v));
                        }
                        Err(ReachError::Deadlock(_) | ReachError::LockTimeout(_)) => {
                            publisher
                                .staged
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&txn);
                            tm.abort(txn).unwrap();
                            ok = false;
                            break;
                        }
                        Err(e) => panic!("unexpected lock error: {e:?}"),
                    }
                }
                let mut s = stats.lock().unwrap_or_else(|e| e.into_inner());
                s.writer_lock_grants += grants;
                if ok {
                    drop(s);
                    tm.commit(txn).unwrap();
                    stats
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .committed_writers += 1;
                } else {
                    s.aborted_writers += 1;
                }
            }
        }));
    }
    for r in 0..cfg.readers {
        let tm = Arc::clone(&tm);
        let publisher = Arc::clone(&publisher);
        let readers_log = Arc::clone(&readers_log);
        let stats = Arc::clone(&stats);
        let mut rng = root.fork(1000 + r);
        handles.push(std::thread::spawn(move || {
            sched::register_thread(cfg.writers + r);
            for _ in 0..cfg.snapshots_per_reader {
                let txn = tm.begin_read_only().unwrap();
                let stamp = tm.snapshot_stamp(txn).unwrap();
                let mut reads = Vec::with_capacity(cfg.reads_per_snapshot);
                for _ in 0..cfg.reads_per_snapshot {
                    let oid = ObjectId::new(1 + rng.below(cfg.objects as usize) as u64);
                    let value = publisher.store.read_at(oid, stamp).and_then(|v| v.payload);
                    reads.push(SnapshotRead { oid, value });
                }
                tm.commit(txn).unwrap();
                let mut s = stats.lock().unwrap_or_else(|e| e.into_inner());
                s.snapshots += 1;
                s.snapshot_reads += reads.len() as u64;
                drop(s);
                readers_log
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(SnapshotRun { txn, stamp, reads });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut stats = *stats.lock().unwrap_or_else(|e| e.into_inner());
    stats.metered_lock_grants = metrics.txn.lock_acquisitions.get();
    let history = SnapshotHistory {
        commits: publisher
            .commits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone(),
        readers: readers_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone(),
    };
    (history, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    fn run(txn: u64, accesses: &[(u64, AccessKind, u64)], commit_seq: u64) -> TxnRun {
        TxnRun {
            txn: t(txn),
            accesses: accesses
                .iter()
                .map(|&(oid, kind, seq)| Access {
                    oid: o(oid),
                    kind,
                    seq,
                })
                .collect(),
            commit_seq,
        }
    }

    /// The classic lost update: T1 reads x, T2 reads x, T2 writes x,
    /// T1 writes x. Edges T1→T2 (r-w) and T2→T1 (w-w): a cycle.
    #[test]
    fn lost_update_cycle_detected() {
        let h = History {
            runs: vec![
                run(1, &[(1, AccessKind::Read, 0), (1, AccessKind::Write, 3)], 4),
                run(2, &[(1, AccessKind::Read, 1), (1, AccessKind::Write, 2)], 5),
            ],
        };
        let cycle = h.conflict_cycle().expect("lost update must be caught");
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(2)), "{cycle:?}");
    }

    /// Serial histories and read-only overlap are acyclic.
    #[test]
    fn serial_and_read_only_histories_pass() {
        let serial = History {
            runs: vec![
                run(
                    1,
                    &[(1, AccessKind::Write, 0), (2, AccessKind::Write, 1)],
                    2,
                ),
                run(
                    2,
                    &[(1, AccessKind::Write, 3), (2, AccessKind::Write, 4)],
                    5,
                ),
            ],
        };
        assert_eq!(serial.conflict_cycle(), None);
        let readers = History {
            runs: vec![
                run(1, &[(1, AccessKind::Read, 0), (1, AccessKind::Read, 2)], 4),
                run(2, &[(1, AccessKind::Read, 1), (1, AccessKind::Read, 3)], 5),
            ],
        };
        assert_eq!(readers.conflict_cycle(), None);
        assert!(readers.conflict_edges().is_empty());
    }

    /// Three-transaction cycle through distinct objects: T1→T2 on x,
    /// T2→T3 on y, T3→T1 on z.
    #[test]
    fn three_way_cycle_detected() {
        let h = History {
            runs: vec![
                run(
                    1,
                    &[(1, AccessKind::Write, 0), (3, AccessKind::Write, 5)],
                    6,
                ),
                run(
                    2,
                    &[(1, AccessKind::Write, 1), (2, AccessKind::Write, 2)],
                    7,
                ),
                run(
                    3,
                    &[(2, AccessKind::Write, 3), (3, AccessKind::Write, 4)],
                    8,
                ),
            ],
        };
        let cycle = h.conflict_cycle().expect("3-cycle must be caught");
        assert_eq!(cycle.len(), 3, "{cycle:?}");
    }

    #[test]
    fn small_workload_is_serializable() {
        let (h, stats) = run_lock_workload(
            42,
            WorkloadCfg {
                threads: 4,
                txns_per_thread: 8,
                ..WorkloadCfg::default()
            },
        );
        assert!(stats.committed > 0, "workload must commit something");
        assert_eq!(h.conflict_cycle(), None);
    }

    #[test]
    fn snapshot_oracle_accepts_consistent_prefix_reads() {
        let h = SnapshotHistory {
            commits: vec![
                WriterCommit {
                    txn: t(1),
                    ts: 1,
                    writes: vec![(o(1), 10), (o(2), 20)],
                },
                WriterCommit {
                    txn: t(2),
                    ts: 2,
                    writes: vec![(o(1), 11)],
                },
            ],
            readers: vec![
                SnapshotRun {
                    txn: t(10),
                    stamp: 1,
                    reads: vec![
                        SnapshotRead {
                            oid: o(1),
                            value: Some(10),
                        },
                        SnapshotRead {
                            oid: o(2),
                            value: Some(20),
                        },
                        SnapshotRead {
                            oid: o(3),
                            value: None,
                        },
                    ],
                },
                SnapshotRun {
                    txn: t(11),
                    stamp: 2,
                    reads: vec![SnapshotRead {
                        oid: o(1),
                        value: Some(11),
                    }],
                },
                // A stamp before any commit sees nothing at all.
                SnapshotRun {
                    txn: t(12),
                    stamp: 0,
                    reads: vec![SnapshotRead {
                        oid: o(1),
                        value: None,
                    }],
                },
            ],
        };
        assert_eq!(h.snapshot_violation(), None);
    }

    #[test]
    fn snapshot_oracle_catches_future_and_torn_reads() {
        // A reader at stamp 1 that observes txn 2's write has read the
        // future — the exact failure a stamp issued mid-publication (or
        // a baseline seeded from post-commit state) would produce.
        let future = SnapshotHistory {
            commits: vec![
                WriterCommit {
                    txn: t(1),
                    ts: 1,
                    writes: vec![(o(1), 10)],
                },
                WriterCommit {
                    txn: t(2),
                    ts: 2,
                    writes: vec![(o(1), 11)],
                },
            ],
            readers: vec![SnapshotRun {
                txn: t(10),
                stamp: 1,
                reads: vec![SnapshotRead {
                    oid: o(1),
                    value: Some(11),
                }],
            }],
        };
        assert!(future.snapshot_violation().is_some());

        // A reader that sees half of txn 1's two-object commit has seen
        // a torn publication.
        let torn = SnapshotHistory {
            commits: vec![WriterCommit {
                txn: t(1),
                ts: 1,
                writes: vec![(o(1), 10), (o(2), 20)],
            }],
            readers: vec![SnapshotRun {
                txn: t(10),
                stamp: 1,
                reads: vec![
                    SnapshotRead {
                        oid: o(1),
                        value: Some(10),
                    },
                    SnapshotRead {
                        oid: o(2),
                        value: None,
                    },
                ],
            }],
        };
        assert!(torn.snapshot_violation().is_some());
    }

    #[test]
    fn write_skew_detector_fires_on_the_dangerous_structure() {
        // The on-call doctors example: both read {1, 2} at the same
        // snapshot, each removes itself — disjoint writes, crossed
        // rw-antidependencies.
        let skew = vec![
            SiTxn {
                txn: t(1),
                stamp: 5,
                commit_ts: 7,
                reads: vec![o(1), o(2)],
                writes: vec![o(1)],
            },
            SiTxn {
                txn: t(2),
                stamp: 5,
                commit_ts: 6,
                reads: vec![o(1), o(2)],
                writes: vec![o(2)],
            },
        ];
        assert_eq!(write_skew(&skew), Some((t(1), t(2))));

        // Serialized (t2 starts after t1 commits): no skew.
        let serialized = vec![
            SiTxn {
                txn: t(1),
                stamp: 5,
                commit_ts: 6,
                reads: vec![o(1), o(2)],
                writes: vec![o(1)],
            },
            SiTxn {
                txn: t(2),
                stamp: 6,
                commit_ts: 7,
                reads: vec![o(1), o(2)],
                writes: vec![o(2)],
            },
        ];
        assert_eq!(write_skew(&serialized), None);

        // Overlapping write sets force a 2PL-style conflict, not skew.
        let ww = vec![
            SiTxn {
                txn: t(1),
                stamp: 5,
                commit_ts: 7,
                reads: vec![o(1), o(2)],
                writes: vec![o(1)],
            },
            SiTxn {
                txn: t(2),
                stamp: 5,
                commit_ts: 6,
                reads: vec![o(1), o(2)],
                writes: vec![o(1), o(2)],
            },
        ];
        assert_eq!(write_skew(&ww), None);
    }

    #[test]
    fn small_mvcc_workload_is_snapshot_consistent() {
        let (h, stats) = run_mvcc_workload(
            7,
            MvccWorkloadCfg {
                writers: 2,
                readers: 2,
                txns_per_writer: 6,
                snapshots_per_reader: 6,
                ..MvccWorkloadCfg::default()
            },
        );
        assert!(stats.committed_writers > 0);
        assert!(stats.snapshot_reads > 0);
        assert_eq!(h.snapshot_violation(), None);
        assert_eq!(
            stats.metered_lock_grants, stats.writer_lock_grants,
            "snapshot readers must not touch the lock manager"
        );
        // Read-only snapshots have empty write sets, so the dangerous
        // structure is unreachable by construction.
        let si: Vec<SiTxn> = h
            .readers
            .iter()
            .map(|r| SiTxn {
                txn: r.txn,
                stamp: r.stamp,
                commit_ts: r.stamp,
                reads: r.reads.iter().map(|x| x.oid).collect(),
                writes: Vec::new(),
            })
            .collect();
        assert_eq!(write_skew(&si), None);
    }
}
