//! Multi-version concurrency control for read-only transactions.
//!
//! The paper's workload is read-dominant by construction: every
//! primitive event can trigger rule-condition evaluation, so a
//! monitoring application issues many condition reads per write. The
//! E16 read-only commit fast path already skips the fsync, but under
//! plain strict 2PL those readers still *acquire shared locks* and can
//! stall behind a writer holding an exclusive lock. This module removes
//! the last obstacle: a read-only transaction captures a **snapshot
//! stamp** at begin and reads the latest committed version at or below
//! that stamp — no lock-manager traffic at all. Writers are untouched:
//! they keep the existing strict-2PL + WAL path.
//!
//! The protocol is *publish-then-advance*:
//!
//! 1. a committing writer, **after** every resource manager reported
//!    durable and **while still holding its 2PL locks**, publishes one
//!    new version per written object under the manager's publish mutex,
//!    tagged with commit timestamp `current + 1`;
//! 2. only then does the commit clock advance to `current + 1`.
//!
//! A snapshot stamp is a plain load of the commit clock, so a reader
//! can never observe a timestamp whose versions are not fully in the
//! store — the clock only moves after publication completes (the
//! version-visibility safety argument in DESIGN.md §4 builds on exactly
//! this ordering).
//!
//! Version chains garbage-collect against the **oldest live snapshot**:
//! versions strictly below the oldest registered stamp are reclaimed,
//! except the newest such version per object (it is the base some
//! present or future snapshot still resolves to). With no live
//! snapshots only the newest version per object survives.

use reach_common::sync::Mutex;
use reach_common::{ObjectId, Result, TxnId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A commit timestamp drawn from the transaction manager's commit
/// clock. `0` is the baseline (state that predates every MVCC-era
/// write); real commits stamp `1, 2, 3, …`.
pub type CommitTs = u64;

/// The timestamp of baseline versions: committed state captured before
/// the object's first MVCC-era write.
pub const BASELINE_TS: CommitTs = 0;

/// One entry in an object's version chain. `payload == None` is a
/// tombstone: at this timestamp the object does not exist (deleted, or
/// not yet created).
#[derive(Debug, Clone)]
pub struct Version<T> {
    /// Commit timestamp this version became visible at.
    pub ts: CommitTs,
    /// The committed state, or `None` for a tombstone.
    pub payload: Option<T>,
}

/// A multi-version store: per-object chains of committed versions,
/// ordered by commit timestamp.
///
/// Generic over the payload so `reach-txn` stays independent of the
/// object model: the OODB instantiates it with object state, the
/// oracle workloads with plain integers.
pub struct VersionStore<T> {
    chains: Mutex<HashMap<ObjectId, Vec<Version<T>>>>,
    /// Length of the longest chain, maintained incrementally by
    /// [`VersionStore::publish`] and recomputed by
    /// [`VersionStore::vacuum`]. Lets a committing writer decide in
    /// O(1) whether chains have grown enough to warrant a vacuum —
    /// without this, a write-heavy workload that never opens a
    /// read-only (snapshot) transaction accumulates versions
    /// unboundedly, because vacuum otherwise only runs on
    /// snapshot-stamp release.
    longest: AtomicUsize,
}

impl<T> Default for VersionStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VersionStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        VersionStore {
            chains: Mutex::new(HashMap::new()),
            longest: AtomicUsize::new(0),
        }
    }

    /// Length of the longest version chain (O(1); see the field doc).
    pub fn longest_chain(&self) -> usize {
        self.longest.load(Ordering::Relaxed)
    }
}

impl<T: Clone> VersionStore<T> {
    /// Publish a committed version of `oid` at `ts` (`None` = delete
    /// tombstone). Timestamps arrive monotonically per object because
    /// publication happens under the manager's publish mutex while the
    /// writer still holds its exclusive lock; a same-`ts` republish
    /// replaces the entry (a transaction writing the same object twice
    /// commits one version).
    pub fn publish(&self, oid: ObjectId, ts: CommitTs, payload: Option<T>) {
        let mut chains = self.chains.lock();
        let chain = chains.entry(oid).or_default();
        match chain.last_mut() {
            Some(last) if last.ts == ts => last.payload = payload,
            _ => chain.push(Version { ts, payload }),
        }
        self.longest.fetch_max(chain.len(), Ordering::Relaxed);
    }

    /// Seed the baseline version of `oid` if (and only if) it has no
    /// chain yet. `committed` is evaluated under the store lock, which
    /// is what makes first-write seeding race-free: a writer seeds the
    /// pre-image *before* its first in-place mutation, so any snapshot
    /// reader either finds the chain (and never looks at the mutable
    /// object) or reads state the writer has provably not touched yet.
    /// Returns whether a baseline was inserted.
    pub fn seed_baseline_with(
        &self,
        oid: ObjectId,
        committed: impl FnOnce() -> Result<Option<T>>,
    ) -> Result<bool> {
        let mut chains = self.chains.lock();
        if chains.contains_key(&oid) {
            return Ok(false);
        }
        let payload = committed()?;
        chains.insert(
            oid,
            vec![Version {
                ts: BASELINE_TS,
                payload,
            }],
        );
        Ok(true)
    }

    /// The newest version of `oid` visible at `stamp` (largest
    /// `ts <= stamp`), or `None` if the object has no chain or no
    /// version old enough.
    pub fn read_at(&self, oid: ObjectId, stamp: CommitTs) -> Option<Version<T>> {
        let chains = self.chains.lock();
        let chain = chains.get(&oid)?;
        chain.iter().rev().find(|v| v.ts <= stamp).cloned()
    }

    /// Visible payload at `stamp`, seeding the baseline from
    /// `committed` when the object has no chain yet (same race-free
    /// contract as [`VersionStore::seed_baseline_with`]). Returns
    /// `Ok(None)` when the object does not exist at `stamp` (tombstone
    /// or created later).
    pub fn read_or_seed(
        &self,
        oid: ObjectId,
        stamp: CommitTs,
        committed: impl FnOnce() -> Result<Option<T>>,
    ) -> Result<Option<T>> {
        let mut chains = self.chains.lock();
        if let Some(chain) = chains.get(&oid) {
            return Ok(chain
                .iter()
                .rev()
                .find(|v| v.ts <= stamp)
                .and_then(|v| v.payload.clone()));
        }
        let payload = committed()?;
        chains.insert(
            oid,
            vec![Version {
                ts: BASELINE_TS,
                payload: payload.clone(),
            }],
        );
        Ok(payload)
    }

    /// Reclaim versions below `watermark` (the oldest live snapshot
    /// stamp, or one past the commit clock when no snapshot is live),
    /// keeping per object every version at or above the watermark plus
    /// the newest one below it. Returns how many versions were dropped.
    pub fn vacuum(&self, watermark: CommitTs) -> usize {
        let mut chains = self.chains.lock();
        let mut dropped = 0;
        let mut longest = 0;
        for chain in chains.values_mut() {
            // Index of the newest version strictly below the watermark:
            // everything before it is unreachable by any live or future
            // snapshot.
            let keep_from = chain.iter().rposition(|v| v.ts < watermark).unwrap_or(0);
            dropped += keep_from;
            chain.drain(..keep_from);
            longest = longest.max(chain.len());
        }
        self.longest.store(longest, Ordering::Relaxed);
        dropped
    }

    /// Number of objects with a version chain.
    pub fn objects(&self) -> usize {
        self.chains.lock().len()
    }

    /// Total versions across all chains (introspection / GC tests).
    pub fn total_versions(&self) -> usize {
        self.chains.lock().values().map(Vec::len).sum()
    }

    /// Versions currently retained for `oid`.
    pub fn versions_of(&self, oid: ObjectId) -> usize {
        self.chains.lock().get(&oid).map_or(0, Vec::len)
    }
}

/// Registry of live snapshot stamps. The minimum registered stamp pins
/// version-chain garbage collection; releasing the last reader at a
/// stamp moves the watermark forward.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    live: Mutex<BTreeMap<CommitTs, u64>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a live reader at `stamp`.
    pub fn register(&self, stamp: CommitTs) {
        *self.live.lock().entry(stamp).or_insert(0) += 1;
    }

    /// Release one reader at `stamp`.
    pub fn release(&self, stamp: CommitTs) {
        let mut live = self.live.lock();
        if let Some(count) = live.get_mut(&stamp) {
            *count -= 1;
            if *count == 0 {
                live.remove(&stamp);
            }
        }
    }

    /// The oldest live snapshot stamp, if any reader is live.
    pub fn oldest(&self) -> Option<CommitTs> {
        self.live.lock().keys().next().copied()
    }

    /// Number of live readers across all stamps.
    pub fn live_readers(&self) -> u64 {
        self.live.lock().values().sum()
    }
}

/// A component that materializes committed versions when a writer
/// commits, and reclaims them when the snapshot watermark advances.
/// The OODB's change-log bridge implements this against the object
/// space; oracle workloads implement it against a bare
/// [`VersionStore`].
pub trait VersionPublisher: Send + Sync {
    /// Publish `txn`'s committed write set at commit timestamp `ts`.
    /// Called by the transaction manager after every resource manager
    /// reported durable, while the writer's 2PL locks are still held
    /// and **before** the commit clock advances to `ts`. Returns the
    /// number of versions published.
    fn publish(&self, txn: TxnId, ts: CommitTs) -> usize;

    /// Reclaim versions below `watermark`. Returns versions dropped.
    fn vacuum(&self, watermark: CommitTs) -> usize;

    /// Length of the longest version chain this publisher retains.
    /// The transaction manager polls this after each publish to decide
    /// whether to vacuum from the *writer* path — the backstop that
    /// keeps chains bounded when no snapshot reader ever registers
    /// (stamp release being the only other vacuum trigger). The
    /// default `0` opts a publisher out of writer-triggered vacuums.
    fn longest_chain(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn visibility_picks_newest_at_or_below_stamp() {
        let store = VersionStore::new();
        store.publish(o(1), 1, Some(10u64));
        store.publish(o(1), 3, Some(30));
        store.publish(o(1), 5, Some(50));
        assert!(store.read_at(o(1), 0).is_none());
        assert_eq!(store.read_at(o(1), 1).unwrap().payload, Some(10));
        assert_eq!(store.read_at(o(1), 2).unwrap().payload, Some(10));
        assert_eq!(store.read_at(o(1), 3).unwrap().payload, Some(30));
        assert_eq!(store.read_at(o(1), 4).unwrap().payload, Some(30));
        assert_eq!(store.read_at(o(1), 9).unwrap().payload, Some(50));
    }

    #[test]
    fn tombstones_hide_the_object() {
        let store = VersionStore::new();
        store.publish(o(1), 1, Some(10u64));
        store.publish(o(1), 2, None);
        store.publish(o(1), 4, Some(40));
        assert_eq!(store.read_at(o(1), 1).unwrap().payload, Some(10));
        assert_eq!(store.read_at(o(1), 3).unwrap().payload, None);
        assert_eq!(store.read_at(o(1), 4).unwrap().payload, Some(40));
    }

    #[test]
    fn same_ts_republish_replaces() {
        let store = VersionStore::new();
        store.publish(o(1), 2, Some(1u64));
        store.publish(o(1), 2, Some(2));
        assert_eq!(store.versions_of(o(1)), 1);
        assert_eq!(store.read_at(o(1), 2).unwrap().payload, Some(2));
    }

    #[test]
    fn seed_baseline_only_once() {
        let store = VersionStore::new();
        assert!(store.seed_baseline_with(o(1), || Ok(Some(7u64))).unwrap());
        assert!(!store
            .seed_baseline_with(o(1), || panic!("chain exists; closure must not run"))
            .unwrap());
        let v = store.read_at(o(1), 0).unwrap();
        assert_eq!((v.ts, v.payload), (BASELINE_TS, Some(7)));
    }

    #[test]
    fn read_or_seed_faults_the_baseline_in() {
        let store = VersionStore::new();
        assert_eq!(
            store.read_or_seed(o(1), 5, || Ok(Some(9u64))).unwrap(),
            Some(9)
        );
        // Second read hits the seeded chain, never the fallback.
        assert_eq!(
            store
                .read_or_seed(o(1), 5, || panic!("must not re-fault"))
                .unwrap(),
            Some(9)
        );
        // Absent committed state seeds a tombstone.
        assert_eq!(store.read_or_seed(o(2), 5, || Ok(None)).unwrap(), None);
        assert_eq!(store.versions_of(o(2)), 1);
    }

    #[test]
    fn vacuum_keeps_newest_below_watermark() {
        let store = VersionStore::new();
        for ts in 1..=5u64 {
            store.publish(o(1), ts, Some(ts * 10));
        }
        // Watermark 4 (oldest live stamp): ts=4 and ts=5 are at or
        // above it, ts=3 is the newest below it and remains as the base
        // any stamp-4 reader of an object last written at ts=3 needs;
        // ts=1 and ts=2 are unreachable.
        let dropped = store.vacuum(4);
        assert_eq!(dropped, 2, "ts 1 and 2 reclaimed");
        assert_eq!(store.versions_of(o(1)), 3);
        assert_eq!(store.read_at(o(1), 4).unwrap().payload, Some(40));
        assert_eq!(store.read_at(o(1), 3).unwrap().payload, Some(30));
    }

    #[test]
    fn vacuum_with_no_live_snapshot_keeps_only_newest() {
        let store = VersionStore::new();
        for ts in 1..=5u64 {
            store.publish(o(1), ts, Some(ts));
        }
        store.publish(o(2), 2, Some(2));
        let dropped = store.vacuum(6); // one past the clock
        assert_eq!(dropped, 4);
        assert_eq!(store.versions_of(o(1)), 1);
        assert_eq!(store.versions_of(o(2)), 1);
        assert_eq!(store.read_at(o(1), 6).unwrap().payload, Some(5));
    }

    #[test]
    fn registry_watermark_tracks_oldest_live_reader() {
        let reg = SnapshotRegistry::new();
        assert_eq!(reg.oldest(), None);
        reg.register(3);
        reg.register(5);
        reg.register(3);
        assert_eq!(reg.oldest(), Some(3));
        reg.release(3);
        assert_eq!(reg.oldest(), Some(3), "second stamp-3 reader still pins");
        reg.release(3);
        assert_eq!(reg.oldest(), Some(5));
        reg.release(5);
        assert_eq!(reg.oldest(), None);
        assert_eq!(reg.live_readers(), 0);
    }
}
