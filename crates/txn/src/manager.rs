//! The transaction manager: flat + closed nested transactions, hooks,
//! and the commit protocol that the coupling modes of §3.2 build on.
//!
//! Structure mirrors what the paper found missing in closed systems:
//!
//! * subtransactions ([`TransactionManager::begin_nested`]) whose locks
//!   and effects are inherited by the parent on commit and undone on
//!   abort (via per-resource savepoints);
//! * *pre-commit hooks* — the execution point of deferred-coupled rules
//!   ("after the triggering transaction completes its execution but
//!   before it commits"); a hook may enqueue further hooks (cascading
//!   rules) and may abort the transaction by returning an error;
//! * observable commit/abort signals ([`crate::events::TxnListener`])
//!   and a [`DependencyGraph`] consulted before a dependent transaction
//!   is allowed to commit;
//! * lock transfer for the exclusive causally dependent mode.

use crate::dependency::{DependencyGraph, Outcome, Permission};
use crate::events::{TxnEvent, TxnEventKind, TxnListener};
use crate::locks::{LockManager, LockMode};
use crate::mvcc::{CommitTs, SnapshotRegistry, VersionPublisher};
use reach_common::sync::{Mutex, RwLock};
use reach_common::{IdGen, MetricsRegistry, ObjectId, ReachError, Result, TxnId, VirtualClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Writer-path vacuum trigger: when any version publisher retains a
/// chain longer than this after a publish, the committing writer runs a
/// vacuum itself instead of waiting for a snapshot-stamp release (which
/// a stamp-free, write-heavy workload never produces). The watermark is
/// still computed against the oldest live snapshot, so a triggered
/// vacuum can never reclaim a version a reader might resolve to.
pub const VACUUM_CHAIN_THRESHOLD: usize = 64;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running; operations are accepted.
    Active,
    /// Commit in progress (pre-commit hooks, durability).
    Committing,
    /// Two-phase commit: prepared and in doubt. Every resource manager
    /// has force-logged what it needs to commit; locks stay pinned and
    /// only the coordinator's decision ([`TransactionManager::decide`])
    /// moves the transaction on.
    Prepared,
    /// Durably committed.
    Committed,
    /// Rolled back.
    Aborted,
}

/// Participant that must make a transaction's effects atomic (the
/// Persistence/Change PMs implement this against the storage manager and
/// object space). Savepoints make *sub*transaction rollback possible.
pub trait ResourceManager: Send + Sync {
    /// A new top-level transaction started.
    fn begin_top(&self, txn: TxnId) -> Result<()>;
    /// A subtransaction started inside `top`; return a savepoint token.
    fn savepoint(&self, top: TxnId) -> Result<u64>;
    /// Undo `top`'s effects performed after the savepoint.
    fn rollback_to(&self, top: TxnId, savepoint: u64) -> Result<()>;
    /// Make `txn`'s effects durable (called once, at top-level commit).
    fn commit_top(&self, txn: TxnId) -> Result<()>;
    /// Undo all of `txn`'s effects (top-level abort).
    fn abort_top(&self, txn: TxnId) -> Result<()>;
    /// Two-phase commit, phase one: force-log everything needed to make
    /// `txn` durable under global transaction `gid`, without releasing
    /// anything. After `Ok`, a later `commit_top` must succeed without
    /// further risk and `abort_top` must still fully undo. The default
    /// suits managers whose `commit_top` carries no durability risk.
    fn prepare_top(&self, _txn: TxnId, _gid: u64) -> Result<()> {
        Ok(())
    }
}

type Hook = Box<dyn FnOnce() -> Result<()> + Send>;
type Action = Box<dyn FnOnce() + Send>;

struct TxnRecord {
    parent: Option<TxnId>,
    top: TxnId,
    state: TxnState,
    children: Vec<TxnId>,
    active_children: usize,
    /// Per-resource-manager savepoint tokens (empty for top-level).
    savepoints: Vec<u64>,
    /// Deferred work run at top-level pre-commit (FIFO).
    pre_commit: Vec<Hook>,
    /// Compensations run on abort (reverse order).
    on_abort: Vec<Action>,
    /// Work run after successful top-level commit (FIFO).
    on_commit: Vec<Action>,
    /// `Some(stamp)` for read-only snapshot transactions: every read
    /// resolves against the committed-version store at this stamp, no
    /// locks are ever acquired, and commit/abort only release the
    /// snapshot registration (resource managers never hear about it).
    snapshot: Option<CommitTs>,
}

/// The transaction manager.
pub struct TransactionManager {
    clock: Arc<VirtualClock>,
    locks: Arc<LockManager>,
    deps: Arc<DependencyGraph>,
    txns: Mutex<HashMap<TxnId, TxnRecord>>,
    /// Registries are read-mostly and sit on the begin/commit hot path
    /// of every (sub)transaction, so reads snapshot an `Arc` to the
    /// current Vec instead of cloning the Vec itself; writers swap in
    /// a rebuilt Vec (copy-on-write).
    listeners: RwLock<Arc<Vec<Arc<dyn TxnListener>>>>,
    resources: RwLock<Arc<Vec<Arc<dyn ResourceManager>>>>,
    ids: IdGen,
    /// Patience for causal-dependency waits at commit.
    dep_timeout: Duration,
    metrics: Arc<MetricsRegistry>,
    /// The commit-timestamp authority: the last commit whose versions
    /// are *fully published*. Snapshot stamps are plain loads of this.
    commit_ts: AtomicU64,
    /// Serializes version publication with the commit-clock advance
    /// (publish-then-advance), and snapshot stamping with both.
    publish_gate: Mutex<()>,
    /// Live snapshot stamps; the oldest pins version GC.
    snapshots: SnapshotRegistry,
    /// Version stores fed at writer commit, reclaimed at watermark
    /// advance.
    publishers: RwLock<Arc<Vec<Arc<dyn VersionPublisher>>>>,
}

impl TransactionManager {
    /// A manager with a private (unrecorded) metrics registry.
    pub fn new(clock: Arc<VirtualClock>) -> Self {
        Self::with_metrics(clock, MetricsRegistry::new_shared())
    }

    /// A manager recording begin/commit/abort counts, commit latency,
    /// lock waits and deadlocks into a shared registry.
    pub fn with_metrics(clock: Arc<VirtualClock>, metrics: Arc<MetricsRegistry>) -> Self {
        TransactionManager {
            clock,
            locks: Arc::new(LockManager::with_metrics(
                Duration::from_secs(5),
                Arc::clone(&metrics),
            )),
            deps: Arc::new(DependencyGraph::new()),
            txns: Mutex::new(HashMap::new()),
            listeners: RwLock::new(Arc::new(Vec::new())),
            resources: RwLock::new(Arc::new(Vec::new())),
            ids: IdGen::new(),
            dep_timeout: Duration::from_secs(10),
            metrics,
            commit_ts: AtomicU64::new(0),
            publish_gate: Mutex::new(()),
            snapshots: SnapshotRegistry::new(),
            publishers: RwLock::new(Arc::new(Vec::new())),
        }
    }

    /// The registry this manager records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The virtual clock events are stamped with.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The lock manager writers acquire through.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The commit/abort dependency graph (coupling modes).
    pub fn dependencies(&self) -> &Arc<DependencyGraph> {
        &self.deps
    }

    /// Subscribe to flow-control events.
    pub fn add_listener(&self, l: Arc<dyn TxnListener>) {
        let mut reg = self.listeners.write();
        let mut v = (**reg).clone();
        v.push(l);
        *reg = Arc::new(v);
    }

    /// Register a resource manager (storage, object-space change log).
    pub fn add_resource_manager(&self, rm: Arc<dyn ResourceManager>) {
        let mut reg = self.resources.write();
        let mut v = (**reg).clone();
        v.push(rm);
        *reg = Arc::new(v);
    }

    /// Register a version store to feed at writer commit (publication
    /// happens after durability, before lock release) and reclaim when
    /// the snapshot watermark advances.
    pub fn add_version_publisher(&self, p: Arc<dyn VersionPublisher>) {
        let mut reg = self.publishers.write();
        let mut v = (**reg).clone();
        v.push(p);
        *reg = Arc::new(v);
    }

    /// The current snapshot stamp source: the newest commit timestamp
    /// whose versions are fully published.
    pub fn commit_stamp(&self) -> CommitTs {
        self.commit_ts.load(Ordering::SeqCst)
    }

    /// Read-only snapshot transactions currently live.
    pub fn live_snapshots(&self) -> u64 {
        self.snapshots.live_readers()
    }

    fn emit(&self, kind: TxnEventKind, txn: TxnId, parent: Option<TxnId>, top: TxnId) {
        let listeners = Arc::clone(&self.listeners.read());
        if listeners.is_empty() {
            return;
        }
        let event = TxnEvent {
            kind,
            txn,
            parent,
            top_level: top,
            at: self.clock.now(),
        };
        for l in listeners.iter() {
            l.on_txn_event(&event);
        }
    }

    // ---- lifecycle ----

    /// Begin a top-level transaction.
    pub fn begin(&self) -> Result<TxnId> {
        let id: TxnId = self.ids.next();
        let rms = Arc::clone(&self.resources.read());
        for rm in rms.iter() {
            rm.begin_top(id)?;
        }
        self.txns.lock().insert(
            id,
            TxnRecord {
                parent: None,
                top: id,
                state: TxnState::Active,
                children: Vec::new(),
                active_children: 0,
                savepoints: Vec::new(),
                pre_commit: Vec::new(),
                on_abort: Vec::new(),
                on_commit: Vec::new(),
                snapshot: None,
            },
        );
        if self.metrics.on() {
            self.metrics.txn.begins.inc();
        }
        self.emit(TxnEventKind::Begin, id, None, id);
        Ok(id)
    }

    /// Begin a read-only snapshot transaction.
    ///
    /// The transaction captures the current commit stamp and every read
    /// resolves against the committed-version store at that stamp — it
    /// acquires **no locks**, never blocks behind writers, and is never
    /// announced to resource managers (it has nothing to make durable;
    /// its commit is the E16 read-only fast path taken to its logical
    /// end). Attempting to lock or write through it fails with
    /// [`ReachError::ReadOnlyTxn`].
    ///
    /// The stamp is taken under the publish gate, so it can neither
    /// split a commit's publication in half nor race the garbage
    /// collector: by the time the stamp is visible in the snapshot
    /// registry, every version at or below it is in the store and
    /// pinned.
    pub fn begin_read_only(&self) -> Result<TxnId> {
        let id: TxnId = self.ids.next();
        let stamp = {
            let _gate = self.publish_gate.lock();
            let stamp = self.commit_ts.load(Ordering::SeqCst);
            self.snapshots.register(stamp);
            stamp
        };
        self.txns.lock().insert(
            id,
            TxnRecord {
                parent: None,
                top: id,
                state: TxnState::Active,
                children: Vec::new(),
                active_children: 0,
                savepoints: Vec::new(),
                pre_commit: Vec::new(),
                on_abort: Vec::new(),
                on_commit: Vec::new(),
                snapshot: Some(stamp),
            },
        );
        if self.metrics.on() {
            self.metrics.txn.begins.inc();
            self.metrics.txn.snapshot_begins.inc();
        }
        self.emit(TxnEventKind::Begin, id, None, id);
        Ok(id)
    }

    /// Whether `txn` is a read-only snapshot transaction.
    pub fn is_read_only(&self, txn: TxnId) -> bool {
        self.txns
            .lock()
            .get(&txn)
            .is_some_and(|r| r.snapshot.is_some())
    }

    /// The snapshot stamp of read-only transaction `txn`, checked for
    /// use by one more read: the transaction must still be active, and
    /// an expired per-request deadline fails the read *here* — a
    /// lock-free read has no condvar wait for the deadline to interrupt
    /// (see [`TransactionManager::set_deadline`]), so the entry check
    /// is the only place it can be honoured.
    pub fn snapshot_stamp(&self, txn: TxnId) -> Result<CommitTs> {
        let stamp = {
            let txns = self.txns.lock();
            let rec = txns.get(&txn).ok_or(ReachError::TxnNotFound(txn))?;
            if rec.state != TxnState::Active {
                return Err(ReachError::TxnNotActive(txn));
            }
            rec.snapshot.ok_or_else(|| {
                ReachError::NotSupported(format!("{txn} is not a read-only snapshot transaction"))
            })?
        };
        if let Some(dl) = self.locks.deadline_of(txn) {
            if std::time::Instant::now() >= dl {
                return Err(ReachError::DeadlineExceeded);
            }
        }
        if self.metrics.on() {
            self.metrics.txn.snapshot_reads.inc();
        }
        Ok(stamp)
    }

    /// Begin a closed nested subtransaction of `parent`.
    pub fn begin_nested(&self, parent: TxnId) -> Result<TxnId> {
        let top = {
            let mut txns = self.txns.lock();
            let rec = txns
                .get_mut(&parent)
                .ok_or(ReachError::TxnNotFound(parent))?;
            if rec.state != TxnState::Active && rec.state != TxnState::Committing {
                return Err(ReachError::TxnNotActive(parent));
            }
            if rec.snapshot.is_some() {
                return Err(ReachError::ReadOnlyTxn(parent));
            }
            rec.active_children += 1;
            rec.top
        };
        let savepoints: Vec<u64> = {
            let rms = Arc::clone(&self.resources.read());
            let mut sps = Vec::with_capacity(rms.len());
            for rm in rms.iter() {
                sps.push(rm.savepoint(top)?);
            }
            sps
        };
        let id: TxnId = self.ids.next();
        {
            let mut txns = self.txns.lock();
            txns.get_mut(&parent).unwrap().children.push(id);
            txns.insert(
                id,
                TxnRecord {
                    parent: Some(parent),
                    top,
                    state: TxnState::Active,
                    children: Vec::new(),
                    active_children: 0,
                    savepoints,
                    pre_commit: Vec::new(),
                    on_abort: Vec::new(),
                    on_commit: Vec::new(),
                    snapshot: None,
                },
            );
        }
        if self.metrics.on() {
            self.metrics.txn.begins.inc();
        }
        self.emit(TxnEventKind::Begin, id, Some(parent), top);
        Ok(id)
    }

    /// The current state of a transaction.
    pub fn state(&self, txn: TxnId) -> Result<TxnState> {
        self.txns
            .lock()
            .get(&txn)
            .map(|r| r.state)
            .ok_or(ReachError::TxnNotFound(txn))
    }

    /// Whether the transaction is active (or committing, or prepared —
    /// an in-doubt transaction still holds locks and is very much live).
    pub fn is_active(&self, txn: TxnId) -> bool {
        matches!(
            self.state(txn),
            Ok(TxnState::Active) | Ok(TxnState::Committing) | Ok(TxnState::Prepared)
        )
    }

    /// The enclosing top-level transaction.
    pub fn top_of(&self, txn: TxnId) -> Result<TxnId> {
        self.txns
            .lock()
            .get(&txn)
            .map(|r| r.top)
            .ok_or(ReachError::TxnNotFound(txn))
    }

    /// The ancestor chain (parent first, top-level last).
    pub fn ancestors(&self, txn: TxnId) -> Vec<TxnId> {
        let txns = self.txns.lock();
        let mut out = Vec::new();
        let mut cur = txns.get(&txn).and_then(|r| r.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = txns.get(&p).and_then(|r| r.parent);
        }
        out
    }

    // ---- hooks ----

    /// Queue work for the *top-level* pre-commit point (deferred rules).
    pub fn defer(&self, txn: TxnId, hook: Hook) -> Result<()> {
        let mut txns = self.txns.lock();
        let top = txns.get(&txn).ok_or(ReachError::TxnNotFound(txn))?.top;
        let rec = txns.get_mut(&top).ok_or(ReachError::TxnNotFound(top))?;
        if rec.state != TxnState::Active && rec.state != TxnState::Committing {
            return Err(ReachError::TxnNotActive(top));
        }
        rec.pre_commit.push(hook);
        Ok(())
    }

    /// Register a compensation to run if `txn` aborts.
    pub fn on_abort(&self, txn: TxnId, action: Action) -> Result<()> {
        let mut txns = self.txns.lock();
        let rec = txns.get_mut(&txn).ok_or(ReachError::TxnNotFound(txn))?;
        rec.on_abort.push(action);
        Ok(())
    }

    /// Register work to run after the top-level transaction commits.
    pub fn on_commit(&self, txn: TxnId, action: Action) -> Result<()> {
        let mut txns = self.txns.lock();
        let rec = txns.get_mut(&txn).ok_or(ReachError::TxnNotFound(txn))?;
        rec.on_commit.push(action);
        Ok(())
    }

    // ---- locking ----

    /// Acquire a lock honouring nested-transaction ancestry. Read-only
    /// snapshot transactions are refused: their whole point is zero
    /// lock-manager traffic, and silently taking a lock here would let
    /// one block behind a writer after all.
    pub fn lock(&self, txn: TxnId, oid: ObjectId, mode: LockMode) -> Result<()> {
        // One registry pass covers both the read-only check and the
        // ancestor chain — this runs on every object access, and paying
        // the registry mutex twice per call dominated the lock-grant
        // stage in the E15 profile.
        let ancestors = {
            let txns = self.txns.lock();
            match txns.get(&txn) {
                Some(rec) if rec.snapshot.is_some() => {
                    return Err(ReachError::ReadOnlyTxn(txn));
                }
                Some(rec) => {
                    let mut out = Vec::new();
                    let mut cur = rec.parent;
                    while let Some(p) = cur {
                        out.push(p);
                        cur = txns.get(&p).and_then(|r| r.parent);
                    }
                    out
                }
                None => Vec::new(),
            }
        };
        self.locks.acquire(txn, oid, mode, &ancestors)
    }

    /// Bound every lock wait `txn` makes from now on by an absolute
    /// deadline (`None` removes the bound). Used by the network server
    /// to propagate per-request deadlines into lock waits; cleared
    /// automatically when the transaction releases its locks.
    pub fn set_deadline(&self, txn: TxnId, deadline: Option<std::time::Instant>) {
        self.locks.set_deadline(txn, deadline);
    }

    // ---- commit / abort ----

    /// Commit a transaction. For subtransactions this transfers locks and
    /// obligations to the parent; for top-level transactions it runs the
    /// deferred queue, honours causal dependencies, makes effects durable
    /// and fires `Committed`.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let (parent, top, read_only) = {
            let txns = self.txns.lock();
            let rec = txns.get(&txn).ok_or(ReachError::TxnNotFound(txn))?;
            if rec.state != TxnState::Active {
                return Err(ReachError::TxnNotActive(txn));
            }
            if rec.active_children > 0 {
                return Err(ReachError::NestedViolation(format!(
                    "{txn} has {} active subtransactions",
                    rec.active_children
                )));
            }
            (rec.parent, rec.top, rec.snapshot.is_some())
        };
        if read_only {
            return self.finish_read_only(txn, true);
        }
        match parent {
            Some(p) => self.commit_child(txn, p, top),
            None => self.commit_top(txn),
        }
    }

    fn commit_child(&self, txn: TxnId, parent: TxnId, top: TxnId) -> Result<()> {
        {
            let mut txns = self.txns.lock();
            // Move obligations to the parent: if the parent later aborts,
            // this child's effects are rolled back with it (closed nested
            // semantics); its deferred/post-commit work runs with the top.
            let rec = txns.get_mut(&txn).unwrap();
            rec.state = TxnState::Committed;
            let on_abort = std::mem::take(&mut rec.on_abort);
            let on_commit = std::mem::take(&mut rec.on_commit);
            let pre_commit = std::mem::take(&mut rec.pre_commit);
            let prec = txns.get_mut(&parent).unwrap();
            prec.on_abort.extend(on_abort);
            prec.on_commit.extend(on_commit);
            prec.pre_commit.extend(pre_commit);
            prec.active_children -= 1;
        }
        self.locks.transfer(txn, parent);
        if self.metrics.on() {
            self.metrics.txn.commits.inc();
        }
        self.emit(TxnEventKind::Committed, txn, Some(parent), top);
        Ok(())
    }

    /// The shared front half of a top-level commit *and* of a 2PC
    /// prepare: state to Committing, pre-commit hooks drained, causal
    /// dependencies honoured. Any failure has already aborted the
    /// transaction when this returns `Err`.
    fn commit_prologue(&self, txn: TxnId) -> Result<()> {
        {
            let mut txns = self.txns.lock();
            txns.get_mut(&txn).unwrap().state = TxnState::Committing;
        }
        self.emit(TxnEventKind::PreCommit, txn, None, txn);
        // Drain the deferred queue; hooks may enqueue more (rule cascades)
        // and a failing hook aborts the transaction.
        loop {
            let hook = {
                let mut txns = self.txns.lock();
                let rec = txns.get_mut(&txn).unwrap();
                if rec.pre_commit.is_empty() {
                    None
                } else {
                    Some(rec.pre_commit.remove(0))
                }
            };
            let Some(hook) = hook else { break };
            if let Err(e) = hook() {
                self.abort(txn)?;
                return Err(e);
            }
        }
        // Causal dependencies (this transaction may itself be a detached
        // rule execution): wait for permission.
        match self.deps.wait(txn, self.dep_timeout) {
            Ok(Permission::Commit) => Ok(()),
            Ok(Permission::MustAbort) => {
                self.abort(txn)?;
                Err(ReachError::DependencyViolation(format!(
                    "{txn} aborted: causal dependency resolved against it"
                )))
            }
            Ok(Permission::Wait) => unreachable!("wait() never returns Wait"),
            Err(e) => {
                self.abort(txn)?;
                Err(e)
            }
        }
    }

    fn commit_top(&self, txn: TxnId) -> Result<()> {
        let commit_t0 = self.metrics.span_start();
        self.commit_prologue(txn)?;
        let rms = Arc::clone(&self.resources.read());
        for (i, rm) in rms.iter().enumerate() {
            if let Err(e) = rm.commit_top(txn) {
                // A resource manager refused durability (e.g. storage
                // failure): abort. RMs before `i` already made the
                // transaction durable on their side; they are asked to
                // abort too, which for the WAL-backed manager rolls the
                // logged effects back with compensation records.
                let _ = i;
                self.abort(txn)?;
                return Err(e);
            }
        }
        self.finish_commit_top(txn, commit_t0)
    }

    /// Two-phase commit, phase one. Runs the full commit prologue
    /// (pre-commit hooks, causal dependencies), then asks every
    /// resource manager to `prepare_top` — for the WAL-backed manager
    /// that write-backs the transaction's effects and force-logs a
    /// Prepare record. On success the transaction parks in
    /// [`TxnState::Prepared`]: its 2PL locks stay held and MVCC
    /// publication has *not* happened, so no reader can observe the
    /// in-doubt effects until [`Self::decide`] commits them. Any
    /// failure aborts the transaction (still unilateral before the
    /// prepare record is durable).
    pub fn prepare(&self, txn: TxnId, gid: u64) -> Result<()> {
        {
            let txns = self.txns.lock();
            let rec = txns.get(&txn).ok_or(ReachError::TxnNotFound(txn))?;
            if rec.state != TxnState::Active {
                return Err(ReachError::TxnNotActive(txn));
            }
            if rec.parent.is_some() {
                return Err(ReachError::NestedViolation(format!(
                    "{txn} is a subtransaction; only top-level transactions prepare"
                )));
            }
            if rec.active_children > 0 {
                return Err(ReachError::NestedViolation(format!(
                    "{txn} has {} active subtransactions",
                    rec.active_children
                )));
            }
            if rec.snapshot.is_some() {
                // Read-only snapshot transactions have nothing to
                // prepare; vote yes by committing locally right away.
                drop(txns);
                return self.finish_read_only(txn, true);
            }
        }
        self.commit_prologue(txn)?;
        let rms = Arc::clone(&self.resources.read());
        for rm in rms.iter() {
            if let Err(e) = rm.prepare_top(txn, gid) {
                self.abort(txn)?;
                return Err(e);
            }
        }
        let mut txns = self.txns.lock();
        txns.get_mut(&txn).unwrap().state = TxnState::Prepared;
        Ok(())
    }

    /// Two-phase commit, phase two: apply the coordinator's decision to
    /// a prepared transaction. A commit decision runs every resource
    /// manager's `commit_top` (which after a successful prepare must
    /// not fail; an error here is surfaced for retry, *not* turned into
    /// an abort — the decision is already durable at the coordinator)
    /// and then the normal commit epilogue: version publication, lock
    /// release, listeners, post-commit work. An abort decision is the
    /// ordinary abort path, which `TxnState::Prepared` deliberately
    /// does not block.
    pub fn decide(&self, txn: TxnId, commit: bool) -> Result<()> {
        {
            let txns = self.txns.lock();
            let rec = txns.get(&txn).ok_or(ReachError::TxnNotFound(txn))?;
            if rec.state != TxnState::Prepared {
                return Err(ReachError::TxnNotActive(txn));
            }
        }
        if !commit {
            return self.abort(txn);
        }
        let commit_t0 = self.metrics.span_start();
        {
            let mut txns = self.txns.lock();
            txns.get_mut(&txn).unwrap().state = TxnState::Committing;
        }
        let rms = Arc::clone(&self.resources.read());
        for rm in rms.iter() {
            if let Err(e) = rm.commit_top(txn) {
                // Re-park as Prepared so the caller can re-drive the
                // decision; aborting would contradict the coordinator.
                let mut txns = self.txns.lock();
                txns.get_mut(&txn).unwrap().state = TxnState::Prepared;
                return Err(e);
            }
        }
        self.finish_commit_top(txn, commit_t0)
    }

    /// The back half of a top-level commit, shared by the one-phase
    /// path and a 2PC commit decision: version publication, state to
    /// Committed, lock release, dependency bookkeeping, listeners and
    /// post-commit actions.
    fn finish_commit_top(&self, txn: TxnId, commit_t0: Option<std::time::Instant>) -> Result<()> {
        // Version publication: every resource manager has reported
        // durable and the 2PL locks are still held, so the write set is
        // stable and crash-proof. Publish the new versions first, then
        // advance the commit clock — a snapshot stamp is a plain load
        // of the clock, so no reader can ever adopt a stamp whose
        // versions are not yet fully in the store (publish-then-advance;
        // the DESIGN.md §4 visibility safety argument).
        {
            let publishers = Arc::clone(&self.publishers.read());
            let _gate = self.publish_gate.lock();
            let ts = self.commit_ts.load(Ordering::SeqCst) + 1;
            let mut published = 0usize;
            for p in publishers.iter() {
                published += p.publish(txn, ts);
            }
            self.commit_ts.store(ts, Ordering::SeqCst);
            if published > 0 && self.metrics.on() {
                self.metrics.txn.versions_published.add(published as u64);
            }
            // Writer-triggered vacuum backstop: snapshot-stamp release
            // is the primary GC trigger, but a write-heavy workload
            // that never begins a read-only transaction would grow
            // chains without bound. When any publisher's longest chain
            // exceeds the threshold, vacuum right here (the watermark
            // computation is snapshot-aware, so live readers still pin
            // whatever they need). The O(1) longest-chain poll keeps
            // the common commit path free of any GC cost.
            if published > 0
                && publishers
                    .iter()
                    .any(|p| p.longest_chain() > VACUUM_CHAIN_THRESHOLD)
            {
                drop(_gate);
                self.vacuum_versions();
            }
        }
        let on_commit = {
            let mut txns = self.txns.lock();
            let rec = txns.get_mut(&txn).unwrap();
            rec.state = TxnState::Committed;
            rec.on_abort.clear();
            std::mem::take(&mut rec.on_commit)
        };
        // Strict 2PL: locks are released only now, after every resource
        // manager reported durable — with group commit, after the group
        // force covering this transaction's commit record returned.
        // Releasing before that would let a reader see effects that a
        // crash could still roll back.
        self.locks.release_all(txn);
        self.deps.record(txn, Outcome::Committed);
        self.deps.forget_dependent(txn);
        if let Some(t0) = commit_t0 {
            self.metrics.txn.commits.inc();
            self.metrics
                .txn
                .commit_latency
                .record(t0.elapsed().as_nanos() as u64);
        }
        self.emit(TxnEventKind::Committed, txn, None, txn);
        for action in on_commit {
            action();
        }
        Ok(())
    }

    /// Abort a transaction (and, recursively, its active subtransactions).
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let (parent, top, state, read_only) = {
            let txns = self.txns.lock();
            let rec = txns.get(&txn).ok_or(ReachError::TxnNotFound(txn))?;
            (rec.parent, rec.top, rec.state, rec.snapshot.is_some())
        };
        if state == TxnState::Committed || state == TxnState::Aborted {
            return Err(ReachError::TxnNotActive(txn));
        }
        if read_only {
            return self.finish_read_only(txn, false);
        }
        // Abort active children first, deepest effects undone first.
        let children: Vec<TxnId> = {
            let txns = self.txns.lock();
            txns.get(&txn).unwrap().children.clone()
        };
        for c in children.into_iter().rev() {
            if self.is_active(c) {
                self.abort(c)?;
            }
        }
        let (on_abort, savepoints) = {
            let mut txns = self.txns.lock();
            let rec = txns.get_mut(&txn).unwrap();
            rec.state = TxnState::Aborted;
            rec.pre_commit.clear();
            rec.on_commit.clear();
            (
                std::mem::take(&mut rec.on_abort),
                std::mem::take(&mut rec.savepoints),
            )
        };
        for action in on_abort.into_iter().rev() {
            action();
        }
        let rms = Arc::clone(&self.resources.read());
        match parent {
            Some(p) => {
                // Subtransaction: roll the shared top-level back to the
                // savepoints taken at this child's begin.
                for (rm, sp) in rms.iter().zip(savepoints.iter()) {
                    rm.rollback_to(top, *sp)?;
                }
                self.locks.release_all(txn);
                let mut txns = self.txns.lock();
                if let Some(prec) = txns.get_mut(&p) {
                    prec.active_children = prec.active_children.saturating_sub(1);
                }
            }
            None => {
                for rm in rms.iter() {
                    rm.abort_top(txn)?;
                }
                self.locks.release_all(txn);
                self.deps.record(txn, Outcome::Aborted);
                self.deps.forget_dependent(txn);
            }
        }
        if self.metrics.on() {
            self.metrics.txn.aborts.inc();
        }
        self.emit(TxnEventKind::Aborted, txn, parent, top);
        Ok(())
    }

    /// End a read-only snapshot transaction. Commit and abort are the
    /// same operation apart from the recorded outcome and which hook
    /// list runs: there is nothing to make durable and no lock to
    /// release — only the snapshot registration to drop, which may
    /// advance the GC watermark and reclaim versions.
    fn finish_read_only(&self, txn: TxnId, commit: bool) -> Result<()> {
        let (stamp, hooks) = {
            let mut txns = self.txns.lock();
            let rec = txns.get_mut(&txn).ok_or(ReachError::TxnNotFound(txn))?;
            if rec.state != TxnState::Active {
                return Err(ReachError::TxnNotActive(txn));
            }
            let stamp = rec.snapshot.expect("caller routed a snapshot txn");
            rec.pre_commit.clear();
            let hooks = if commit {
                rec.state = TxnState::Committed;
                rec.on_abort.clear();
                std::mem::take(&mut rec.on_commit)
            } else {
                rec.state = TxnState::Aborted;
                rec.on_commit.clear();
                let mut a = std::mem::take(&mut rec.on_abort);
                a.reverse();
                a
            };
            (stamp, hooks)
        };
        // Clear any per-request deadline the server bound to this txn
        // (writers get this from release_all, which never runs here).
        self.locks.set_deadline(txn, None);
        self.snapshots.release(stamp);
        self.vacuum_versions();
        if self.metrics.on() {
            if commit {
                self.metrics.txn.commits.inc();
            } else {
                self.metrics.txn.aborts.inc();
            }
        }
        self.emit(
            if commit {
                TxnEventKind::Committed
            } else {
                TxnEventKind::Aborted
            },
            txn,
            None,
            txn,
        );
        for h in hooks {
            h();
        }
        Ok(())
    }

    /// Reclaim versions below the oldest live snapshot (or everything
    /// but the newest version per object when no snapshot is live).
    fn vacuum_versions(&self) {
        let publishers = Arc::clone(&self.publishers.read());
        if publishers.is_empty() {
            return;
        }
        // The watermark must be computed atomically with respect to
        // reader registration: `oldest()` and the `commit_ts + 1`
        // fallback read at different instants let a reader register an
        // *older* stamp in the gap (oldest() sees no reader, the clock
        // then advances, and the fallback produces a watermark above
        // the new reader's stamp) — and the vacuum would reclaim the
        // base version that reader resolves to. `begin_read_only`
        // registers stamps and committing writers advance the clock
        // under the publish gate, so holding it here makes the pair
        // (live-snapshot check, clock read) a consistent cut. The
        // reclaim itself can safely run outside the gate: the clock
        // only grows, so any later-registered stamp is >= watermark-1
        // and its base version (newest below the watermark) survives.
        let watermark = {
            let _gate = self.publish_gate.lock();
            self.snapshots
                .oldest()
                .unwrap_or_else(|| self.commit_ts.load(Ordering::SeqCst) + 1)
        };
        let mut reclaimed = 0usize;
        for p in publishers.iter() {
            reclaimed += p.vacuum(watermark);
        }
        if reclaimed > 0 && self.metrics.on() {
            self.metrics.txn.versions_reclaimed.add(reclaimed as u64);
        }
    }

    /// Number of transactions the manager has ever seen (introspection).
    pub fn known_count(&self) -> usize {
        self.txns.lock().len()
    }

    /// Every transaction the manager still tracks as live (top-level
    /// and nested), with its lifecycle state — the transaction-layer
    /// view a checkpoint or an operator dump pairs with the storage
    /// layer's active-writer table.
    pub fn active_snapshot(&self) -> Vec<(TxnId, TxnState)> {
        let txns = self.txns.lock();
        let mut out: Vec<(TxnId, TxnState)> = txns
            .iter()
            .filter(|(_, r)| {
                matches!(
                    r.state,
                    TxnState::Active | TxnState::Committing | TxnState::Prepared
                )
            })
            .map(|(id, r)| (*id, r.state))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Ids of all currently active top-level transactions.
    pub fn active_top_level(&self) -> Vec<TxnId> {
        let txns = self.txns.lock();
        let mut out: Vec<TxnId> = txns
            .iter()
            .filter(|(_, r)| {
                r.parent.is_none()
                    && matches!(
                        r.state,
                        TxnState::Active | TxnState::Committing | TxnState::Prepared
                    )
            })
            .map(|(id, _)| *id)
            .collect();
        out.sort();
        out
    }
}

impl std::fmt::Debug for TransactionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionManager")
            .field("known", &self.known_count())
            .field("active", &self.active_top_level())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_common::sync::Mutex as PMutex;

    fn manager() -> TransactionManager {
        TransactionManager::new(Arc::new(VirtualClock::new_virtual()))
    }

    #[test]
    fn top_level_lifecycle() {
        let tm = manager();
        let t = tm.begin().unwrap();
        assert_eq!(tm.state(t).unwrap(), TxnState::Active);
        tm.commit(t).unwrap();
        assert_eq!(tm.state(t).unwrap(), TxnState::Committed);
        assert!(tm.commit(t).is_err(), "double commit is rejected");
    }

    #[test]
    fn abort_runs_compensations_in_reverse() {
        let tm = manager();
        let order = Arc::new(PMutex::new(Vec::new()));
        let t = tm.begin().unwrap();
        for i in 0..3 {
            let order = Arc::clone(&order);
            tm.on_abort(t, Box::new(move || order.lock().push(i)))
                .unwrap();
        }
        tm.abort(t).unwrap();
        assert_eq!(*order.lock(), vec![2, 1, 0]);
    }

    #[test]
    fn commit_runs_deferred_hooks_and_cascades() {
        let tm = Arc::new(manager());
        let log = Arc::new(PMutex::new(Vec::new()));
        let t = tm.begin().unwrap();
        let log1 = Arc::clone(&log);
        let tm2 = Arc::clone(&tm);
        let log2 = Arc::clone(&log);
        tm.defer(
            t,
            Box::new(move || {
                log1.lock().push("first");
                // Cascade: a deferred hook enqueues another.
                tm2.defer(
                    t,
                    Box::new(move || {
                        log2.lock().push("cascaded");
                        Ok(())
                    }),
                )?;
                Ok(())
            }),
        )
        .unwrap();
        tm.commit(t).unwrap();
        assert_eq!(*log.lock(), vec!["first", "cascaded"]);
    }

    #[test]
    fn failing_deferred_hook_aborts_the_transaction() {
        let tm = manager();
        let t = tm.begin().unwrap();
        tm.defer(
            t,
            Box::new(|| Err(ReachError::RuleEvaluation("constraint violated".into()))),
        )
        .unwrap();
        assert!(tm.commit(t).is_err());
        assert_eq!(tm.state(t).unwrap(), TxnState::Aborted);
    }

    #[test]
    fn nested_commit_transfers_locks_to_parent() {
        let tm = manager();
        let parent = tm.begin().unwrap();
        let child = tm.begin_nested(parent).unwrap();
        tm.lock(child, ObjectId::new(1), LockMode::Exclusive)
            .unwrap();
        tm.commit(child).unwrap();
        assert_eq!(
            tm.locks().held_mode(parent, ObjectId::new(1)),
            Some(LockMode::Exclusive)
        );
        tm.commit(parent).unwrap();
        assert_eq!(tm.locks().held_mode(parent, ObjectId::new(1)), None);
    }

    #[test]
    fn child_can_lock_what_parent_holds() {
        let tm = manager();
        let parent = tm.begin().unwrap();
        tm.lock(parent, ObjectId::new(1), LockMode::Exclusive)
            .unwrap();
        let child = tm.begin_nested(parent).unwrap();
        tm.lock(child, ObjectId::new(1), LockMode::Exclusive)
            .unwrap();
        tm.commit(child).unwrap();
        tm.commit(parent).unwrap();
    }

    #[test]
    fn parent_commit_with_active_child_is_a_violation() {
        let tm = manager();
        let parent = tm.begin().unwrap();
        let _child = tm.begin_nested(parent).unwrap();
        assert!(matches!(
            tm.commit(parent),
            Err(ReachError::NestedViolation(_))
        ));
    }

    #[test]
    fn aborting_parent_aborts_active_children() {
        let tm = manager();
        let parent = tm.begin().unwrap();
        let child = tm.begin_nested(parent).unwrap();
        let grandchild = tm.begin_nested(child).unwrap();
        tm.abort(parent).unwrap();
        assert_eq!(tm.state(child).unwrap(), TxnState::Aborted);
        assert_eq!(tm.state(grandchild).unwrap(), TxnState::Aborted);
    }

    #[test]
    fn committed_child_obligations_move_to_parent() {
        let tm = manager();
        let hit = Arc::new(PMutex::new(false));
        let parent = tm.begin().unwrap();
        let child = tm.begin_nested(parent).unwrap();
        let hit2 = Arc::clone(&hit);
        tm.on_abort(child, Box::new(move || *hit2.lock() = true))
            .unwrap();
        tm.commit(child).unwrap();
        // Child committed, but the parent's abort must still undo it.
        tm.abort(parent).unwrap();
        assert!(*hit.lock(), "child compensation must run on parent abort");
    }

    #[test]
    fn dependency_must_abort_propagates() {
        let tm = manager();
        let trigger = tm.begin().unwrap();
        let dependent = tm.begin().unwrap();
        tm.dependencies()
            .add(dependent, crate::dependency::CommitRule::IfAborted(trigger));
        tm.commit(trigger).unwrap();
        // Exclusive mode: trigger committed, so the dependent must abort.
        assert!(tm.commit(dependent).is_err());
        assert_eq!(tm.state(dependent).unwrap(), TxnState::Aborted);
    }

    #[test]
    fn dependency_commit_allows() {
        let tm = manager();
        let trigger = tm.begin().unwrap();
        let dependent = tm.begin().unwrap();
        tm.dependencies().add(
            dependent,
            crate::dependency::CommitRule::IfCommitted(trigger),
        );
        tm.commit(trigger).unwrap();
        tm.commit(dependent).unwrap();
        assert_eq!(tm.state(dependent).unwrap(), TxnState::Committed);
    }

    #[test]
    fn listeners_see_the_full_event_sequence() {
        let tm = manager();
        #[derive(Default)]
        struct Rec(PMutex<Vec<(TxnEventKind, TxnId)>>);
        impl TxnListener for Rec {
            fn on_txn_event(&self, e: &TxnEvent) {
                self.0.lock().push((e.kind, e.txn));
            }
        }
        let rec = Arc::new(Rec::default());
        tm.add_listener(Arc::clone(&rec) as Arc<dyn TxnListener>);
        let t = tm.begin().unwrap();
        tm.commit(t).unwrap();
        let a = tm.begin().unwrap();
        tm.abort(a).unwrap();
        let events = rec.0.lock();
        assert_eq!(
            *events,
            vec![
                (TxnEventKind::Begin, t),
                (TxnEventKind::PreCommit, t),
                (TxnEventKind::Committed, t),
                (TxnEventKind::Begin, a),
                (TxnEventKind::Aborted, a),
            ]
        );
    }

    #[test]
    fn on_commit_actions_run_after_commit_only() {
        let tm = manager();
        let hits = Arc::new(PMutex::new(0));
        let t = tm.begin().unwrap();
        let h = Arc::clone(&hits);
        tm.on_commit(t, Box::new(move || *h.lock() += 1)).unwrap();
        let a = tm.begin().unwrap();
        let h = Arc::clone(&hits);
        tm.on_commit(a, Box::new(move || *h.lock() += 1)).unwrap();
        tm.abort(a).unwrap();
        assert_eq!(*hits.lock(), 0);
        tm.commit(t).unwrap();
        assert_eq!(*hits.lock(), 1);
    }

    #[test]
    fn resource_manager_sees_savepoint_rollback() {
        #[derive(Default)]
        struct Rm {
            log: PMutex<Vec<String>>,
        }
        impl ResourceManager for Rm {
            fn begin_top(&self, t: TxnId) -> Result<()> {
                self.log.lock().push(format!("begin {t}"));
                Ok(())
            }
            fn savepoint(&self, _t: TxnId) -> Result<u64> {
                self.log.lock().push("savepoint".into());
                Ok(42)
            }
            fn rollback_to(&self, _t: TxnId, sp: u64) -> Result<()> {
                self.log.lock().push(format!("rollback {sp}"));
                Ok(())
            }
            fn commit_top(&self, t: TxnId) -> Result<()> {
                self.log.lock().push(format!("commit {t}"));
                Ok(())
            }
            fn abort_top(&self, t: TxnId) -> Result<()> {
                self.log.lock().push(format!("abort {t}"));
                Ok(())
            }
        }
        let tm = manager();
        let rm = Arc::new(Rm::default());
        tm.add_resource_manager(Arc::clone(&rm) as Arc<dyn ResourceManager>);
        let t = tm.begin().unwrap();
        let c = tm.begin_nested(t).unwrap();
        tm.abort(c).unwrap();
        tm.commit(t).unwrap();
        assert_eq!(
            *rm.log.lock(),
            vec![
                format!("begin {t}"),
                "savepoint".to_string(),
                "rollback 42".to_string(),
                format!("commit {t}"),
            ]
        );
    }

    /// Locks must still be held while resource managers make the
    /// transaction durable (with group commit: while the group force is
    /// in flight) — releasing earlier would expose effects a crash
    /// could roll back. The probe RM checks from inside `commit_top`.
    #[test]
    fn locks_are_held_until_durability_returns() {
        struct ProbeRm {
            locks: PMutex<Option<Arc<LockManager>>>,
            oid: ObjectId,
            held_during_commit: PMutex<Option<bool>>,
        }
        impl ResourceManager for ProbeRm {
            fn begin_top(&self, _t: TxnId) -> Result<()> {
                Ok(())
            }
            fn savepoint(&self, _t: TxnId) -> Result<u64> {
                Ok(0)
            }
            fn rollback_to(&self, _t: TxnId, _sp: u64) -> Result<()> {
                Ok(())
            }
            fn commit_top(&self, t: TxnId) -> Result<()> {
                let lm = self.locks.lock().clone().unwrap();
                *self.held_during_commit.lock() = Some(lm.held_mode(t, self.oid).is_some());
                Ok(())
            }
            fn abort_top(&self, _t: TxnId) -> Result<()> {
                Ok(())
            }
        }
        let tm = manager();
        let rm = Arc::new(ProbeRm {
            locks: PMutex::new(Some(Arc::clone(tm.locks()))),
            oid: ObjectId::new(9),
            held_during_commit: PMutex::new(None),
        });
        tm.add_resource_manager(Arc::clone(&rm) as Arc<dyn ResourceManager>);
        let t = tm.begin().unwrap();
        tm.lock(t, ObjectId::new(9), LockMode::Exclusive).unwrap();
        tm.commit(t).unwrap();
        assert_eq!(
            *rm.held_during_commit.lock(),
            Some(true),
            "lock released before the resource manager finished durability"
        );
        // And released afterwards.
        assert_eq!(tm.locks().held_mode(t, ObjectId::new(9)), None);
    }

    /// A prepared transaction pins its locks until the coordinator's
    /// decision and is visible as live to introspection; a commit
    /// decision runs the full epilogue, an abort decision rolls back.
    #[test]
    fn prepared_transactions_pin_locks_until_decided() {
        #[derive(Default)]
        struct Rm {
            log: PMutex<Vec<String>>,
        }
        impl ResourceManager for Rm {
            fn begin_top(&self, _t: TxnId) -> Result<()> {
                Ok(())
            }
            fn savepoint(&self, _t: TxnId) -> Result<u64> {
                Ok(0)
            }
            fn rollback_to(&self, _t: TxnId, _sp: u64) -> Result<()> {
                Ok(())
            }
            fn commit_top(&self, _t: TxnId) -> Result<()> {
                self.log.lock().push("commit".into());
                Ok(())
            }
            fn abort_top(&self, _t: TxnId) -> Result<()> {
                self.log.lock().push("abort".into());
                Ok(())
            }
            fn prepare_top(&self, _t: TxnId, gid: u64) -> Result<()> {
                self.log.lock().push(format!("prepare {gid}"));
                Ok(())
            }
        }
        let tm = manager();
        let rm = Arc::new(Rm::default());
        tm.add_resource_manager(Arc::clone(&rm) as Arc<dyn ResourceManager>);

        let t = tm.begin().unwrap();
        let oid = ObjectId::new(77);
        tm.lock(t, oid, LockMode::Exclusive).unwrap();
        tm.prepare(t, 5).unwrap();
        assert_eq!(tm.state(t).unwrap(), TxnState::Prepared);
        assert!(tm.is_active(t));
        assert!(tm.active_top_level().contains(&t));
        // Locks stay pinned across the in-doubt window.
        assert!(tm.locks().held_mode(t, oid).is_some());
        // A second prepare or a plain commit is refused while in doubt.
        assert!(tm.prepare(t, 5).is_err());
        assert!(tm.commit(t).is_err());
        tm.decide(t, true).unwrap();
        assert_eq!(tm.state(t).unwrap(), TxnState::Committed);
        assert_eq!(tm.locks().held_mode(t, oid), None);
        assert_eq!(*rm.log.lock(), vec!["prepare 5", "commit"]);

        let a = tm.begin().unwrap();
        tm.lock(a, oid, LockMode::Exclusive).unwrap();
        tm.prepare(a, 6).unwrap();
        tm.decide(a, false).unwrap();
        assert_eq!(tm.state(a).unwrap(), TxnState::Aborted);
        assert_eq!(tm.locks().held_mode(a, oid), None);
        assert_eq!(
            *rm.log.lock(),
            vec!["prepare 5", "commit", "prepare 6", "abort"]
        );
    }

    #[test]
    fn active_top_level_lists_only_running_tops() {
        let tm = manager();
        let a = tm.begin().unwrap();
        let b = tm.begin().unwrap();
        let _child = tm.begin_nested(a).unwrap();
        assert_eq!(tm.active_top_level(), vec![a, b]);
        tm.commit(b).unwrap();
        assert_eq!(tm.active_top_level(), vec![a]);
    }

    // ---- MVCC snapshot transactions ----

    use crate::mvcc::{CommitTs, VersionPublisher, VersionStore};

    type StagedWrites = HashMap<TxnId, Vec<(ObjectId, Option<u64>)>>;

    /// A version publisher for tests: writers stage values, publication
    /// at commit moves them into the version store — the same shape the
    /// object layer's bridge has, minus the object space.
    struct TestPublisher {
        store: VersionStore<u64>,
        pending: PMutex<StagedWrites>,
    }

    impl TestPublisher {
        fn new() -> Arc<Self> {
            Arc::new(TestPublisher {
                store: VersionStore::new(),
                pending: PMutex::new(HashMap::new()),
            })
        }
        fn stage(&self, txn: TxnId, oid: ObjectId, val: Option<u64>) {
            self.pending.lock().entry(txn).or_default().push((oid, val));
        }
    }

    impl VersionPublisher for TestPublisher {
        fn publish(&self, txn: TxnId, ts: CommitTs) -> usize {
            let writes = self.pending.lock().remove(&txn).unwrap_or_default();
            let n = writes.len();
            for (oid, val) in writes {
                self.store.publish(oid, ts, val);
            }
            n
        }
        fn vacuum(&self, watermark: CommitTs) -> usize {
            self.store.vacuum(watermark)
        }
        fn longest_chain(&self) -> usize {
            self.store.longest_chain()
        }
    }

    fn write_and_commit(tm: &TransactionManager, p: &TestPublisher, oid: ObjectId, val: u64) {
        let t = tm.begin().unwrap();
        tm.lock(t, oid, LockMode::Exclusive).unwrap();
        p.stage(t, oid, Some(val));
        tm.commit(t).unwrap();
    }

    #[test]
    fn version_chains_stay_bounded_under_stamp_free_commits() {
        // Regression: vacuum used to run only on snapshot-stamp
        // release, so 10k commits with no read-only transaction ever
        // open grew the chain to 10k versions. The writer-path
        // threshold trigger must keep it bounded.
        let tm = manager();
        let p = TestPublisher::new();
        tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
        let oid = ObjectId::new(3);
        for v in 0..10_000u64 {
            write_and_commit(&tm, &p, oid, v);
        }
        let retained = p.store.versions_of(oid);
        assert!(
            retained <= VACUUM_CHAIN_THRESHOLD + 1,
            "chain must stay bounded without snapshot readers: {retained} versions retained"
        );
        assert!(p.store.longest_chain() <= VACUUM_CHAIN_THRESHOLD + 1);
        // The newest committed state is always preserved.
        assert_eq!(
            p.store
                .read_at(oid, tm.commit_stamp())
                .and_then(|v| v.payload),
            Some(9_999)
        );
        // A live snapshot still pins its base version across the
        // triggered vacuums that further commits produce.
        let reader = tm.begin_read_only().unwrap();
        let stamp = tm.snapshot_stamp(reader).unwrap();
        for v in 0..(2 * VACUUM_CHAIN_THRESHOLD as u64 + 10) {
            write_and_commit(&tm, &p, oid, 100_000 + v);
        }
        assert_eq!(
            p.store.read_at(oid, stamp).and_then(|v| v.payload),
            Some(9_999),
            "writer-triggered vacuum must never reclaim a pinned base"
        );
        tm.commit(reader).unwrap();
    }

    #[test]
    fn snapshot_reads_see_only_the_committed_prefix() {
        let tm = manager();
        let p = TestPublisher::new();
        tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
        let oid = ObjectId::new(1);
        write_and_commit(&tm, &p, oid, 10);
        let reader = tm.begin_read_only().unwrap();
        let stamp = tm.snapshot_stamp(reader).unwrap();
        // A later commit must stay invisible to the open snapshot.
        write_and_commit(&tm, &p, oid, 20);
        assert_eq!(
            p.store.read_at(oid, stamp).and_then(|v| v.payload),
            Some(10)
        );
        assert_eq!(tm.commit_stamp(), 2, "two commits advanced the clock");
        tm.commit(reader).unwrap();
        // A fresh snapshot adopts the newest published state.
        let reader2 = tm.begin_read_only().unwrap();
        let stamp2 = tm.snapshot_stamp(reader2).unwrap();
        assert_eq!(
            p.store.read_at(oid, stamp2).and_then(|v| v.payload),
            Some(20)
        );
        tm.commit(reader2).unwrap();
    }

    #[test]
    fn snapshot_reader_acquires_zero_locks_while_writer_holds_exclusive() {
        let metrics = MetricsRegistry::new_shared();
        metrics.enable();
        let tm = TransactionManager::with_metrics(
            Arc::new(VirtualClock::new_virtual()),
            metrics.clone(),
        );
        let p = TestPublisher::new();
        tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
        let oid = ObjectId::new(7);
        write_and_commit(&tm, &p, oid, 1);
        // A writer parks on an exclusive lock across the whole read.
        let writer = tm.begin().unwrap();
        tm.lock(writer, oid, LockMode::Exclusive).unwrap();
        let grants_before = metrics.txn.lock_acquisitions.get();
        let reader = tm.begin_read_only().unwrap();
        let stamp = tm.snapshot_stamp(reader).unwrap();
        assert_eq!(p.store.read_at(oid, stamp).and_then(|v| v.payload), Some(1));
        tm.commit(reader).unwrap();
        assert_eq!(
            metrics.txn.lock_acquisitions.get(),
            grants_before,
            "snapshot read went through the lock manager"
        );
        assert_eq!(metrics.txn.snapshot_begins.get(), 1);
        assert_eq!(metrics.txn.snapshot_reads.get(), 1);
        tm.abort(writer).unwrap();
    }

    #[test]
    fn expired_deadline_fails_snapshot_read_at_entry() {
        let tm = manager();
        let reader = tm.begin_read_only().unwrap();
        assert!(tm.snapshot_stamp(reader).is_ok());
        tm.set_deadline(
            reader,
            Some(std::time::Instant::now() - Duration::from_millis(1)),
        );
        assert!(
            matches!(tm.snapshot_stamp(reader), Err(ReachError::DeadlineExceeded)),
            "a lock-free read has no wait to interrupt; the entry check must fire"
        );
        // The transaction itself is still alive and can be finished.
        tm.abort(reader).unwrap();
    }

    #[test]
    fn read_only_txn_rejects_locks_and_subtransactions() {
        let tm = manager();
        let reader = tm.begin_read_only().unwrap();
        assert!(matches!(
            tm.lock(reader, ObjectId::new(1), LockMode::Exclusive),
            Err(ReachError::ReadOnlyTxn(t)) if t == reader
        ));
        assert!(matches!(
            tm.begin_nested(reader),
            Err(ReachError::ReadOnlyTxn(t)) if t == reader
        ));
        tm.commit(reader).unwrap();
    }

    #[test]
    fn live_snapshot_pins_versions_and_release_reclaims() {
        let tm = manager();
        let p = TestPublisher::new();
        tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
        let oid = ObjectId::new(3);
        write_and_commit(&tm, &p, oid, 1);
        let reader = tm.begin_read_only().unwrap();
        let stamp = tm.snapshot_stamp(reader).unwrap();
        write_and_commit(&tm, &p, oid, 2);
        write_and_commit(&tm, &p, oid, 3);
        assert_eq!(tm.live_snapshots(), 1);
        assert_eq!(
            p.store.versions_of(oid),
            3,
            "the open snapshot pins superseded versions"
        );
        assert_eq!(p.store.read_at(oid, stamp).and_then(|v| v.payload), Some(1));
        tm.commit(reader).unwrap();
        assert_eq!(tm.live_snapshots(), 0);
        assert_eq!(
            p.store.versions_of(oid),
            1,
            "last reader out triggers the vacuum down to the newest version"
        );
    }

    #[test]
    fn read_only_txns_never_reach_resource_managers() {
        struct CountingRm(PMutex<usize>);
        impl ResourceManager for CountingRm {
            fn begin_top(&self, _t: TxnId) -> Result<()> {
                *self.0.lock() += 1;
                Ok(())
            }
            fn savepoint(&self, _t: TxnId) -> Result<u64> {
                *self.0.lock() += 1;
                Ok(0)
            }
            fn rollback_to(&self, _t: TxnId, _sp: u64) -> Result<()> {
                *self.0.lock() += 1;
                Ok(())
            }
            fn commit_top(&self, _t: TxnId) -> Result<()> {
                *self.0.lock() += 1;
                Ok(())
            }
            fn abort_top(&self, _t: TxnId) -> Result<()> {
                *self.0.lock() += 1;
                Ok(())
            }
        }
        let tm = manager();
        let rm = Arc::new(CountingRm(PMutex::new(0)));
        tm.add_resource_manager(Arc::clone(&rm) as Arc<dyn ResourceManager>);
        let r1 = tm.begin_read_only().unwrap();
        let r2 = tm.begin_read_only().unwrap();
        tm.commit(r1).unwrap();
        tm.abort(r2).unwrap();
        assert_eq!(
            *rm.0.lock(),
            0,
            "snapshot txns have nothing to make durable"
        );
    }

    #[test]
    fn snapshot_commit_runs_on_commit_hooks() {
        let tm = manager();
        let ran = Arc::new(PMutex::new(false));
        let r = tm.begin_read_only().unwrap();
        let flag = Arc::clone(&ran);
        tm.on_commit(r, Box::new(move || *flag.lock() = true))
            .unwrap();
        tm.commit(r).unwrap();
        assert!(*ran.lock());
    }
}
