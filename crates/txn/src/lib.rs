//! `reach-txn` — the transaction manager REACH needed and the closed
//! commercial systems would not give it (§4).
//!
//! The paper's execution model (§3.2) requires, beyond flat ACID
//! transactions:
//!
//! * **closed nested transactions** — immediate- and deferred-coupled
//!   rules run as (sibling) subtransactions of the triggering
//!   transaction, so parallel rule execution needs children whose
//!   effects and locks are inherited by the parent on commit
//!   ([`manager`]);
//! * **spawning new top-level transactions** — the detached coupling
//!   modes fork independent transactions ([`manager`]);
//! * **commit/abort dependencies** — parallel causally dependent rules
//!   may commit only if the trigger commits; sequential ones may only
//!   *start* after it commits; exclusive ones may commit only if it
//!   aborts ([`dependency`]);
//! * **access to transaction-manager information** — ids, states,
//!   commit and abort signals as subscribable flow-control events
//!   ([`events`]), and resource (lock) transfer between transactions
//!   ([`locks`]) for the exclusive mode;
//! * **strict two-phase locking** with deadlock detection ([`locks`],
//!   [`deadlock`]) for writers, and **multi-version snapshot reads**
//!   for read-only transactions ([`mvcc`]) — readers capture a commit
//!   stamp at begin and never touch the lock manager at all;
//! * **correctness oracles** that check both protocols from the
//!   outside: conflict-graph serializability for the 2PL path and
//!   snapshot consistency for the MVCC path ([`serial`]).

#![warn(missing_docs)]

pub mod deadlock;
pub mod dependency;
pub mod events;
pub mod locks;
pub mod manager;
pub mod mvcc;
pub mod serial;

pub use dependency::{CommitRule, DependencyGraph, Outcome};
pub use events::{TxnEvent, TxnEventKind, TxnListener};
pub use locks::{LockManager, LockMode};
pub use manager::{ResourceManager, TransactionManager, TxnState};
pub use mvcc::{CommitTs, SnapshotRegistry, Version, VersionPublisher, VersionStore};
pub use serial::{
    Access, AccessKind, History, MvccStats, MvccWorkloadCfg, Recorder, SiTxn, SnapshotHistory,
    SnapshotRead, SnapshotRun, TxnRun, WriterCommit,
};
