//! Waits-for graph and cycle detection.
//!
//! The lock manager records "T waits for U" edges while a request is
//! queued and checks for a cycle through the requester before blocking.
//! If one exists the requester is the victim (simplest deterministic
//! policy — the newest participant is always the one that closed the
//! cycle).

use reach_common::TxnId;
use std::collections::{HashMap, HashSet};

/// A waits-for graph over transactions.
#[derive(Debug, Default)]
pub struct WaitsFor {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitsFor {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `waiter` waits for each of `holders`.
    pub fn add(&mut self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let set = self.edges.entry(waiter).or_default();
        for h in holders {
            if h != waiter {
                set.insert(h);
            }
        }
    }

    /// Replace `waiter`'s outgoing edges with exactly `holders` — the
    /// *current* conflict set. `add` alone accumulates edges across
    /// retry passes, leaving phantom edges to holders that already
    /// released; a later wait by such an ex-holder would then close a
    /// cycle that does not exist.
    pub fn set(&mut self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        self.edges.remove(&waiter);
        self.add(waiter, holders);
    }

    /// Remove all edges out of `waiter` (its request was granted or
    /// cancelled).
    pub fn clear(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Remove `txn` entirely (it finished; nobody can wait for it and it
    /// waits for nobody).
    pub fn remove(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for set in self.edges.values_mut() {
            set.remove(&txn);
        }
    }

    /// Whether a cycle through `start` exists (depth-first search).
    pub fn has_cycle_through(&self, start: TxnId) -> bool {
        let mut stack: Vec<TxnId> = self
            .edges
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Number of waiting transactions (introspection).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no transaction is waiting.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn no_cycle_in_a_chain() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(2)]);
        g.add(t(2), [t(3)]);
        assert!(!g.has_cycle_through(t(1)));
        assert!(!g.has_cycle_through(t(3)));
    }

    #[test]
    fn two_party_cycle_is_found() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(2)]);
        g.add(t(2), [t(1)]);
        assert!(g.has_cycle_through(t(1)));
        assert!(g.has_cycle_through(t(2)));
    }

    #[test]
    fn three_party_cycle_is_found() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(2)]);
        g.add(t(2), [t(3)]);
        g.add(t(3), [t(1)]);
        assert!(g.has_cycle_through(t(1)));
    }

    #[test]
    fn clearing_the_waiter_breaks_the_cycle() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(2)]);
        g.add(t(2), [t(1)]);
        g.clear(t(2));
        assert!(!g.has_cycle_through(t(1)));
    }

    #[test]
    fn removing_a_txn_removes_inbound_edges() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(2)]);
        g.add(t(2), [t(1)]);
        g.remove(t(1));
        assert!(!g.has_cycle_through(t(2)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn set_replaces_previous_edges() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(2), t(3)]);
        g.set(t(1), [t(3)]);
        // The stale edge to t(2) is gone: t(2) waiting on t(1) is a
        // chain, not a cycle.
        g.add(t(2), [t(1)]);
        assert!(!g.has_cycle_through(t(2)));
        // The kept edge still participates in real cycles.
        g.add(t(3), [t(1)]);
        assert!(g.has_cycle_through(t(3)));
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = WaitsFor::new();
        g.add(t(1), [t(1)]);
        assert!(!g.has_cycle_through(t(1)));
    }
}
