//! Lock-manager regressions under perturbed schedules: deadlock
//! detection with real thread races, shared→exclusive upgrades, and
//! wait-timeout behaviour under continuous lock churn. These are the
//! integration-level companions to the unit tests in `locks.rs` — the
//! schedule perturber makes the races they aim at actually happen.

use reach_common::sync::sched;
use reach_common::{announce_seed, seed_from_env, ObjectId, ReachError, TxnId};
use reach_txn::{LockManager, LockMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn t(n: u64) -> TxnId {
    TxnId::new(n)
}
fn o(n: u64) -> ObjectId {
    ObjectId::new(n)
}

/// N threads each take their home object exclusively, rendezvous, then
/// request their neighbour's — a guaranteed wait cycle. Deadlock
/// detection must pick at least one victim and every survivor must get
/// through once the victims release; nothing may hang or time out.
#[test]
fn ring_deadlock_always_gets_a_victim_under_perturbation() {
    let base = seed_from_env(0xDEAD);
    for i in 0..8u64 {
        let seed = base.wrapping_add(i);
        announce_seed("locks_stress::ring_deadlock", seed);
        let ((), _) = sched::run_seeded(seed, || {
            const N: u64 = 3;
            let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(10)));
            let barrier = Arc::new(Barrier::new(N as usize));
            let victims = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..N)
                .map(|k| {
                    let lm = Arc::clone(&lm);
                    let barrier = Arc::clone(&barrier);
                    let victims = Arc::clone(&victims);
                    std::thread::spawn(move || {
                        sched::register_thread(k);
                        let me = t(k + 1);
                        lm.acquire(me, o(k + 1), LockMode::Exclusive, &[]).unwrap();
                        barrier.wait();
                        match lm.acquire(me, o((k + 1) % N + 1), LockMode::Exclusive, &[]) {
                            Ok(()) => lm.release_all(me),
                            Err(ReachError::Deadlock(victim)) => {
                                assert_eq!(victim, me, "victim must be the requester");
                                victims.fetch_add(1, Ordering::SeqCst);
                                lm.release_all(me);
                            }
                            Err(e) => panic!("expected grant or deadlock, got {e:?}"),
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let v = victims.load(Ordering::SeqCst);
            assert!(
                (1..N).contains(&v),
                "ring of {N} needs 1..{N} victims, got {v}"
            );
        });
    }
}

/// Upgrade deadlock: two transactions both hold shared and both request
/// exclusive on the same object. Neither upgrade can ever be granted
/// while the other's shared hold exists, so detection must abort one;
/// the other must then complete its upgrade.
#[test]
fn concurrent_upgrade_deadlock_is_broken() {
    let base = seed_from_env(0x06AD);
    for i in 0..8u64 {
        let seed = base.wrapping_add(i);
        announce_seed("locks_stress::upgrade_deadlock", seed);
        sched::run_seeded(seed, || {
            let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(10)));
            lm.acquire(t(1), o(1), LockMode::Shared, &[]).unwrap();
            lm.acquire(t(2), o(1), LockMode::Shared, &[]).unwrap();
            let barrier = Arc::new(Barrier::new(2));
            let handles: Vec<_> = [t(1), t(2)]
                .into_iter()
                .enumerate()
                .map(|(k, me)| {
                    let lm = Arc::clone(&lm);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        sched::register_thread(k as u64);
                        barrier.wait();
                        match lm.acquire(me, o(1), LockMode::Exclusive, &[]) {
                            Ok(()) => {
                                assert_eq!(lm.held_mode(me, o(1)), Some(LockMode::Exclusive));
                                lm.release_all(me);
                                false
                            }
                            Err(ReachError::Deadlock(v)) => {
                                assert_eq!(v, me);
                                lm.release_all(me);
                                true
                            }
                            Err(e) => panic!("expected upgrade or deadlock, got {e:?}"),
                        }
                    })
                })
                .collect();
            let victims = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&was_victim| was_victim)
                .count();
            assert_eq!(
                victims, 1,
                "exactly one upgrader must be the deadlock victim"
            );
        });
    }
}

/// Wait-timeout under churn: a permanent shared holder plus churning
/// shared lockers keep an exclusive request permanently blocked. The
/// absolute-deadline patience must fire close to the configured
/// timeout regardless of how many wakeups the churn causes — and the
/// perturber makes the wakeup pattern different every seed.
#[test]
fn timeout_under_churn_fires_on_schedule() {
    let base = seed_from_env(0x71E0);
    for i in 0..4u64 {
        let seed = base.wrapping_add(i);
        announce_seed("locks_stress::timeout_churn", seed);
        sched::run_seeded(seed, || {
            let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(150)));
            lm.acquire(t(100), o(1), LockMode::Shared, &[]).unwrap();
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let churners: Vec<_> = (0..2u64)
                .map(|k| {
                    let lm = Arc::clone(&lm);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        sched::register_thread(10 + k);
                        let me = t(200 + k);
                        while !stop.load(Ordering::Relaxed) {
                            lm.acquire(me, o(1), LockMode::Shared, &[]).unwrap();
                            lm.release_all(me);
                        }
                    })
                })
                .collect();
            let t0 = std::time::Instant::now();
            let err = lm
                .acquire(t(1), o(1), LockMode::Exclusive, &[])
                .unwrap_err();
            let waited = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            for h in churners {
                h.join().unwrap();
            }
            assert_eq!(err, ReachError::LockTimeout(t(1)));
            assert!(
                waited >= Duration::from_millis(140),
                "gave up too early: {waited:?}"
            );
            assert!(
                waited < Duration::from_secs(3),
                "patience re-armed under churn: {waited:?}"
            );
        });
    }
}
