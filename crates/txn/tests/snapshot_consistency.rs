//! Snapshot-consistency oracle over perturbed concurrent schedules.
//!
//! MVCC's promise is narrower than serializability but absolute: a
//! read-only transaction sees *exactly* the committed prefix at its
//! stamp — never a later commit, never half of one — while acquiring
//! zero locks. These tests drive mixed writer/snapshot workloads under
//! the seeded schedule perturber and replay every reader's observations
//! against the independent commits log (`SnapshotHistory`), and pin the
//! GC watermark behaviour at the boundaries: a live snapshot holds
//! history, the last release reclaims it.

use reach_common::sync::sched;
use reach_common::{announce_seed, seed_from_env, ObjectId, VirtualClock};
use reach_txn::serial::{run_mvcc_workload, MvccWorkloadCfg};
use reach_txn::{CommitTs, TransactionManager, VersionPublisher, VersionStore};
use std::sync::{Arc, Mutex as StdMutex};

/// The acceptance-criteria sweep: 64 seeded schedules, strict-2PL
/// writers churning against lock-free snapshot readers, every reader
/// checked for a consistent committed prefix and the whole run checked
/// for zero reader lock acquisitions.
#[test]
fn mvcc_histories_are_snapshot_consistent_across_seed_matrix() {
    let base = seed_from_env(0x5EED_CAFE);
    let mut snapshot_reads_total = 0;
    let mut committed_total = 0;
    for i in 0..64u64 {
        let seed = base.wrapping_add(i);
        announce_seed("snapshot_consistency::matrix", seed);
        let ((history, stats), _trace) =
            sched::run_seeded(seed, || run_mvcc_workload(seed, MvccWorkloadCfg::default()));
        committed_total += stats.committed_writers;
        snapshot_reads_total += stats.snapshot_reads;
        if let Some(v) = history.snapshot_violation() {
            panic!(
                "seed {seed:#x}: snapshot violation: {v} (committed={} snapshots={})",
                stats.committed_writers, stats.snapshots
            );
        }
        assert_eq!(
            stats.metered_lock_grants,
            stats.writer_lock_grants,
            "seed {seed:#x}: snapshot readers acquired \
             {} lock(s); readers must never block or be blocked",
            stats.metered_lock_grants - stats.writer_lock_grants
        );
    }
    assert!(
        committed_total > 64 && snapshot_reads_total > 256,
        "matrix barely did anything (committed={committed_total}, \
         reads={snapshot_reads_total}); workload broken?"
    );
}

/// High-contention variant: writers hammering 2 objects while readers
/// sweep them — maximum publish/read interleaving pressure on the
/// baseline-seeding and publish-then-advance paths.
#[test]
fn hot_spot_snapshots_stay_consistent() {
    let base = seed_from_env(0x5EED_F00D);
    for i in 0..16u64 {
        let seed = base.wrapping_add(i);
        announce_seed("snapshot_consistency::hot_spot", seed);
        let cfg = MvccWorkloadCfg {
            writers: 4,
            readers: 4,
            txns_per_writer: 8,
            writes_per_txn: 2,
            snapshots_per_reader: 8,
            reads_per_snapshot: 2,
            objects: 2,
        };
        let ((history, stats), _) = sched::run_seeded(seed, || run_mvcc_workload(seed, cfg));
        assert!(
            stats.committed_writers > 0,
            "seed {seed:#x}: hot spot starved all writers"
        );
        assert_eq!(
            history.snapshot_violation(),
            None,
            "seed {seed:#x}: hot-spot snapshot violation"
        );
        assert_eq!(stats.metered_lock_grants, stats.writer_lock_grants);
    }
}

/// A minimal publisher over a bare `VersionStore`, for driving the GC
/// watermark through the real manager: each commit publishes one
/// pre-staged `(oid, value)`.
struct OneShot {
    store: VersionStore<u64>,
    staged: StdMutex<Vec<(reach_common::TxnId, ObjectId, u64)>>,
}

impl VersionPublisher for OneShot {
    fn publish(&self, txn: reach_common::TxnId, ts: CommitTs) -> usize {
        let mut staged = self.staged.lock().unwrap();
        let mut n = 0;
        staged.retain(|(t, oid, v)| {
            if *t == txn {
                self.store.publish(*oid, ts, Some(*v));
                n += 1;
                false
            } else {
                true
            }
        });
        n
    }

    fn vacuum(&self, watermark: CommitTs) -> usize {
        self.store.vacuum(watermark)
    }
}

fn commit_write(tm: &TransactionManager, p: &OneShot, oid: ObjectId, v: u64) {
    let txn = tm.begin().unwrap();
    tm.lock(txn, oid, reach_txn::LockMode::Exclusive).unwrap();
    p.staged.lock().unwrap().push((txn, oid, v));
    tm.commit(txn).unwrap();
}

/// GC boundary: a live snapshot pins every version it can see; commits
/// stacked on top do not grow garbage past the pin; releasing the
/// *last* reader reclaims everything below the new watermark in one
/// sweep.
#[test]
fn live_snapshot_pins_history_and_last_release_reclaims() {
    let tm = TransactionManager::new(Arc::new(VirtualClock::new_virtual()));
    let p = Arc::new(OneShot {
        store: VersionStore::new(),
        staged: StdMutex::new(Vec::new()),
    });
    tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
    let oid = ObjectId::new(1);

    commit_write(&tm, &p, oid, 10);
    let old = tm.begin_read_only().unwrap();
    let stamp = tm.snapshot_stamp(old).unwrap();

    // Five more commits while the old snapshot is live: its version
    // must survive every post-commit vacuum.
    for v in 11..16 {
        commit_write(&tm, &p, oid, v);
        assert_eq!(
            p.store.read_at(oid, stamp).and_then(|v| v.payload),
            Some(10),
            "pinned version reclaimed while its reader is live"
        );
    }
    assert_eq!(p.store.versions_of(oid), 6);

    // A second, newer reader: releasing the *old* one must not let GC
    // jump past the newer stamp.
    let newer = tm.begin_read_only().unwrap();
    let newer_stamp = tm.snapshot_stamp(newer).unwrap();
    tm.commit(old).unwrap();
    assert_eq!(
        p.store.read_at(oid, newer_stamp).and_then(|v| v.payload),
        Some(15),
        "newer snapshot lost its version when the older reader left"
    );

    // Last reader out: watermark jumps to clock+1, one version (the
    // newest) survives.
    tm.commit(newer).unwrap();
    assert_eq!(p.store.versions_of(oid), 1);
    assert_eq!(
        p.store.read_at(oid, newer_stamp).and_then(|v| v.payload),
        Some(15),
        "newest committed version must always survive vacuum"
    );
}

/// Re-registering at the same stamp (two readers sharing a snapshot)
/// must hold the pin until *both* release.
#[test]
fn shared_stamp_released_only_when_both_readers_finish() {
    let tm = TransactionManager::new(Arc::new(VirtualClock::new_virtual()));
    let p = Arc::new(OneShot {
        store: VersionStore::new(),
        staged: StdMutex::new(Vec::new()),
    });
    tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
    let oid = ObjectId::new(7);

    commit_write(&tm, &p, oid, 1);
    let a = tm.begin_read_only().unwrap();
    let b = tm.begin_read_only().unwrap();
    let stamp = tm.snapshot_stamp(a).unwrap();
    assert_eq!(stamp, tm.snapshot_stamp(b).unwrap(), "same stamp expected");

    commit_write(&tm, &p, oid, 2);
    tm.abort(a).unwrap(); // snapshot abort == commit: just a release
    assert_eq!(
        p.store.read_at(oid, stamp).and_then(|v| v.payload),
        Some(1),
        "stamp still pinned by reader b"
    );
    tm.commit(b).unwrap();
    assert_eq!(p.store.versions_of(oid), 1);
}
