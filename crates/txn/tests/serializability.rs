//! Serializability oracle over perturbed concurrent schedules.
//!
//! Every committed history a strict-2PL lock manager admits must be
//! conflict-serializable. These tests drive randomized workloads under
//! the seeded schedule perturber and feed the recorded histories to the
//! conflict-graph checker; a cycle is a 2PL hole plus the seed to
//! replay it.

use reach_common::sync::sched;
use reach_common::VirtualClock;
use reach_common::{announce_seed, seed_from_env, ObjectId, ReachError, TxnId};
use reach_txn::manager::ResourceManager;
use reach_txn::serial::{run_lock_workload, Access, AccessKind, Recorder, TxnRun, WorkloadCfg};
use reach_txn::{LockMode, TransactionManager};
use std::collections::HashMap;
use std::sync::{Arc, Mutex as StdMutex};

/// The acceptance-criteria sweep: ≥ 64 seeded schedules, each one a
/// perturbed concurrent workload straight against the lock manager,
/// each history checked for conflict-serializability.
#[test]
fn lock_manager_histories_are_serializable_across_seed_matrix() {
    let base = seed_from_env(0xC0FFEE);
    let mut committed_total = 0;
    for i in 0..64u64 {
        let seed = base.wrapping_add(i);
        announce_seed("serializability::matrix", seed);
        let ((history, stats), _trace) =
            sched::run_seeded(seed, || run_lock_workload(seed, WorkloadCfg::default()));
        committed_total += stats.committed;
        if let Some(cycle) = history.conflict_cycle() {
            panic!(
                "seed {seed:#x}: non-serializable committed history, cycle {cycle:?} \
                 (committed={} deadlocks={} timeouts={})",
                stats.committed, stats.deadlocks, stats.timeouts
            );
        }
    }
    assert!(
        committed_total > 64,
        "matrix barely committed anything ({committed_total}); workload broken?"
    );
}

/// High-contention variant: 2 objects, all writes — maximum cycle
/// pressure, lots of deadlock victims; the survivors must still be
/// serializable.
#[test]
fn all_write_hot_spot_stays_serializable() {
    let base = seed_from_env(0xBEEF);
    for i in 0..16u64 {
        let seed = base.wrapping_add(i);
        announce_seed("serializability::hot_spot", seed);
        let cfg = WorkloadCfg {
            threads: 4,
            txns_per_thread: 8,
            objects: 2,
            ops_per_txn: 3,
            write_pct: 100,
        };
        let ((history, stats), _) = sched::run_seeded(seed, || run_lock_workload(seed, cfg));
        assert!(
            stats.committed > 0,
            "seed {seed:#x}: hot spot starved everything out"
        );
        assert_eq!(
            history.conflict_cycle(),
            None,
            "seed {seed:#x}: cycle in hot-spot history"
        );
    }
}

/// A resource manager that stamps the commit sequence from *inside*
/// `commit_top` — i.e. provably while the transaction still holds its
/// locks (see `locks_are_held_until_durability_returns` in manager.rs).
struct StampingRm {
    rec: Arc<Recorder>,
    pending: StdMutex<HashMap<TxnId, Vec<Access>>>,
}

impl StampingRm {
    fn record_access(&self, txn: TxnId, access: Access) {
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(txn)
            .or_default()
            .push(access);
    }
}

impl ResourceManager for StampingRm {
    fn begin_top(&self, _t: TxnId) -> reach_common::Result<()> {
        Ok(())
    }
    fn savepoint(&self, _t: TxnId) -> reach_common::Result<u64> {
        Ok(0)
    }
    fn rollback_to(&self, _t: TxnId, _sp: u64) -> reach_common::Result<()> {
        Ok(())
    }
    fn commit_top(&self, txn: TxnId) -> reach_common::Result<()> {
        let accesses = self
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&txn)
            .unwrap_or_default();
        let commit_seq = self.rec.stamp();
        self.rec.commit(TxnRun {
            txn,
            accesses,
            commit_seq,
        });
        Ok(())
    }
    fn abort_top(&self, txn: TxnId) -> reach_common::Result<()> {
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&txn);
        Ok(())
    }
}

/// End-to-end variant through the TransactionManager: locks taken via
/// `tm.lock`, commits via `tm.commit` (deferred hooks, dependency wait,
/// resource managers, strict release order) — the committed history the
/// full commit protocol produces must be serializable too.
#[test]
fn transaction_manager_histories_are_serializable() {
    let base = seed_from_env(0x7A11);
    for i in 0..8u64 {
        let seed = base.wrapping_add(i);
        announce_seed("serializability::txn_manager", seed);
        let (cycle, committed) = sched::run_seeded(seed, || {
            let tm = Arc::new(TransactionManager::new(Arc::new(
                VirtualClock::new_virtual(),
            )));
            let rec = Arc::new(Recorder::new());
            let rm = Arc::new(StampingRm {
                rec: Arc::clone(&rec),
                pending: StdMutex::new(HashMap::new()),
            });
            tm.add_resource_manager(Arc::clone(&rm) as Arc<dyn ResourceManager>);
            let mut root = reach_common::SplitMix64::new(seed);
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let tm = Arc::clone(&tm);
                    let rm = Arc::clone(&rm);
                    let rec = Arc::clone(&rec);
                    let mut rng = root.fork(t + 1);
                    std::thread::spawn(move || {
                        sched::register_thread(t);
                        let mut committed = 0u64;
                        for _ in 0..8 {
                            let txn = tm.begin().unwrap();
                            let mut aborted = false;
                            for _ in 0..4 {
                                let oid = ObjectId::new(1 + rng.below(5) as u64);
                                let write = rng.chance(60, 100);
                                let mode = if write {
                                    LockMode::Exclusive
                                } else {
                                    LockMode::Shared
                                };
                                match tm.lock(txn, oid, mode) {
                                    Ok(()) => rm.record_access(
                                        txn,
                                        Access {
                                            oid,
                                            kind: if write {
                                                AccessKind::Write
                                            } else {
                                                AccessKind::Read
                                            },
                                            seq: rec.stamp(),
                                        },
                                    ),
                                    Err(ReachError::Deadlock(_) | ReachError::LockTimeout(_)) => {
                                        tm.abort(txn).unwrap();
                                        aborted = true;
                                        break;
                                    }
                                    Err(e) => panic!("unexpected lock error: {e:?}"),
                                }
                            }
                            if !aborted {
                                tm.commit(txn).unwrap();
                                committed += 1;
                            }
                        }
                        committed
                    })
                })
                .collect();
            let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            let history = rec.snapshot();
            (history.conflict_cycle(), committed)
        })
        .0;
        assert!(committed > 0, "seed {seed:#x}: nothing committed");
        assert_eq!(
            cycle, None,
            "seed {seed:#x}: TM history has cycle {cycle:?}"
        );
    }
}
