//! `reach-layered` — the architecture the paper tried first and
//! abandoned (§4): active capabilities layered *on top of* a closed
//! commercial OODBMS.
//!
//! The crate has two halves:
//!
//! * [`closed`] — a facade that makes our own OODB *closed*: it exposes
//!   only what O2/ObjectStore exposed to the REACH group. No dispatcher
//!   hooks, no state-change sentries, no transaction-manager internals,
//!   no nested transactions, no commit/abort redefinition. (The
//!   capabilities are physically present underneath — the facade simply
//!   does not hand them out, which is precisely the situation §4
//!   describes: "we had licenses but no source code".)
//! * [`layer`] — the active layer built against that facade, using the
//!   only techniques available to a layered integrator:
//!   - **method events** via a *parallel class hierarchy* of wrapper
//!     subclasses ("requires redefinition of all the classes for which
//!     method invocations generate events ... a parallel class hierarchy
//!     of active classes that must be maintained by the application
//!     programmer");
//!   - **state-change events** via *polling snapshots* (value changes
//!     "could not be detected as events" — a poller is the best a layer
//!     can do, and experiment E7 measures what that costs);
//!   - **rule execution** restricted to serial immediate execution in
//!     the *same flat transaction* ("without a nested transaction model
//!     only serial execution of triggered rules is possible") and
//!     detached execution *without* causal dependencies (no access to
//!     commit/abort signals);
//!   - **deferred rules** only by application convention: the app must
//!     remember to call [`layer::LayeredLayer::before_commit`] — there
//!     is no hook to attach to.
//!
//! [`capabilities`] tabulates, feature by feature, what the layered
//! architecture can and cannot provide — the qualitative half of E7.

pub mod closed;
pub mod layer;

pub use closed::ClosedOodb;
pub use layer::{LayeredLayer, LayeredRule};

/// One row of the layered-vs-integrated capability matrix (E7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capability {
    pub feature: &'static str,
    pub layered: bool,
    pub integrated: bool,
    pub note: &'static str,
}

/// The capability matrix of §4, as data.
pub fn capabilities() -> Vec<Capability> {
    vec![
        Capability {
            feature: "method events (transparent)",
            layered: false,
            integrated: true,
            note: "layer needs a parallel hierarchy of wrapper classes the application must instantiate",
        },
        Capability {
            feature: "method events (wrapper subclass)",
            layered: true,
            integrated: true,
            note: "works, but misses calls on original classes and system-provided classes",
        },
        Capability {
            feature: "state-change events",
            layered: false,
            integrated: true,
            note: "value changes happen below the layer; polling approximates them with latency and O(n) cost",
        },
        Capability {
            feature: "nested transactions / parallel rules",
            layered: false,
            integrated: true,
            note: "closed systems offered flat transactions; rules share the trigger's transaction without isolation",
        },
        Capability {
            feature: "deferred coupling (automatic)",
            layered: false,
            integrated: true,
            note: "no pre-commit hook; the application must call before_commit() by convention",
        },
        Capability {
            feature: "detached coupling",
            layered: true,
            integrated: true,
            note: "a new top-level transaction can be spawned",
        },
        Capability {
            feature: "causally dependent detached modes",
            layered: false,
            integrated: true,
            note: "no access to transaction ids, commit/abort signals, or lock transfer",
        },
        Capability {
            feature: "rules on object deletion",
            layered: false,
            integrated: true,
            note: "persistence by reachability has no explicit delete to trap (O2)",
        },
        Capability {
            feature: "event composition across transactions",
            layered: true,
            integrated: true,
            note: "composition is layer-level bookkeeping, but loses events the layer never saw",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_section4() {
        let caps = capabilities();
        assert!(caps.len() >= 8);
        // Everything the paper lists as blocked must be blocked.
        for feature in [
            "state-change events",
            "nested transactions / parallel rules",
            "causally dependent detached modes",
            "rules on object deletion",
        ] {
            let row = caps.iter().find(|c| c.feature == feature).unwrap();
            assert!(!row.layered, "{feature} must be unavailable layered");
            assert!(row.integrated, "{feature} must be available integrated");
        }
    }
}
