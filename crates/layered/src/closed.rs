//! The closed commercial OODBMS facade.
//!
//! Wraps a full [`Database`] but narrows it to the surface a licensed
//! (source-less) commercial system exposed circa 1994: schema
//! definition, object CRUD, method invocation, *flat* transactions, and
//! named roots. Nothing else — in particular none of the sentry hooks,
//! no nested transactions, no transaction listeners, no dependency
//! graph. The type system enforces the closedness: this module never
//! returns the inner `Database`.

use open_oodb::Database;
use reach_common::{ClassId, ObjectId, ReachError, Result, TxnId};
use reach_object::{ClassBuilder, MethodBody, Value};
use std::sync::Arc;

/// A closed OODBMS: full database inside, narrow API outside.
pub struct ClosedOodb {
    db: Arc<Database>,
}

impl ClosedOodb {
    /// Take ownership of a database, sealing it.
    pub fn new(db: Arc<Database>) -> Self {
        ClosedOodb { db }
    }

    /// An in-memory closed system.
    pub fn in_memory() -> Result<Self> {
        Ok(Self::new(Database::in_memory()?))
    }

    // -- schema (applications could define classes) --

    pub fn define_class(&self, name: &str) -> ClassBuilder<'_> {
        self.db.define_class(name)
    }

    pub fn class_by_name(&self, name: &str) -> Result<ClassId> {
        self.db.schema().class_by_name(name)
    }

    /// Register a method body (applications shipped code).
    pub fn register_method(&self, id: reach_common::MethodId, body: MethodBody) {
        self.db.methods().register(id, body);
    }

    /// Resolve a method name (needed to build wrapper subclasses — the
    /// commercial systems did expose class metadata).
    pub fn resolve_method(&self, class: ClassId, name: &str) -> Result<reach_common::MethodId> {
        self.db.schema().resolve_method(class, name)
    }

    /// Method names of a class.
    pub fn method_names(&self, class: ClassId) -> Result<Vec<String>> {
        self.db.schema().method_names(class)
    }

    /// Raw method body access — this stands for "the application's own
    /// shared library", which the layer could of course call; the
    /// *database's* internals remain hidden.
    pub fn method_body(&self, id: reach_common::MethodId) -> Result<MethodBody> {
        self.db.methods().body(id)
    }

    // -- flat transactions only --

    pub fn begin(&self) -> Result<TxnId> {
        self.db.begin()
    }

    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.db.commit(txn)
    }

    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.db.abort(txn)
    }

    /// §4: "one of the commercial systems we attempted to use only
    /// provides flat transactions" — no subtransactions here.
    pub fn begin_nested(&self, _parent: TxnId) -> Result<TxnId> {
        Err(ReachError::NotSupported(
            "closed system offers flat transactions only".into(),
        ))
    }

    // -- objects --

    pub fn create(&self, txn: TxnId, class: ClassId) -> Result<ObjectId> {
        self.db.create(txn, class)
    }

    pub fn create_with(
        &self,
        txn: TxnId,
        class: ClassId,
        overrides: &[(&str, Value)],
    ) -> Result<ObjectId> {
        self.db.create_with(txn, class, overrides)
    }

    pub fn invoke(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        self.db.invoke(txn, oid, method, args)
    }

    pub fn get_attr(&self, txn: TxnId, oid: ObjectId, attr: &str) -> Result<Value> {
        self.db.get_attr(txn, oid, attr)
    }

    pub fn set_attr(&self, txn: TxnId, oid: ObjectId, attr: &str, value: Value) -> Result<()> {
        self.db.set_attr(txn, oid, attr, value)
    }

    pub fn class_of(&self, oid: ObjectId) -> Result<ClassId> {
        self.db.space().class_of(oid)
    }

    /// Attribute names (metadata was available).
    pub fn attribute_names(&self, class: ClassId) -> Result<Vec<String>> {
        Ok(self
            .db
            .schema()
            .attributes(class)?
            .into_iter()
            .map(|a| a.name)
            .collect())
    }

    // -- persistence / roots --

    pub fn persist_named(&self, txn: TxnId, name: &str, oid: ObjectId) -> Result<()> {
        self.db.persist_named(txn, name, oid)
    }

    pub fn fetch(&self, name: &str) -> Result<ObjectId> {
        self.db.fetch(name)
    }

    // -- everything the paper needed and could not get --

    /// No sentry registration: "implementing the detection of method
    /// events in a closed OODBMS is difficult at best".
    pub fn add_method_sentry(&self) -> Result<()> {
        Err(ReachError::NotSupported(
            "closed system: no dispatcher access".into(),
        ))
    }

    /// No state-change hooks: "changes of state could not be detected as
    /// events".
    pub fn add_state_sentry(&self) -> Result<()> {
        Err(ReachError::NotSupported(
            "closed system: value changes happen below the API".into(),
        ))
    }

    /// No transaction-manager information: "neither of the commercial
    /// OODBMSs ... provided us with the necessary access to
    /// transaction-manager information".
    pub fn add_txn_listener(&self) -> Result<()> {
        Err(ReachError::NotSupported(
            "closed system: commit/abort signals are internal".into(),
        ))
    }

    /// No commit/abort redefinition, no lock transfer.
    pub fn transfer_locks(&self, _from: TxnId, _to: TxnId) -> Result<()> {
        Err(ReachError::NotSupported(
            "closed system: the lock manager is internal".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_object::ValueType;

    #[test]
    fn closed_surface_works_but_hooks_do_not() {
        let closed = ClosedOodb::in_memory().unwrap();
        let (b, m) = closed
            .define_class("Doc")
            .attr("n", ValueType::Int, Value::Int(0))
            .virtual_method("touch");
        let class = b.define().unwrap();
        closed.register_method(m, Arc::new(|_| Ok(Value::Null)));
        let t = closed.begin().unwrap();
        let oid = closed.create(t, class).unwrap();
        closed.invoke(t, oid, "touch", &[]).unwrap();
        closed.commit(t).unwrap();
        // The §4 walls:
        assert!(closed.begin_nested(t).is_err());
        assert!(closed.add_method_sentry().is_err());
        assert!(closed.add_state_sentry().is_err());
        assert!(closed.add_txn_listener().is_err());
        assert!(closed.transfer_locks(t, t).is_err());
    }
}
