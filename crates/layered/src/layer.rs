//! The layered active layer itself.
//!
//! Everything here is written under the constraints the closed facade
//! imposes. Where the integrated REACH uses a dispatcher sentry, this
//! layer builds *wrapper subclasses*; where REACH traps state changes,
//! this layer *polls snapshots*; where REACH runs rules as nested
//! subtransactions, this layer runs them inline in the triggering flat
//! transaction.

use crate::closed::ClosedOodb;
use reach_common::sync::{Mutex, RwLock};
use reach_common::{ClassId, IdGen, ObjectId, ReachError, Result, RuleId, TxnId};
use reach_object::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A rule in the layered system. Conditions and actions receive the
/// closed database, the (flat) transaction, the receiver and the
/// arguments — there is no event object, because there is no event
/// infrastructure underneath.
pub struct LayeredRule {
    pub id: RuleId,
    pub name: String,
    pub priority: i32,
    pub condition: LayeredCondition,
    pub action: LayeredAction,
}

/// Condition closure of a layered rule.
pub type LayeredCondition =
    Arc<dyn Fn(&ClosedOodb, TxnId, ObjectId, &[Value]) -> Result<bool> + Send + Sync>;
/// Action closure of a layered rule.
pub type LayeredAction =
    Arc<dyn Fn(&ClosedOodb, TxnId, ObjectId, &[Value]) -> Result<()> + Send + Sync>;

/// Rules registered per (class, method name).
type RuleTable = HashMap<(ClassId, String), Vec<Arc<LayeredRule>>>;
/// A queued deferred firing: rule + receiver + captured arguments.
type DeferredEntry = (Arc<LayeredRule>, ObjectId, Vec<Value>);
/// Attribute-name -> value snapshot of one watched object.
type Snapshot = HashMap<String, Value>;

/// A detected change from the state poller.
#[derive(Debug, Clone, PartialEq)]
pub struct PolledChange {
    pub oid: ObjectId,
    pub attribute: String,
    pub old: Value,
    pub new: Value,
}

/// The layered active layer.
pub struct LayeredLayer {
    closed: Arc<ClosedOodb>,
    /// (active class, method name) -> rules.
    method_rules: RwLock<RuleTable>,
    /// Original class -> wrapper subclass.
    wrapped: RwLock<HashMap<ClassId, ClassId>>,
    /// Deferred-by-convention queue, keyed by flat transaction.
    deferred: Mutex<HashMap<TxnId, Vec<DeferredEntry>>>,
    /// Snapshot store for the state poller.
    watched: Mutex<HashMap<ObjectId, Snapshot>>,
    rule_ids: IdGen,
}

impl LayeredLayer {
    pub fn new(closed: Arc<ClosedOodb>) -> Arc<Self> {
        Arc::new(LayeredLayer {
            closed,
            method_rules: RwLock::new(HashMap::new()),
            wrapped: RwLock::new(HashMap::new()),
            deferred: Mutex::new(HashMap::new()),
            watched: Mutex::new(HashMap::new()),
            rule_ids: IdGen::new(),
        })
    }

    pub fn closed(&self) -> &Arc<ClosedOodb> {
        &self.closed
    }

    /// Build the *parallel class hierarchy*: an `Active<Name>` subclass
    /// whose methods announce the invocation to the layer and then run
    /// the original bodies. Applications must instantiate the wrapper
    /// class — instances of the original class stay invisible (the very
    /// problem §4 describes).
    pub fn wrap_class(self: &Arc<Self>, class: ClassId, class_name: &str) -> Result<ClassId> {
        if let Some(active) = self.wrapped.read().get(&class) {
            return Ok(*active);
        }
        let method_names = self.closed.method_names(class)?;
        let mut builder = self
            .closed
            .define_class(&format!("Active{class_name}"))
            .base(class);
        let mut overrides = Vec::new();
        for name in &method_names {
            let (b, mid) = builder.virtual_method(name);
            builder = b;
            overrides.push((name.clone(), mid));
        }
        let active = builder.define()?;
        for (name, mid) in overrides {
            let base_mid = self.closed.resolve_method(class, &name)?;
            let base_body = self.closed.method_body(base_mid)?;
            let layer = Arc::downgrade(self);
            let method_name = name.clone();
            self.closed.register_method(
                mid,
                Arc::new(move |ctx| {
                    // 1. The wrapper announces the event to the layer,
                    //    which fires its immediate rules inline — in the
                    //    same flat transaction, without isolation.
                    if let Some(layer) = layer.upgrade() {
                        layer.on_method(ctx.txn, ctx.self_oid, &method_name, ctx.args)?;
                    }
                    // 2. Delegate to the original body.
                    base_body(ctx)
                }),
            );
        }
        self.wrapped.write().insert(class, active);
        Ok(active)
    }

    /// Register a rule on `(class, method)` invocations. Only wrapper
    /// instances trigger it.
    pub fn define_method_rule(&self, class: ClassId, method: &str, rule: LayeredRule) -> RuleId {
        let id = rule.id;
        self.method_rules
            .write()
            .entry((class, method.to_string()))
            .or_default()
            .push(Arc::new(rule));
        id
    }

    /// Convenience builder for rules.
    pub fn rule<C, A>(&self, name: &str, priority: i32, condition: C, action: A) -> LayeredRule
    where
        C: Fn(&ClosedOodb, TxnId, ObjectId, &[Value]) -> Result<bool> + Send + Sync + 'static,
        A: Fn(&ClosedOodb, TxnId, ObjectId, &[Value]) -> Result<()> + Send + Sync + 'static,
    {
        LayeredRule {
            id: self.rule_ids.next(),
            name: name.to_string(),
            priority,
            condition: Arc::new(condition),
            action: Arc::new(action),
        }
    }

    /// Event announcement from a wrapper method: run immediate rules
    /// serially, inline. A failing rule poisons the whole flat
    /// transaction (there is no subtransaction to contain it) — the
    /// error propagates out of the application's method call.
    fn on_method(&self, txn: TxnId, oid: ObjectId, method: &str, args: &[Value]) -> Result<()> {
        let class = self.closed.class_of(oid)?;
        let rules: Vec<Arc<LayeredRule>> = {
            let map = self.method_rules.read();
            // The wrapper class *is* the receiver class; rules are
            // registered against it (or the base — check both, the
            // layer must maintain this mapping by hand).
            let mut found = map
                .get(&(class, method.to_string()))
                .cloned()
                .unwrap_or_default();
            let wrapped = self.wrapped.read();
            for (orig, active) in wrapped.iter() {
                if *active == class {
                    if let Some(more) = map.get(&(*orig, method.to_string())) {
                        found.extend(more.iter().cloned());
                    }
                }
            }
            found
        };
        let mut sorted = rules;
        sorted.sort_by_key(|r| std::cmp::Reverse(r.priority));
        for rule in sorted {
            if (rule.condition)(&self.closed, txn, oid, args)? {
                (rule.action)(&self.closed, txn, oid, args)?;
            }
        }
        Ok(())
    }

    /// Queue a rule for "deferred" execution. There is no pre-commit
    /// hook; the application must call [`LayeredLayer::before_commit`]
    /// itself, every time, before every commit.
    pub fn defer(&self, txn: TxnId, rule: Arc<LayeredRule>, oid: ObjectId, args: Vec<Value>) {
        self.deferred
            .lock()
            .entry(txn)
            .or_default()
            .push((rule, oid, args));
    }

    /// The by-convention pre-commit call. Forgetting it silently drops
    /// the deferred rules — exactly the fragility the paper criticizes.
    pub fn before_commit(&self, txn: TxnId) -> Result<()> {
        let batch = self.deferred.lock().remove(&txn).unwrap_or_default();
        for (rule, oid, args) in batch {
            if (rule.condition)(&self.closed, txn, oid, &args)? {
                (rule.action)(&self.closed, txn, oid, &args)?;
            }
        }
        Ok(())
    }

    /// Number of deferred entries that were silently lost (committed
    /// without `before_commit`).
    pub fn lost_deferred(&self) -> usize {
        self.deferred.lock().values().map(|v| v.len()).sum()
    }

    // ---- state-change polling ----

    /// Watch an object for state changes (snapshot now).
    pub fn watch(&self, txn: TxnId, oid: ObjectId) -> Result<()> {
        let snapshot = self.snapshot(txn, oid)?;
        self.watched.lock().insert(oid, snapshot);
        Ok(())
    }

    fn snapshot(&self, txn: TxnId, oid: ObjectId) -> Result<Snapshot> {
        let class = self.closed.class_of(oid)?;
        let mut out = HashMap::new();
        for attr in self.closed.attribute_names(class)? {
            out.insert(attr.clone(), self.closed.get_attr(txn, oid, &attr)?);
        }
        Ok(out)
    }

    /// Poll all watched objects, returning detected changes and updating
    /// snapshots. Cost is O(objects × attributes) *per poll*, and
    /// changes are only seen as late as the polling interval — both
    /// measured by experiment E7.
    pub fn poll(&self, txn: TxnId) -> Result<Vec<PolledChange>> {
        let oids: Vec<ObjectId> = self.watched.lock().keys().copied().collect();
        let mut changes = Vec::new();
        for oid in oids {
            let fresh = match self.snapshot(txn, oid) {
                Ok(s) => s,
                Err(ReachError::ObjectNotFound(_)) => {
                    self.watched.lock().remove(&oid);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut watched = self.watched.lock();
            if let Some(old) = watched.get(&oid) {
                for (attr, new_value) in &fresh {
                    if let Some(old_value) = old.get(attr) {
                        if old_value != new_value {
                            changes.push(PolledChange {
                                oid,
                                attribute: attr.clone(),
                                old: old_value.clone(),
                                new: new_value.clone(),
                            });
                        }
                    }
                }
            }
            watched.insert(oid, fresh);
        }
        Ok(changes)
    }

    /// Detached execution: a fresh flat transaction on a thread — the
    /// one coupling a layer *can* provide. Causal dependencies are not
    /// possible (no commit/abort signals), so this returns a join handle
    /// and nothing else.
    pub fn run_detached<F>(&self, f: F) -> std::thread::JoinHandle<Result<()>>
    where
        F: FnOnce(&ClosedOodb, TxnId) -> Result<()> + Send + 'static,
    {
        let closed = Arc::clone(&self.closed);
        std::thread::spawn(move || {
            let txn = closed.begin()?;
            match f(&closed, txn) {
                Ok(()) => closed.commit(txn),
                Err(e) => {
                    let _ = closed.abort(txn);
                    Err(e)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_object::ValueType;

    fn setup() -> (Arc<LayeredLayer>, ClassId, ClassId) {
        let closed = Arc::new(ClosedOodb::in_memory().unwrap());
        let (b, m) = closed
            .define_class("Sensor")
            .attr("value", ValueType::Int, Value::Int(0))
            .virtual_method("report");
        let sensor = b.define().unwrap();
        closed.register_method(
            m,
            Arc::new(|ctx| {
                ctx.set("value", ctx.arg(0))?;
                Ok(Value::Null)
            }),
        );
        let layer = LayeredLayer::new(closed);
        let active = layer.wrap_class(sensor, "Sensor").unwrap();
        (layer, sensor, active)
    }

    #[test]
    fn wrapper_instances_trigger_rules_but_originals_do_not() {
        let (layer, sensor, active) = setup();
        let count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let rule = layer.rule(
            "observe",
            0,
            |_, _, _, _| Ok(true),
            move |_, _, _, _| {
                c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(())
            },
        );
        layer.define_method_rule(sensor, "report", rule);
        let closed = layer.closed();
        let t = closed.begin().unwrap();
        // The application dutifully instantiates the wrapper class...
        let good = closed.create(t, active).unwrap();
        closed.invoke(t, good, "report", &[Value::Int(1)]).unwrap();
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 1);
        // ... but an ordinary instance slips through undetected — the
        // §4 failure mode.
        let plain = closed.create(t, sensor).unwrap();
        closed.invoke(t, plain, "report", &[Value::Int(2)]).unwrap();
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 1);
        closed.commit(t).unwrap();
    }

    #[test]
    fn polling_detects_changes_late() {
        let (layer, _sensor, active) = setup();
        let closed = layer.closed();
        let t = closed.begin().unwrap();
        let oid = closed.create(t, active).unwrap();
        layer.watch(t, oid).unwrap();
        // A direct state write is invisible until the next poll.
        closed.set_attr(t, oid, "value", Value::Int(42)).unwrap();
        let changes = layer.poll(t).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].new, Value::Int(42));
        // Second poll: nothing new.
        assert!(layer.poll(t).unwrap().is_empty());
        closed.commit(t).unwrap();
    }

    #[test]
    fn forgotten_before_commit_loses_deferred_rules() {
        let (layer, sensor, active) = setup();
        let rule = Arc::new(layer.rule("deferred", 0, |_, _, _, _| Ok(true), |_, _, _, _| Ok(())));
        let closed = layer.closed();
        let t = closed.begin().unwrap();
        let oid = closed.create(t, active).unwrap();
        let _ = sensor;
        layer.defer(t, rule, oid, vec![]);
        // The application forgets the convention call and just commits.
        closed.commit(t).unwrap();
        assert_eq!(layer.lost_deferred(), 1, "silently dropped");
    }

    #[test]
    fn failing_rule_poisons_the_whole_flat_transaction() {
        let (layer, sensor, active) = setup();
        let rule = layer.rule(
            "veto",
            0,
            |_, _, _, args| Ok(args[0].as_int()? < 0),
            |_, _, _, _| Err(ReachError::RuleEvaluation("bad".into())),
        );
        layer.define_method_rule(sensor, "report", rule);
        let closed = layer.closed();
        let t = closed.begin().unwrap();
        let oid = closed.create(t, active).unwrap();
        // The error surfaces through the *application's* method call —
        // there is no subtransaction to absorb it.
        assert!(closed.invoke(t, oid, "report", &[Value::Int(-1)]).is_err());
        closed.abort(t).unwrap();
    }

    #[test]
    fn detached_execution_works_without_dependencies() {
        let (layer, _, active) = setup();
        let closed = layer.closed();
        let t = closed.begin().unwrap();
        let oid = closed.create(t, active).unwrap();
        closed.persist_named(t, "s", oid).unwrap();
        closed.commit(t).unwrap();
        let h = layer.run_detached(move |closed, txn| {
            let oid = closed.fetch("s")?;
            closed.set_attr(txn, oid, "value", Value::Int(9))
        });
        h.join().unwrap().unwrap();
        let t = closed.begin().unwrap();
        assert_eq!(closed.get_attr(t, oid, "value").unwrap(), Value::Int(9));
        closed.commit(t).unwrap();
    }
}
