//! End-to-end: the paper's §6.1 WaterLevel rule, parsed from its
//! original syntax, compiled, and fired through the full stack.

use open_oodb::Database;
use reach_core::{ReachConfig, ReachSystem};
use reach_object::{Value, ValueType};
use reach_rulelang::compile::load_rule;
use std::sync::Arc;

/// Build the paper's power-plant world: River and Reactor classes with
/// the methods the rule references.
fn power_plant() -> (
    Arc<ReachSystem>,
    reach_common::ObjectId,
    reach_common::ObjectId,
) {
    let db = Database::in_memory().unwrap();
    // class River { waterLevel, waterTemp; updateWaterLevel(x); getWaterTemp(); }
    let (b, update) = db
        .define_class("River")
        .attr("waterLevel", ValueType::Int, Value::Int(100))
        .attr("waterTemp", ValueType::Float, Value::Float(18.0))
        .virtual_method("updateWaterLevel");
    let (b, get_temp) = b.virtual_method("getWaterTemp");
    let river_cls = b.define().unwrap();
    db.methods().register_fn(update, |ctx| {
        ctx.set("waterLevel", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods()
        .register_fn(get_temp, |ctx| ctx.get("waterTemp"));
    // class Reactor { plannedPower, heatOutput; getHeatOutput(); reducePlannedPower(f); }
    let (b, get_heat) = db
        .define_class("Reactor")
        .attr("plannedPower", ValueType::Float, Value::Float(1000.0))
        .attr("heatOutput", ValueType::Float, Value::Float(0.0))
        .virtual_method("getHeatOutput");
    let (b, reduce) = b.virtual_method("reducePlannedPower");
    let reactor_cls = b.define().unwrap();
    db.methods()
        .register_fn(get_heat, |ctx| ctx.get("heatOutput"));
    db.methods().register_fn(reduce, |ctx| {
        let factor = ctx.arg(0).as_float()?;
        let p = ctx.get("plannedPower")?.as_float()?;
        ctx.set("plannedPower", Value::Float(p * (1.0 - factor)))?;
        Ok(Value::Null)
    });
    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    // Instances: one river, one reactor bound to the "BlockA" root.
    let t = db.begin().unwrap();
    let river = db.create(t, river_cls).unwrap();
    db.persist(t, river).unwrap();
    let reactor = db
        .create_with(t, reactor_cls, &[("heatOutput", Value::Float(2_000_000.0))])
        .unwrap();
    db.persist_named(t, "BlockA", reactor).unwrap();
    db.commit(t).unwrap();
    (sys, river, reactor)
}

const WATER_LEVEL: &str = r#"
    rule WaterLevel {
        prio 5;
        decl River *river, int x, Reactor *reactor named "BlockA";
        event after river->updateWaterLevel(x);
        cond imm x < 37 and river->getWaterTemp() > 24.5
                 and reactor->getHeatOutput() > 1000000;
        action imm reactor->reducePlannedPower(0.05);
    };
"#;

#[test]
fn the_papers_rule_fires_end_to_end() {
    let (sys, river, reactor) = power_plant();
    load_rule(&sys, WATER_LEVEL).unwrap();
    let db = sys.db();

    // Case 1: level above the mark — no action.
    let t = db.begin().unwrap();
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(80)])
        .unwrap();
    assert_eq!(
        db.get_attr(t, reactor, "plannedPower").unwrap(),
        Value::Float(1000.0)
    );
    db.commit(t).unwrap();

    // Case 2: level low, but water still cool — condition false.
    let t = db.begin().unwrap();
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(30)])
        .unwrap();
    assert_eq!(
        db.get_attr(t, reactor, "plannedPower").unwrap(),
        Value::Float(1000.0)
    );
    db.commit(t).unwrap();

    // Case 3: all three conditions hold — planned power drops 5%.
    let t = db.begin().unwrap();
    db.set_attr(t, river, "waterTemp", Value::Float(26.0))
        .unwrap();
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(30)])
        .unwrap();
    assert_eq!(
        db.get_attr(t, reactor, "plannedPower").unwrap(),
        Value::Float(950.0)
    );
    db.commit(t).unwrap();
    assert_eq!(sys.stats().actions_executed, 1);
    assert_eq!(sys.stats().conditions_false, 2);
}

#[test]
fn abort_action_rolls_back_the_trigger() {
    let (sys, river, _) = power_plant();
    load_rule(
        &sys,
        r#"
        rule NoDryRiver {
            decl River *river, int x;
            event after river->updateWaterLevel(x);
            cond imm x <= 0;
            action imm abort;
        };
    "#,
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(0)])
        .unwrap();
    assert!(!db.txn_manager().is_active(t), "trigger aborted by rule");
    let t2 = db.begin().unwrap();
    assert_eq!(
        db.get_attr(t2, river, "waterLevel").unwrap(),
        Value::Int(100),
        "the update itself was rolled back with the transaction"
    );
    db.commit(t2).unwrap();
}

#[test]
fn deferred_rule_language_mode() {
    let (sys, river, reactor) = power_plant();
    load_rule(
        &sys,
        r#"
        rule DeferredCut {
            decl River *river, int x, Reactor *reactor named "BlockA";
            event after river->updateWaterLevel(x);
            cond def x < 10;
            action def reactor->reducePlannedPower(0.5);
        };
    "#,
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(5)])
        .unwrap();
    // Not yet: deferred until commit.
    assert_eq!(
        db.get_attr(t, reactor, "plannedPower").unwrap(),
        Value::Float(1000.0)
    );
    db.commit(t).unwrap();
    let t2 = db.begin().unwrap();
    assert_eq!(
        db.get_attr(t2, reactor, "plannedPower").unwrap(),
        Value::Float(500.0)
    );
    db.commit(t2).unwrap();
}

#[test]
fn split_cond_action_coupling() {
    // HiPAC-style E-C/C-A split: the condition is evaluated immediately
    // (against the mid-transaction state) but the action runs deferred,
    // at pre-commit.
    let (sys, river, reactor) = power_plant();
    load_rule(
        &sys,
        r#"
        rule MixedCoupling {
            decl River *river, int x, Reactor *reactor named "BlockA";
            event after river->updateWaterLevel(x);
            cond imm x < 10;
            action def reactor->reducePlannedPower(0.5);
        };
    "#,
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(5)])
        .unwrap();
    // Condition held immediately, but the action is deferred.
    assert_eq!(
        db.get_attr(t, reactor, "plannedPower").unwrap(),
        Value::Float(1000.0)
    );
    // Raise the level again before commit: an immediate-action rule
    // would not have fired for this second event (x = 50 fails), and
    // the deferred action from the first event still runs at commit.
    db.invoke(t, river, "updateWaterLevel", &[Value::Int(50)])
        .unwrap();
    db.commit(t).unwrap();
    let t2 = db.begin().unwrap();
    assert_eq!(
        db.get_attr(t2, reactor, "plannedPower").unwrap(),
        Value::Float(500.0)
    );
    db.commit(t2).unwrap();
}

#[test]
fn backwards_cond_action_coupling_is_rejected() {
    // An action cannot run in an earlier phase than its condition.
    let (sys, _, _) = power_plant();
    let err = load_rule(
        &sys,
        r#"
        rule Backwards {
            decl River *river, int x;
            event after river->updateWaterLevel(x);
            cond def x < 0;
            action imm river->getWaterTemp();
        };
    "#,
    );
    assert!(err.is_err());
}

#[test]
fn unknown_class_in_decl_fails_at_compile() {
    let (sys, _, _) = power_plant();
    let err = load_rule(
        &sys,
        r#"
        rule Ghost {
            decl Phantom *p;
            event after p->boo();
            action imm p->boo();
        };
    "#,
    );
    assert!(err.is_err());
}
