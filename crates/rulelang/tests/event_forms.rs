//! The extended event clauses of the rule language: state-change,
//! deletion, and composite references.

use open_oodb::Database;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, EventExpr, Lifespan, ReachConfig, ReachSystem,
};
use reach_object::{Value, ValueType};
use reach_rulelang::compile::load_rule;
use std::sync::Arc;

fn tank_world() -> (Arc<ReachSystem>, reach_common::ObjectId) {
    let db = Database::in_memory().unwrap();
    let (b, fill) = db
        .define_class("Tank")
        .attr("level", ValueType::Int, Value::Int(0))
        .attr("overflows", ValueType::Int, Value::Int(0))
        .attr("drained", ValueType::Int, Value::Int(0))
        .virtual_method("fill");
    let (b, note_overflow) = b.virtual_method("noteOverflow");
    let (b, note_drain) = b.virtual_method("noteDrain");
    let tank = b.define().unwrap();
    db.methods().register_fn(fill, |ctx| {
        let n = ctx.get("level")?.as_int()? + ctx.arg(0).as_int()?;
        ctx.set("level", Value::Int(n))?;
        Ok(Value::Int(n))
    });
    db.methods().register_fn(note_overflow, |ctx| {
        let n = ctx.get("overflows")?.as_int()? + 1;
        ctx.set("overflows", Value::Int(n))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(note_drain, |ctx| {
        let n = ctx.get("drained")?.as_int()? + 1;
        ctx.set("drained", Value::Int(n))?;
        Ok(Value::Null)
    });
    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    let t = db.begin().unwrap();
    let tank_obj = db.create(t, tank).unwrap();
    db.persist_named(t, "main-tank", tank_obj).unwrap();
    db.commit(t).unwrap();
    (sys, tank_obj)
}

#[test]
fn changed_clause_binds_old_and_new() {
    let (sys, tank) = tank_world();
    load_rule(
        &sys,
        r#"
        rule OverflowWatch {
            decl Tank *t;
            event changed t.level;
            cond imm new > 100 and old <= 100;
            action imm t->noteOverflow();
        };
    "#,
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, tank, "fill", &[Value::Int(60)]).unwrap(); // 0 -> 60
    db.invoke(t, tank, "fill", &[Value::Int(60)]).unwrap(); // 60 -> 120: crosses
    db.invoke(t, tank, "fill", &[Value::Int(10)]).unwrap(); // 120 -> 130: already over
    assert_eq!(db.get_attr(t, tank, "overflows").unwrap(), Value::Int(1));
    db.commit(t).unwrap();
}

#[test]
fn deleted_clause_fires_on_destructor() {
    let (sys, _tank) = tank_world();
    // A second, transient tank is the victim; the rule logs the deletion
    // against the persistent main tank fetched by name.
    load_rule(
        &sys,
        r#"
        rule Obituary {
            decl Tank *t, Tank *log named "main-tank";
            event deleted t;
            action imm log->noteDrain();
        };
    "#,
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    let victim = db
        .create(t, db.schema().class_by_name("Tank").unwrap())
        .unwrap();
    db.delete_object(t, victim).unwrap();
    let main_tank = db.fetch("main-tank").unwrap();
    assert_eq!(db.get_attr(t, main_tank, "drained").unwrap(), Value::Int(1));
    db.commit(t).unwrap();
}

#[test]
fn composite_clause_references_a_registered_composite() {
    let (sys, tank) = tank_world();
    // Pre-register the composite programmatically, reference it by name.
    let fill_ev = sys
        .define_method_event(
            "fill-ev",
            sys.db().schema().class_by_name("Tank").unwrap(),
            "fill",
            MethodPhase::After,
        )
        .unwrap();
    sys.define_composite(
        "three-fills",
        EventExpr::History {
            expr: Arc::new(EventExpr::Primitive(fill_ev)),
            count: 3,
        },
        CompositionScope::SameTransaction,
        Lifespan::Transaction,
        ConsumptionPolicy::Chronicle,
    )
    .unwrap();
    load_rule(
        &sys,
        r#"
        rule BurstFill {
            decl Tank *log named "main-tank";
            event composite "three-fills";
            cond def true;
            action def log->noteOverflow();
        };
    "#,
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    for _ in 0..3 {
        db.invoke(t, tank, "fill", &[Value::Int(1)]).unwrap();
    }
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    assert_eq!(db.get_attr(t, tank, "overflows").unwrap(), Value::Int(1));
    db.commit(t).unwrap();
}

#[test]
fn composite_clause_with_unknown_name_fails() {
    let (sys, _) = tank_world();
    assert!(load_rule(
        &sys,
        r#"
        rule Ghost {
            decl Tank *log named "main-tank";
            event composite "no-such-composite";
            action detached log->noteDrain();
        };
    "#,
    )
    .is_err());
}
