//! Parser for the rule definition language.
//!
//! The structure grammar is small (clauses separated by `;` inside
//! `rule Name { ... };`); condition and action bodies are handed to the
//! shared expression parser of the Query PM.

use crate::ast::{ActionClause, Decl, DeclKind, EventClause, Mode, RuleDef};

use open_oodb::pm::query::parse_expr;
use reach_common::{ReachError, Result};

fn err(line: u32, message: impl Into<String>) -> ReachError {
    ReachError::Parse {
        line,
        message: message.into(),
    }
}

/// Strip `//` line and `/* */` block comments.
fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else if bytes[i] == b'"' || bytes[i] == b'\'' {
            let quote = bytes[i];
            out.push(bytes[i] as char);
            i += 1;
            while i < bytes.len() && bytes[i] != quote {
                out.push(bytes[i] as char);
                i += 1;
            }
            if i < bytes.len() {
                out.push(bytes[i] as char);
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Split on `;` at zero parenthesis depth, trimming empties.
fn split_clauses(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut in_str: Option<char> = None;
    for c in body.chars() {
        match in_str {
            Some(q) => {
                cur.push(c);
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => {
                    in_str = Some(c);
                    cur.push(c);
                }
                '(' => {
                    depth += 1;
                    cur.push(c);
                }
                ')' => {
                    depth -= 1;
                    cur.push(c);
                }
                ';' if depth == 0 => {
                    let t = cur.trim().to_string();
                    if !t.is_empty() {
                        out.push(t);
                    }
                    cur.clear();
                }
                _ => cur.push(c),
            },
        }
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

/// Split on `,` at zero parenthesis depth.
fn split_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut in_str: Option<char> = None;
    for c in s.chars() {
        match in_str {
            Some(q) => {
                cur.push(c);
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => {
                    in_str = Some(c);
                    cur.push(c);
                }
                '(' => {
                    depth += 1;
                    cur.push(c);
                }
                ')' => {
                    depth -= 1;
                    cur.push(c);
                }
                ',' if depth == 0 => {
                    out.push(cur.trim().to_string());
                    cur.clear();
                }
                _ => cur.push(c),
            },
        }
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

fn parse_decl(entry: &str) -> Result<Decl> {
    // Forms:  `Type *var`  |  `Type *var named "root"`  |  `type var`
    let words: Vec<&str> = entry.split_whitespace().collect();
    if words.len() < 2 {
        return Err(err(0, format!("bad decl entry {entry:?}")));
    }
    // Normalize `Type *var` vs `Type* var` vs `Type * var`.
    let joined = words.join(" ");
    if let Some(star_pos) = joined.find('*') {
        let class_name = joined[..star_pos].trim().to_string();
        let rest = joined[star_pos + 1..].trim();
        let mut rest_words = rest.split_whitespace();
        let var = rest_words
            .next()
            .ok_or_else(|| err(0, format!("missing variable name in {entry:?}")))?
            .to_string();
        if class_name.is_empty() || var.is_empty() {
            return Err(err(0, format!("bad object decl {entry:?}")));
        }
        match rest_words.next() {
            None => Ok(Decl {
                var,
                kind: DeclKind::Object { class_name },
            }),
            Some("named") => {
                let root_raw: String = rest_words.collect::<Vec<_>>().join(" ");
                let root = root_raw.trim().trim_matches(['"', '\'']).to_string();
                if root.is_empty() {
                    return Err(err(0, format!("empty root name in {entry:?}")));
                }
                Ok(Decl {
                    var,
                    kind: DeclKind::NamedObject { class_name, root },
                })
            }
            Some(other) => Err(err(0, format!("unexpected {other:?} in decl {entry:?}"))),
        }
    } else {
        if words.len() != 2 {
            return Err(err(0, format!("bad value decl {entry:?}")));
        }
        Ok(Decl {
            var: words[1].to_string(),
            kind: DeclKind::Value {
                type_name: words[0].to_string(),
            },
        })
    }
}

fn parse_event(rest: &str) -> Result<EventClause> {
    let rest = rest.trim();
    // Non-method forms first.
    if let Some(r) = rest.strip_prefix("changed ") {
        let r = r.trim();
        let dot = r
            .find(['.', '-'])
            .ok_or_else(|| err(0, format!("changed clause needs var.attr: {r:?}")))?;
        let receiver_var = r[..dot].trim().to_string();
        let attribute = r[dot..]
            .trim_start_matches(['.', '-', '>'])
            .trim()
            .to_string();
        if receiver_var.is_empty() || attribute.is_empty() {
            return Err(err(0, format!("bad changed clause: {r:?}")));
        }
        return Ok(EventClause::StateChange {
            receiver_var,
            attribute,
        });
    }
    if let Some(r) = rest.strip_prefix("deleted ") {
        let receiver_var = r.trim().to_string();
        if receiver_var.is_empty() {
            return Err(err(0, "deleted clause needs a variable"));
        }
        return Ok(EventClause::Deleted { receiver_var });
    }
    if let Some(r) = rest.strip_prefix("composite ") {
        let name = r.trim().trim_matches(['"', '\'']).to_string();
        if name.is_empty() {
            return Err(err(0, "composite clause needs a name"));
        }
        return Ok(EventClause::Composite { name });
    }
    // `after river->updateWaterLevel(x)` | `before obj->m()`
    let (after, rest) = if let Some(r) = rest.strip_prefix("after ") {
        (true, r.trim())
    } else if let Some(r) = rest.strip_prefix("before ") {
        (false, r.trim())
    } else {
        (true, rest) // default phase is `after`
    };
    let arrow = rest
        .find("->")
        .or_else(|| rest.find('.'))
        .ok_or_else(|| err(0, format!("event clause needs var->method(...): {rest:?}")))?;
    let sep_len = if rest[arrow..].starts_with("->") {
        2
    } else {
        1
    };
    let receiver_var = rest[..arrow].trim().to_string();
    let call = rest[arrow + sep_len..].trim();
    let open = call
        .find('(')
        .ok_or_else(|| err(0, format!("event method needs parentheses: {call:?}")))?;
    let close = call
        .rfind(')')
        .ok_or_else(|| err(0, format!("unterminated parameter list: {call:?}")))?;
    let method = call[..open].trim().to_string();
    let params: Vec<String> = split_commas(&call[open + 1..close])
        .into_iter()
        .filter(|p| !p.is_empty())
        .collect();
    if receiver_var.is_empty() || method.is_empty() {
        return Err(err(0, format!("bad event clause: {rest:?}")));
    }
    Ok(EventClause::Method {
        after,
        receiver_var,
        method,
        params,
    })
}

fn parse_moded(rest: &str) -> Result<(Mode, &str)> {
    let rest = rest.trim();
    let (word, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let mode = Mode::from_keyword(word)
        .ok_or_else(|| err(0, format!("unknown coupling keyword {word:?}")))?;
    Ok((mode, tail.trim()))
}

/// Parse a full rule definition.
pub fn parse_rule(src: &str) -> Result<RuleDef> {
    let src = strip_comments(src);
    let src = src.trim();
    let rest = src
        .strip_prefix("rule")
        .ok_or_else(|| err(1, "rule definition must start with 'rule'"))?
        .trim_start();
    let open = rest
        .find('{')
        .ok_or_else(|| err(1, "missing '{' after rule name"))?;
    let name = rest[..open].trim().to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(1, format!("bad rule name {name:?}")));
    }
    let close = rest
        .rfind('}')
        .ok_or_else(|| err(1, "missing closing '}'"))?;
    let body = &rest[open + 1..close];

    let mut priority = 0i32;
    let mut decls = Vec::new();
    let mut event = None;
    let mut cond_mode = Mode::Immediate;
    let mut condition = None;
    let mut action_mode = None;
    let mut action = None;

    for clause in split_clauses(body) {
        let (kw, rest) = clause
            .split_once(char::is_whitespace)
            .unwrap_or((clause.as_str(), ""));
        match kw {
            "prio" => {
                priority = rest
                    .trim()
                    .parse()
                    .map_err(|_| err(0, format!("bad priority {rest:?}")))?;
            }
            "decl" => {
                for entry in split_commas(rest) {
                    decls.push(parse_decl(&entry)?);
                }
            }
            "event" => {
                event = Some(parse_event(rest)?);
            }
            "cond" => {
                let (mode, expr_src) = parse_moded(rest)?;
                cond_mode = mode;
                if !expr_src.is_empty() {
                    condition = Some(parse_expr(expr_src)?);
                }
            }
            "action" => {
                let (mode, body_src) = parse_moded(rest)?;
                action_mode = Some(mode);
                action = Some(if body_src.trim() == "abort" {
                    ActionClause::Abort
                } else {
                    let exprs = split_commas(body_src)
                        .iter()
                        .map(|e| parse_expr(e))
                        .collect::<Result<Vec<_>>>()?;
                    if exprs.is_empty() {
                        return Err(err(0, "empty action body"));
                    }
                    ActionClause::Exprs(exprs)
                });
            }
            other => return Err(err(0, format!("unknown clause keyword {other:?}"))),
        }
    }

    let event = event.ok_or_else(|| err(0, "rule has no event clause"))?;
    let action = action.ok_or_else(|| err(0, "rule has no action clause"))?;
    let action_mode = action_mode.unwrap_or(cond_mode);

    // Validate declarations against the event clause.
    let def = RuleDef {
        name,
        priority,
        decls,
        event,
        cond_mode,
        condition,
        action_mode,
        action,
    };
    if let Some(receiver) = def.event.receiver_var() {
        match def.decl(receiver) {
            Some(Decl {
                kind: DeclKind::Object { .. } | DeclKind::NamedObject { .. },
                ..
            }) => {}
            _ => {
                return Err(err(
                    0,
                    format!("event receiver {receiver:?} must be a declared object variable"),
                ))
            }
        }
    }
    for p in def.event.params() {
        if def.decl(p).is_none() {
            return Err(err(0, format!("event parameter {p:?} is not declared")));
        }
    }
    Ok(def)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §6.1 example, verbatim modulo whitespace.
    pub const WATER_LEVEL: &str = r#"
        rule WaterLevel {
            prio 5;
            decl River *river, int x, Reactor *reactor named "BlockA";
            event after river->updateWaterLevel(x);
            cond imm x < 37 and river->getWaterTemp() > 24.5
                     and reactor->getHeatOutput() > 1000000;
            action imm reactor->reducePlannedPower(0.05);
        };
    "#;

    #[test]
    fn parses_the_papers_rule() {
        let def = parse_rule(WATER_LEVEL).unwrap();
        assert_eq!(def.name, "WaterLevel");
        assert_eq!(def.priority, 5);
        assert_eq!(def.decls.len(), 3);
        assert_eq!(
            def.decl("river").unwrap().kind,
            DeclKind::Object {
                class_name: "River".into()
            }
        );
        assert_eq!(
            def.decl("x").unwrap().kind,
            DeclKind::Value {
                type_name: "int".into()
            }
        );
        assert_eq!(
            def.decl("reactor").unwrap().kind,
            DeclKind::NamedObject {
                class_name: "Reactor".into(),
                root: "BlockA".into()
            }
        );
        match &def.event {
            EventClause::Method {
                after,
                receiver_var,
                method,
                params,
            } => {
                assert!(after);
                assert_eq!(receiver_var, "river");
                assert_eq!(method, "updateWaterLevel");
                assert_eq!(params, &vec!["x".to_string()]);
            }
            other => panic!("expected method event, got {other:?}"),
        }
        assert_eq!(def.cond_mode, Mode::Immediate);
        assert!(def.condition.is_some());
        assert_eq!(def.action_mode, Mode::Immediate);
        assert!(matches!(def.action, ActionClause::Exprs(ref v) if v.len() == 1));
    }

    #[test]
    fn comments_are_stripped() {
        let src = r#"
            rule R { // line comment
                decl T *t; /* block
                              comment */
                event after t->go();
                action imm t->stop();
            };
        "#;
        let def = parse_rule(src).unwrap();
        assert_eq!(def.name, "R");
        assert!(def.condition.is_none(), "omitted cond means always-true");
    }

    #[test]
    fn before_phase_and_deferred_modes() {
        let src = r#"
            rule R {
                decl T *t;
                event before t->go();
                cond def t->ready() == true;
                action def t->stop();
            };
        "#;
        let def = parse_rule(src).unwrap();
        assert!(matches!(
            def.event,
            EventClause::Method { after: false, .. }
        ));
        assert_eq!(def.cond_mode, Mode::Deferred);
        assert_eq!(def.action_mode, Mode::Deferred);
    }

    #[test]
    fn abort_action() {
        let src = r#"
            rule Guard {
                decl Account *a, float amount;
                event after a->withdraw(amount);
                cond imm amount > 10000.0;
                action imm abort;
            };
        "#;
        let def = parse_rule(src).unwrap();
        assert_eq!(def.action, ActionClause::Abort);
    }

    #[test]
    fn multiple_action_expressions() {
        let src = r#"
            rule R {
                decl T *t;
                event after t->go();
                action detached t->log(1), t->log(2);
            };
        "#;
        let def = parse_rule(src).unwrap();
        assert!(matches!(def.action, ActionClause::Exprs(ref v) if v.len() == 2));
    }

    #[test]
    fn error_cases() {
        assert!(parse_rule("bogus").is_err());
        // Receiver variable not declared.
        assert!(parse_rule("rule R { event after t->go(); action imm t->x(); };").is_err());
        // Event parameter not declared.
        assert!(
            parse_rule("rule R { decl T *t; event after t->go(x); action imm t->x(); };").is_err()
        );
        // No action clause.
        assert!(parse_rule("rule R { decl T *t; event after t->go(); };").is_err());
        // Unknown coupling keyword.
        assert!(
            parse_rule("rule R { decl T *t; event after t->go(); action someday t->x(); };")
                .is_err()
        );
    }
}
