//! Abstract syntax of rule definitions.

use open_oodb::Expr;

/// Coupling-mode keyword of a `cond`/`action` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Immediate,
    Deferred,
    Detached,
    ParallelCausallyDependent,
    SequentialCausallyDependent,
    ExclusiveCausallyDependent,
}

impl Mode {
    /// Parse the keyword (both the paper's abbreviations and full names).
    pub fn from_keyword(word: &str) -> Option<Mode> {
        Some(match word {
            "imm" | "immediate" => Mode::Immediate,
            "def" | "deferred" => Mode::Deferred,
            "detached" => Mode::Detached,
            "par_cd" | "parallel" => Mode::ParallelCausallyDependent,
            "seq_cd" | "sequential" => Mode::SequentialCausallyDependent,
            "exc_cd" | "exclusive" => Mode::ExclusiveCausallyDependent,
            _ => return None,
        })
    }

    pub fn to_coupling(self) -> reach_core::CouplingMode {
        use reach_core::CouplingMode as C;
        match self {
            Mode::Immediate => C::Immediate,
            Mode::Deferred => C::Deferred,
            Mode::Detached => C::Detached,
            Mode::ParallelCausallyDependent => C::ParallelCausallyDependent,
            Mode::SequentialCausallyDependent => C::SequentialCausallyDependent,
            Mode::ExclusiveCausallyDependent => C::ExclusiveCausallyDependent,
        }
    }
}

/// What a declared variable binds to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclKind {
    /// `River *river` — an object variable of the given class.
    Object { class_name: String },
    /// `Reactor *reactor named "BlockA"` — a persistent root fetched
    /// from the data dictionary at evaluation time.
    NamedObject { class_name: String, root: String },
    /// `int x` — a value variable bound from event parameters.
    Value { type_name: String },
}

/// One `decl` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    pub var: String,
    pub kind: DeclKind,
}

/// The `event` clause. The paper's §6.1 grammar shows only method
/// events (`event after river->updateWaterLevel(x);`); the remaining
/// forms cover the rest of REACH's primitive event set:
///
/// * `event changed river.waterLevel;` — a state-change event; the
///   condition/action additionally see `old` and `new` bindings;
/// * `event deleted river;` — the destructor event of the variable's
///   class;
/// * `event composite "name";` — a composite event registered under
///   `name` with `ReachSystem::define_composite`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventClause {
    Method {
        /// `after` (true) or `before`.
        after: bool,
        /// The receiver variable (must be a declared object variable).
        receiver_var: String,
        method: String,
        /// Parameter variable names, bound by position to the args.
        params: Vec<String>,
    },
    StateChange {
        receiver_var: String,
        attribute: String,
    },
    Deleted {
        receiver_var: String,
    },
    Composite {
        name: String,
    },
}

impl EventClause {
    /// The receiver variable, if this event form has one.
    pub fn receiver_var(&self) -> Option<&str> {
        match self {
            EventClause::Method { receiver_var, .. }
            | EventClause::StateChange { receiver_var, .. }
            | EventClause::Deleted { receiver_var } => Some(receiver_var),
            EventClause::Composite { .. } => None,
        }
    }

    /// Parameter variable names (method events only).
    pub fn params(&self) -> &[String] {
        match self {
            EventClause::Method { params, .. } => params,
            _ => &[],
        }
    }
}

/// The `action` clause body.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionClause {
    /// One or more call/assignment expressions, evaluated in order.
    Exprs(Vec<Expr>),
    /// `abort` — abort the rule's transaction (and, for immediate
    /// coupling, the triggering transaction).
    Abort,
}

/// A full parsed rule definition.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDef {
    pub name: String,
    pub priority: i32,
    pub decls: Vec<Decl>,
    pub event: EventClause,
    pub cond_mode: Mode,
    /// `None` means `cond` was omitted (always true).
    pub condition: Option<Expr>,
    pub action_mode: Mode,
    pub action: ActionClause,
}

impl RuleDef {
    /// Find a declaration by variable name.
    pub fn decl(&self, var: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.var == var)
    }
}
