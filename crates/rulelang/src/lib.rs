//! `reach-rulelang` — the REACH rule definition language.
//!
//! §6.1 of the paper shows the concrete syntax on its power-plant
//! example, reproduced verbatim in this crate's tests:
//!
//! ```text
//! rule WaterLevel {
//!     prio 5;
//!     decl River *river, int x, Reactor *reactor named "BlockA";
//!     event after river->updateWaterLevel(x);
//!     cond imm x < 37 and river->getWaterTemp() > 24.5
//!              and reactor->getHeatOutput() > 1000000;
//!     action imm reactor->reducePlannedPower(0.05);
//! };
//! ```
//!
//! The paper maps each rule onto "one rule object and two C functions
//! for condition evaluation and action execution ... archived in a
//! shared library". [`compile()`](compile::compile) performs the same mapping: the `cond`
//! and `action` clauses become closures over the shared expression
//! evaluator (the Query PM's), bound to the rule object registered with
//! the [`ReachSystem`](reach_core::ReachSystem).
//!
//! Binding rules for `decl` variables:
//!
//! * the **receiver variable** of the `event` clause binds to the
//!   event's receiver object;
//! * **parameter variables** listed in the event's argument position
//!   bind to the method arguments by position;
//! * variables declared `named "X"` are fetched from the data
//!   dictionary at condition/action evaluation time — exactly the
//!   paper's `OpenOODB->fetch("Block A")`.

pub mod ast;
pub mod compile;
pub mod parser;

pub use ast::{ActionClause, Decl, DeclKind, EventClause, Mode, RuleDef};
pub use compile::compile;
pub use parser::parse_rule;
