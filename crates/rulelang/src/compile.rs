//! Compiling parsed rule definitions into live REACH rules.
//!
//! The paper maps a rule onto "one rule object and two C functions"
//! extracted from a shared library "using the naming convention that the
//! rule's name is appended by 'Cond' and 'Action'". Here the compiler
//! produces the two closures directly and registers:
//!
//! 1. a method event type named `<rule>:event` (monitoring starts);
//! 2. the rule object, with the condition/action closures evaluating
//!    the parsed expressions against a binding environment built from
//!    the event occurrence and the data dictionary.

use crate::ast::{ActionClause, Decl, DeclKind, EventClause, RuleDef};
use open_oodb::pm::query::{EvalCtx, Expr};
use reach_common::{ReachError, Result, RuleId};
use reach_core::event::MethodPhase;
use reach_core::{ReachSystem, RuleBuilder, RuleCtx};
use reach_object::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Build the variable bindings for one evaluation.
fn bindings(def: &RuleDef, ctx: &RuleCtx<'_>) -> Result<HashMap<String, Value>> {
    let mut env = HashMap::with_capacity(def.decls.len() + 2);
    let prim = ctx.event.first_primitive();
    // State-change events additionally bind `old` and `new`.
    if matches!(def.event, EventClause::StateChange { .. }) {
        env.insert("old".to_string(), ctx.old_value());
        env.insert("new".to_string(), ctx.new_value());
    }
    for decl in &def.decls {
        let value = match &decl.kind {
            DeclKind::NamedObject { root, .. } => Value::Ref(ctx.db.fetch(root)?),
            DeclKind::Object { .. } => {
                if Some(decl.var.as_str()) == def.event.receiver_var() {
                    match prim.data.receiver {
                        Some(oid) => Value::Ref(oid),
                        None => {
                            return Err(ReachError::RuleEvaluation(format!(
                                "event has no receiver to bind {:?}",
                                decl.var
                            )))
                        }
                    }
                } else {
                    return Err(ReachError::RuleEvaluation(format!(
                        "object variable {:?} is neither the event receiver nor named",
                        decl.var
                    )));
                }
            }
            DeclKind::Value { .. } => {
                let pos = def
                    .event
                    .params()
                    .iter()
                    .position(|p| p == &decl.var)
                    .ok_or_else(|| {
                        ReachError::RuleEvaluation(format!(
                            "value variable {:?} is not an event parameter",
                            decl.var
                        ))
                    })?;
                prim.data.args.get(pos).cloned().unwrap_or(Value::Null)
            }
        };
        env.insert(decl.var.clone(), value);
    }
    Ok(env)
}

fn eval_in(def: &RuleDef, ctx: &RuleCtx<'_>, expr: &Expr) -> Result<Value> {
    let env = bindings(def, ctx)?;
    let ectx = EvalCtx {
        space: ctx.db.space(),
        dispatcher: ctx.db.dispatcher(),
        txn: ctx.txn,
        bindings: &env,
    };
    expr.eval(&ectx)
}

/// Compile a parsed rule against a live system: registers the event
/// type and the rule, returning the rule id.
pub fn compile(sys: &ReachSystem, def: &RuleDef) -> Result<RuleId> {
    // Resolve the receiver class (absent for composite references).
    let receiver_class = |var: &str| -> Result<reach_common::ClassId> {
        let decl = def.decl(var).expect("validated by the parser");
        let class_name = match &decl.kind {
            DeclKind::Object { class_name } | DeclKind::NamedObject { class_name, .. } => {
                class_name
            }
            DeclKind::Value { .. } => unreachable!("validated by the parser"),
        };
        sys.db().schema().class_by_name(class_name)
    };
    let event = match &def.event {
        EventClause::Method {
            after,
            receiver_var,
            method,
            ..
        } => {
            let class = receiver_class(receiver_var)?;
            let phase = if *after {
                MethodPhase::After
            } else {
                MethodPhase::Before
            };
            sys.define_method_event(&format!("{}:event", def.name), class, method, phase)?
        }
        EventClause::StateChange {
            receiver_var,
            attribute,
        } => {
            let class = receiver_class(receiver_var)?;
            sys.define_state_event(&format!("{}:event", def.name), class, attribute)?
        }
        EventClause::Deleted { receiver_var } => {
            let class = receiver_class(receiver_var)?;
            sys.define_lifecycle_event(&format!("{}:event", def.name), class, true)?
        }
        EventClause::Composite { name } => sys.event(name)?,
    };

    // §6.1: cond and action carry their own coupling keywords (HiPAC's
    // E-C and C-A couplings). When they differ the engine evaluates the
    // condition under the cond mode and schedules the action under the
    // action mode; validity is checked at registration.
    let mut builder = RuleBuilder::new(&def.name)
        .on(event)
        .priority(def.priority)
        .coupling(def.cond_mode.to_coupling());
    if def.action_mode != def.cond_mode {
        builder = builder.action_coupling(def.action_mode.to_coupling());
    }

    if let Some(cond_expr) = def.condition.clone() {
        let def_c: Arc<RuleDef> = Arc::new(def.clone());
        builder = builder.when(move |ctx| eval_in(&def_c, ctx, &cond_expr)?.as_bool());
    }
    let action = def.action.clone();
    let def_a: Arc<RuleDef> = Arc::new(def.clone());
    builder = builder.then(move |ctx| match &action {
        ActionClause::Abort => Err(ReachError::RuleEvaluation(format!(
            "rule {:?} requested abort",
            def_a.name
        ))),
        ActionClause::Exprs(exprs) => {
            for e in exprs {
                eval_in(&def_a, ctx, e)?;
            }
            Ok(())
        }
    });
    sys.define_rule(builder)
}

/// Parse + compile in one step.
pub fn load_rule(sys: &ReachSystem, src: &str) -> Result<RuleId> {
    let def = crate::parser::parse_rule(src)?;
    compile(sys, &def)
}

/// Re-export for convenience.
pub use load_rule as load;

#[allow(unused)]
fn _assert_send_sync(d: Decl) -> Decl {
    d
}
