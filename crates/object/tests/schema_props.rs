//! Property-based tests of the schema's inheritance machinery over
//! random DAGs.

use proptest::prelude::*;
use reach_common::ClassId;
use reach_object::{ClassBuilder, Schema, Value, ValueType};

/// A random inheritance DAG description: class i may inherit from any
/// subset of classes 0..i (guaranteeing acyclicity), and declares one
/// unique attribute.
fn dag_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
        1..12,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, parents)| {
                let mut ps: Vec<usize> = parents
                    .into_iter()
                    .filter(|_| i > 0)
                    .map(|idx| idx.index(i))
                    .collect();
                ps.sort();
                ps.dedup();
                ps
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn lineage_and_layout_invariants(dag in dag_strategy()) {
        let schema = Schema::new();
        let mut ids: Vec<ClassId> = Vec::new();
        for (i, parents) in dag.iter().enumerate() {
            let mut b = ClassBuilder::new(&schema, &format!("C{i}"))
                .attr(&format!("a{i}"), ValueType::Int, Value::Int(i as i64));
            for p in parents {
                b = b.base(ids[*p]);
            }
            ids.push(b.define().unwrap());
        }
        for (i, parents) in dag.iter().enumerate() {
            let lineage = schema.lineage(ids[i]).unwrap();
            // 1. Lineage starts with self and has no duplicates.
            prop_assert_eq!(lineage[0], ids[i]);
            let mut sorted = lineage.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), lineage.len(), "no duplicate ancestors");
            // 2. Every (transitive) parent is in the lineage.
            for p in parents {
                prop_assert!(schema.is_subclass(ids[i], ids[*p]));
                for anc in schema.lineage(ids[*p]).unwrap() {
                    prop_assert!(
                        lineage.contains(&anc),
                        "ancestors of parents are ancestors"
                    );
                }
            }
            // 3. Attribute layout: own attribute present exactly once,
            //    and the layout has one slot per lineage member.
            let attrs = schema.attributes(ids[i]).unwrap();
            prop_assert_eq!(attrs.len(), lineage.len());
            let own = attrs.iter().filter(|a| a.name == format!("a{i}")).count();
            prop_assert_eq!(own, 1);
            // 4. Defaults agree with slots.
            let defaults = schema.defaults(ids[i]).unwrap();
            let slot = schema.attr_slot(ids[i], &format!("a{i}")).unwrap();
            prop_assert_eq!(&defaults[slot], &Value::Int(i as i64));
            // 5. Subclass relation is antisymmetric for distinct classes.
            for j in 0..i {
                prop_assert!(
                    !(schema.is_subclass(ids[i], ids[j]) && schema.is_subclass(ids[j], ids[i]))
                );
            }
        }
    }
}
