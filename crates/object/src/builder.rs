//! Fluent class definition.
//!
//! ```
//! use reach_object::{ClassBuilder, Schema, Value, ValueType};
//!
//! let schema = Schema::new();
//! let river = ClassBuilder::new(&schema, "River")
//!     .attr("waterLevel", ValueType::Int, Value::Int(50))
//!     .attr("waterTemp", ValueType::Float, Value::Float(18.0))
//!     .define()
//!     .unwrap();
//! assert_eq!(schema.class_by_name("River").unwrap(), river);
//! ```

use crate::schema::{AttrDef, ClassDef, MethodDecl, Schema};
use crate::value::{Value, ValueType};
use reach_common::{ClassId, MethodId, Result};

/// Builder for one class definition.
pub struct ClassBuilder<'a> {
    schema: &'a Schema,
    name: String,
    bases: Vec<ClassId>,
    attrs: Vec<AttrDef>,
    methods: Vec<MethodDecl>,
}

impl<'a> ClassBuilder<'a> {
    pub fn new(schema: &'a Schema, name: &str) -> Self {
        ClassBuilder {
            schema,
            name: name.to_string(),
            bases: Vec::new(),
            attrs: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Add a base class (call repeatedly for multiple inheritance).
    pub fn base(mut self, base: ClassId) -> Self {
        self.bases.push(base);
        self
    }

    /// Declare an attribute with its type and default value.
    pub fn attr(mut self, name: &str, ty: ValueType, default: Value) -> Self {
        self.attrs.push(AttrDef {
            name: name.to_string(),
            ty,
            default,
        });
        self
    }

    /// Declare a virtual method; returns the builder and the id the body
    /// must be registered under.
    pub fn virtual_method(mut self, name: &str) -> (Self, MethodId) {
        let id = self.schema.next_method_id();
        self.methods.push(MethodDecl {
            id,
            name: name.to_string(),
            is_virtual: true,
        });
        (self, id)
    }

    /// Declare a non-virtual method.
    pub fn method(mut self, name: &str) -> (Self, MethodId) {
        let id = self.schema.next_method_id();
        self.methods.push(MethodDecl {
            id,
            name: name.to_string(),
            is_virtual: false,
        });
        (self, id)
    }

    /// Register the class with the schema.
    pub fn define(self) -> Result<ClassId> {
        let id = self.schema.next_class_id();
        self.schema.define(ClassDef {
            id,
            name: self.name,
            bases: self.bases,
            own_attrs: self.attrs,
            own_methods: self.methods,
        })?;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_declares_methods_with_fresh_ids() {
        let s = Schema::new();
        let (b, m1) = ClassBuilder::new(&s, "C").virtual_method("go");
        let (b, m2) = b.method("stop");
        let c = b.define().unwrap();
        assert_ne!(m1, m2);
        assert_eq!(s.resolve_method(c, "go").unwrap(), m1);
        assert_eq!(s.resolve_method(c, "stop").unwrap(), m2);
        assert_eq!(s.method_names(c).unwrap(), vec!["go", "stop"]);
    }
}
