//! The dispatcher — where the sentry lives.
//!
//! Every method invocation flows through [`Dispatcher::invoke`]:
//!
//! 1. resolve the method through the receiver class's vtable (virtual
//!    dispatch);
//! 2. if the (class, method) pair is *monitored*, run the `Before`
//!    sentry chain — this raises the `before m()` primitive event;
//! 3. execute the body;
//! 4. if monitored, run the `After` chain with the result — `after m()`.
//!
//! This is the in-line-wrapper design of §6.2 translated to a runtime
//! dispatcher: *unmonitored* invocations pay one relaxed atomic load
//! (the paper's "useless overhead" must be negligible), monitored ones
//! pay the chain. The monitoring set is mutable at runtime, fulfilling
//! §6.1's requirement that "it is not always known in advance which
//! events may be of interest" — types are never declared differently to
//! become monitorable.

use crate::method::{MethodCtx, MethodRegistry};
use crate::schema::Schema;
use crate::space::ObjectSpace;
use crate::value::{Args, Value};
use reach_common::sync::RwLock;
use reach_common::{ClassId, MethodId, ObjectId, Result, Timestamp, TxnId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which side of the invocation a sentry observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentryPhase {
    Before,
    After,
}

/// The observed invocation.
#[derive(Debug, Clone)]
pub struct MethodCall {
    pub txn: TxnId,
    pub receiver: ObjectId,
    pub class: ClassId,
    pub method: MethodId,
    pub method_name: Arc<str>,
    /// Shared argument payload — one copy per invocation, refcounted
    /// into every occurrence raised for it.
    pub args: Args,
    /// Monotonic sequence number — the event timestamp source.
    pub seq: Timestamp,
}

/// Observer of method invocations (the method-event detector).
pub trait MethodSentry: Send + Sync {
    /// Called before the body runs. Returning an error vetoes the call —
    /// used by immediate-coupled rules that abort the transaction.
    fn before(&self, call: &MethodCall) -> Result<()>;
    /// Called after the body returns.
    fn after(&self, call: &MethodCall, result: &Result<Value>);

    /// Called once at the end of a batched invocation with every
    /// monitored call of the batch and its result, in invocation
    /// order. The default falls back to per-call
    /// [`MethodSentry::after`]; event detectors override it to
    /// amortize per-event dispatch over the whole batch.
    fn after_batch(&self, calls: &[(MethodCall, Result<Value>)]) {
        for (call, result) in calls {
            self.after(call, result);
        }
    }
}

/// Virtual-dispatch engine with the sentry interception point.
pub struct Dispatcher {
    schema: Arc<Schema>,
    methods: Arc<MethodRegistry>,
    sentries: RwLock<Vec<Arc<dyn MethodSentry>>>,
    /// (class, method) pairs currently monitored.
    monitored: RwLock<HashSet<(ClassId, MethodId)>>,
    /// Fast-path gate: number of monitored pairs. When zero, invoke()
    /// costs one relaxed load beyond the plain dispatch.
    monitor_count: AtomicUsize,
    seq: AtomicU64,
}

impl Dispatcher {
    pub fn new(schema: Arc<Schema>, methods: Arc<MethodRegistry>) -> Self {
        Dispatcher {
            schema,
            methods,
            sentries: RwLock::new(Vec::new()),
            monitored: RwLock::new(HashSet::new()),
            monitor_count: AtomicUsize::new(0),
            seq: AtomicU64::new(1),
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn methods(&self) -> &Arc<MethodRegistry> {
        &self.methods
    }

    /// Install a sentry (the REACH primitive-event detector registers
    /// itself here).
    pub fn add_sentry(&self, s: Arc<dyn MethodSentry>) {
        self.sentries.write().push(s);
    }

    /// Start monitoring invocations of `method` on `class` (and, through
    /// vtable resolution, on receivers of any subclass that inherits this
    /// implementation).
    pub fn monitor(&self, class: ClassId, method: MethodId) {
        if self.monitored.write().insert((class, method)) {
            self.monitor_count.fetch_add(1, Ordering::Release);
        }
    }

    /// Stop monitoring a pair.
    pub fn unmonitor(&self, class: ClassId, method: MethodId) {
        if self.monitored.write().remove(&(class, method)) {
            self.monitor_count.fetch_sub(1, Ordering::Release);
        }
    }

    /// Whether the pair is monitored right now.
    pub fn is_monitored(&self, class: ClassId, method: MethodId) -> bool {
        self.monitor_count.load(Ordering::Acquire) > 0
            && self.monitored.read().contains(&(class, method))
    }

    /// Invoke `method_name` on `receiver` within `txn`.
    pub fn invoke(
        &self,
        space: &ObjectSpace,
        txn: TxnId,
        receiver: ObjectId,
        method_name: &str,
        args: &[Value],
    ) -> Result<Value> {
        let class = space.class_of(receiver)?;
        let method = self.schema.resolve_method(class, method_name)?;
        let body = self.methods.body(method)?;

        // Fast path: nothing monitored anywhere — no sentry bookkeeping.
        if self.monitor_count.load(Ordering::Acquire) == 0 || !self.monitor_hit(class, method) {
            let ctx = MethodCtx {
                space,
                dispatcher: self,
                txn,
                self_oid: receiver,
                args,
            };
            return body(&ctx);
        }

        // Monitored path: materialize the call record once and run the
        // before/after chains around the body.
        let call = MethodCall {
            txn,
            receiver,
            class,
            method,
            method_name: Arc::from(method_name),
            args: Args::copy_from(args),
            seq: Timestamp::new(self.seq.fetch_add(1, Ordering::Relaxed)),
        };
        let sentries = self.sentries.read().clone();
        for s in &sentries {
            s.before(&call)?;
        }
        let ctx = MethodCtx {
            space,
            dispatcher: self,
            txn,
            self_oid: receiver,
            args,
        };
        let result = body(&ctx);
        for s in &sentries {
            s.after(&call, &result);
        }
        result
    }

    /// Invoke a batch of calls within `txn`, raising the monitored
    /// after-events **once at the end of the batch** instead of after
    /// each body.
    ///
    /// Per call the order is unchanged: before-sentries run (and can
    /// veto) immediately before each body. What moves is the after
    /// phase: the after-event of call *i* is observed only after every
    /// body of the batch has run (or the batch stopped at an error).
    /// The first error ends the batch; after-events of the calls that
    /// already ran — including the failing one, matching the per-call
    /// path where `after` sees the `Err` result — are still raised.
    pub fn invoke_batch(
        &self,
        space: &ObjectSpace,
        txn: TxnId,
        calls: &[(ObjectId, &str, &[Value])],
    ) -> Result<Vec<Value>> {
        let mut results = Vec::with_capacity(calls.len());
        let mut pending: Vec<(MethodCall, Result<Value>)> = Vec::new();
        let mut sentries: Option<Vec<Arc<dyn MethodSentry>>> = None;
        let mut failure: Option<reach_common::ReachError> = None;
        // Resolution cache for a run of calls sharing (class, method
        // name) — the common batch shape is one method over receivers
        // of one class, where vtable resolution, body lookup, the
        // monitor test and the name Arc are all per-call repeats of
        // the same answer. A monitor()/unmonitor() racing the batch
        // may be observed only from the next resolution run, exactly
        // as a racing per-call loop may observe it only from some call
        // onward.
        let mut resolved: Option<(Arc<str>, ClassId, MethodId, crate::method::MethodBody, bool)> =
            None;
        'calls: for &(receiver, method_name, args) in calls {
            macro_rules! try_or_break {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(e) => {
                            failure = Some(e);
                            break 'calls;
                        }
                    }
                };
            }
            let class = try_or_break!(space.class_of(receiver));
            let (name, method, body, hit) = match &resolved {
                Some((n, c, m, b, h)) if *c == class && &**n == method_name => {
                    (Arc::clone(n), *m, Arc::clone(b), *h)
                }
                _ => {
                    let method = try_or_break!(self.schema.resolve_method(class, method_name));
                    let body = try_or_break!(self.methods.body(method));
                    let hit = self.monitor_count.load(Ordering::Acquire) > 0
                        && self.monitor_hit(class, method);
                    let name: Arc<str> = Arc::from(method_name);
                    resolved = Some((Arc::clone(&name), class, method, Arc::clone(&body), hit));
                    (name, method, body, hit)
                }
            };
            if !hit {
                let ctx = MethodCtx {
                    space,
                    dispatcher: self,
                    txn,
                    self_oid: receiver,
                    args,
                };
                results.push(try_or_break!(body(&ctx)));
                continue;
            }
            let call = MethodCall {
                txn,
                receiver,
                class,
                method,
                method_name: name,
                args: Args::copy_from(args),
                seq: Timestamp::new(self.seq.fetch_add(1, Ordering::Relaxed)),
            };
            let chain = sentries.get_or_insert_with(|| self.sentries.read().clone());
            for s in chain.iter() {
                if let Err(e) = s.before(&call) {
                    failure = Some(e);
                    break 'calls;
                }
            }
            let ctx = MethodCtx {
                space,
                dispatcher: self,
                txn,
                self_oid: receiver,
                args,
            };
            let result = body(&ctx);
            match &result {
                Ok(v) => results.push(v.clone()),
                Err(e) => failure = Some(e.clone()),
            }
            let stop = failure.is_some();
            pending.push((call, result));
            if stop {
                break;
            }
        }
        if !pending.is_empty() {
            let chain = sentries.unwrap_or_else(|| self.sentries.read().clone());
            for s in &chain {
                s.after_batch(&pending);
            }
        }
        match failure {
            None => Ok(results),
            Some(e) => Err(e),
        }
    }

    /// Monitoring test that honours inheritance: the pair is monitored if
    /// the *resolved* method is monitored for the receiver class or any
    /// ancestor that declared interest in it.
    fn monitor_hit(&self, class: ClassId, method: MethodId) -> bool {
        let monitored = self.monitored.read();
        if monitored.contains(&(class, method)) {
            return true;
        }
        if let Ok(lineage) = self.schema.lineage(class) {
            for anc in lineage.into_iter().skip(1) {
                if monitored.contains(&(anc, method)) {
                    return true;
                }
            }
        }
        false
    }

    /// Number of monitored pairs (introspection).
    pub fn monitored_count(&self) -> usize {
        self.monitor_count.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("monitored", &self.monitored_count())
            .field("sentries", &self.sentries.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;
    use crate::value::ValueType;
    use reach_common::sync::Mutex;

    struct Recorder {
        calls: Mutex<Vec<(SentryPhase, String)>>,
    }
    impl MethodSentry for Recorder {
        fn before(&self, call: &MethodCall) -> Result<()> {
            self.calls
                .lock()
                .push((SentryPhase::Before, call.method_name.to_string()));
            Ok(())
        }
        fn after(&self, call: &MethodCall, _result: &Result<Value>) {
            self.calls
                .lock()
                .push((SentryPhase::After, call.method_name.to_string()));
        }
    }

    fn world() -> (Arc<Schema>, Arc<MethodRegistry>, ObjectSpace, Dispatcher) {
        let schema = Arc::new(Schema::new());
        let methods = Arc::new(MethodRegistry::new());
        let space = ObjectSpace::new(Arc::clone(&schema));
        let dispatcher = Dispatcher::new(Arc::clone(&schema), Arc::clone(&methods));
        (schema, methods, space, dispatcher)
    }

    #[test]
    fn basic_invocation_and_result() {
        let (schema, methods, space, disp) = world();
        let (b, inc) = ClassBuilder::new(&schema, "Counter")
            .attr("n", ValueType::Int, Value::Int(0))
            .virtual_method("inc");
        let class = b.define().unwrap();
        methods.register_fn(inc, |ctx| {
            let n = ctx.get("n")?.as_int()? + ctx.arg(0).as_int().unwrap_or(1);
            ctx.set("n", Value::Int(n))?;
            Ok(Value::Int(n))
        });
        let oid = space.create(TxnId::NULL, class).unwrap();
        let r = disp
            .invoke(&space, TxnId::new(1), oid, "inc", &[Value::Int(5)])
            .unwrap();
        assert_eq!(r, Value::Int(5));
        assert_eq!(space.get_attr(oid, "n").unwrap(), Value::Int(5));
    }

    #[test]
    fn virtual_override_dispatches_most_derived() {
        let (schema, methods, space, disp) = world();
        let (b, speak_base) = ClassBuilder::new(&schema, "Animal").virtual_method("speak");
        let base = b.define().unwrap();
        let (b, speak_dog) = ClassBuilder::new(&schema, "Dog").virtual_method("speak");
        let dog = b.base(base).define().unwrap();
        methods.register_fn(speak_base, |_| Ok(Value::Str("...".into())));
        methods.register_fn(speak_dog, |_| Ok(Value::Str("woof".into())));
        let a = space.create(TxnId::NULL, base).unwrap();
        let d = space.create(TxnId::NULL, dog).unwrap();
        assert_eq!(
            disp.invoke(&space, TxnId::NULL, a, "speak", &[]).unwrap(),
            Value::Str("...".into())
        );
        assert_eq!(
            disp.invoke(&space, TxnId::NULL, d, "speak", &[]).unwrap(),
            Value::Str("woof".into())
        );
    }

    #[test]
    fn inherited_method_runs_on_subclass_instance() {
        let (schema, methods, space, disp) = world();
        let (b, ping) = ClassBuilder::new(&schema, "Base").virtual_method("ping");
        let base = b.define().unwrap();
        let derived = ClassBuilder::new(&schema, "Derived")
            .base(base)
            .define()
            .unwrap();
        methods.register_fn(ping, |_| Ok(Value::Int(1)));
        let d = space.create(TxnId::NULL, derived).unwrap();
        assert_eq!(
            disp.invoke(&space, TxnId::NULL, d, "ping", &[]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn sentries_fire_only_when_monitored() {
        let (schema, methods, space, disp) = world();
        let (b, m) = ClassBuilder::new(&schema, "Thing").virtual_method("touch");
        let class = b.define().unwrap();
        methods.register_fn(m, |_| Ok(Value::Null));
        let rec = Arc::new(Recorder {
            calls: Mutex::new(Vec::new()),
        });
        disp.add_sentry(Arc::clone(&rec) as Arc<dyn MethodSentry>);
        let oid = space.create(TxnId::NULL, class).unwrap();
        // Unmonitored: silent.
        disp.invoke(&space, TxnId::NULL, oid, "touch", &[]).unwrap();
        assert!(rec.calls.lock().is_empty());
        // Monitored: before + after.
        disp.monitor(class, m);
        disp.invoke(&space, TxnId::NULL, oid, "touch", &[]).unwrap();
        {
            let calls = rec.calls.lock();
            assert_eq!(
                *calls,
                vec![
                    (SentryPhase::Before, "touch".to_string()),
                    (SentryPhase::After, "touch".to_string())
                ]
            );
        }
        // Unmonitor: silent again.
        disp.unmonitor(class, m);
        disp.invoke(&space, TxnId::NULL, oid, "touch", &[]).unwrap();
        assert_eq!(rec.calls.lock().len(), 2);
    }

    #[test]
    fn monitoring_base_class_catches_subclass_receivers() {
        let (schema, methods, space, disp) = world();
        let (b, m) = ClassBuilder::new(&schema, "Base").virtual_method("go");
        let base = b.define().unwrap();
        let derived = ClassBuilder::new(&schema, "Derived")
            .base(base)
            .define()
            .unwrap();
        methods.register_fn(m, |_| Ok(Value::Null));
        let rec = Arc::new(Recorder {
            calls: Mutex::new(Vec::new()),
        });
        disp.add_sentry(Arc::clone(&rec) as Arc<dyn MethodSentry>);
        disp.monitor(base, m);
        let d = space.create(TxnId::NULL, derived).unwrap();
        disp.invoke(&space, TxnId::NULL, d, "go", &[]).unwrap();
        assert_eq!(rec.calls.lock().len(), 2);
    }

    #[test]
    fn sentry_veto_aborts_the_call() {
        let (schema, methods, space, disp) = world();
        let (b, m) = ClassBuilder::new(&schema, "Guarded").virtual_method("op");
        let class = b.define().unwrap();
        let ran = Arc::new(Mutex::new(false));
        let ran2 = Arc::clone(&ran);
        methods.register_fn(m, move |_| {
            *ran2.lock() = true;
            Ok(Value::Null)
        });
        struct Veto;
        impl MethodSentry for Veto {
            fn before(&self, _c: &MethodCall) -> Result<()> {
                Err(reach_common::ReachError::RuleEvaluation("vetoed".into()))
            }
            fn after(&self, _c: &MethodCall, _r: &Result<Value>) {}
        }
        disp.add_sentry(Arc::new(Veto));
        disp.monitor(class, m);
        let oid = space.create(TxnId::NULL, class).unwrap();
        assert!(disp.invoke(&space, TxnId::NULL, oid, "op", &[]).is_err());
        assert!(!*ran.lock(), "vetoed body must not run");
    }

    #[test]
    fn nested_calls_are_dispatched() {
        let (schema, methods, space, disp) = world();
        let (b, outer) = ClassBuilder::new(&schema, "Pair")
            .attr("peer", ValueType::Ref, Value::Null)
            .virtual_method("outer");
        let (b, inner) = b.virtual_method("inner");
        let class = b.define().unwrap();
        methods.register_fn(outer, move |ctx| {
            let peer = ctx.get("peer")?.as_ref_id()?;
            ctx.call(peer, "inner", &[Value::Int(2)])
        });
        methods.register_fn(inner, |ctx| Ok(Value::Int(ctx.arg(0).as_int()? * 10)));
        let b_obj = space.create(TxnId::NULL, class).unwrap();
        let a_obj = space
            .create_with(TxnId::NULL, class, &[("peer", Value::Ref(b_obj))])
            .unwrap();
        assert_eq!(
            disp.invoke(&space, TxnId::NULL, a_obj, "outer", &[])
                .unwrap(),
            Value::Int(20)
        );
    }

    #[test]
    fn unknown_method_name_errors() {
        let (schema, _methods, space, disp) = world();
        let class = ClassBuilder::new(&schema, "Empty").define().unwrap();
        let oid = space.create(TxnId::NULL, class).unwrap();
        assert!(disp.invoke(&space, TxnId::NULL, oid, "ghost", &[]).is_err());
    }
}
