//! The object space: resident object state, creation/deletion, and the
//! *state-change sentry* hook.
//!
//! §4 reports that on the closed commercial systems "changes of state
//! could not be detected as events" because value access bypasses any
//! layer the integrator controls. In the integrated architecture the
//! object space *is* ours, so every `set_attr` runs the registered
//! [`StateSentry`] chain — this is the low-level mechanism behind
//! REACH's planned state-change event class (§3.1).
//!
//! The space also exposes the two hook points the Persistence PM plugs
//! into: a *fault handler* (called when a non-resident object is
//! dereferenced — the moral equivalent of Open OODB's virtual-memory
//! sentry for residency) and persistence marking (§3.2's rule that only
//! references to *persistent* objects may cross into detached rules).

use crate::extent::ExtentRegistry;
use crate::schema::Schema;
use crate::value::Value;
use reach_common::sync::RwLock;
use reach_common::{ClassId, IdGen, ObjectId, ReachError, Result, TxnId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The resident state of one object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectState {
    pub class: ClassId,
    pub attrs: Vec<Value>,
}

impl ObjectState {
    /// Wire encoding (class id + attribute values), used by persistence.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.class.raw().to_le_bytes());
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        for v in &self.attrs {
            v.encode_into(&mut out);
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 12 {
            return Err(ReachError::Io("truncated object state".into()));
        }
        let class = ClassId::new(u64::from_le_bytes(buf[0..8].try_into().unwrap()));
        let n = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        let mut pos = 12;
        let mut attrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            attrs.push(Value::decode_from(buf, &mut pos)?);
        }
        Ok(ObjectState { class, attrs })
    }
}

/// What a state sentry observes on every attribute write.
#[derive(Debug, Clone)]
pub struct StateChange {
    pub txn: TxnId,
    pub oid: ObjectId,
    pub class: ClassId,
    pub attribute: String,
    pub old: Value,
    pub new: Value,
}

/// Observer of attribute writes (the state-change event detector).
pub trait StateSentry: Send + Sync {
    fn on_change(&self, change: &StateChange);
}

/// Observer of object lifecycle: constructor/destructor events. The
/// paper treats these as method events ("invocation of the destructor
/// methods can be detected by the event detector"); indexing and change
/// tracking subscribe here too.
pub trait LifecycleSentry: Send + Sync {
    /// A new object became resident. `txn` is `TxnId::NULL` for
    /// system-internal installs (fault-in, undo restores).
    fn on_create(&self, txn: TxnId, oid: ObjectId, state: &ObjectState);
    /// An object was deleted (not merely evicted).
    fn on_delete(&self, txn: TxnId, oid: ObjectId, state: &ObjectState);
}

/// Handler invoked when a dereferenced object is not resident; returns
/// its state if it exists in stable storage (the persistence fault).
pub type FaultHandler = Arc<dyn Fn(ObjectId) -> Result<Option<ObjectState>> + Send + Sync>;

/// The in-memory home of all resident objects.
pub struct ObjectSpace {
    schema: Arc<Schema>,
    extents: Arc<ExtentRegistry>,
    objects: RwLock<HashMap<ObjectId, ObjectState>>,
    persistent: RwLock<HashSet<ObjectId>>,
    state_sentries: RwLock<Vec<Arc<dyn StateSentry>>>,
    lifecycle_sentries: RwLock<Vec<Arc<dyn LifecycleSentry>>>,
    fault: RwLock<Option<FaultHandler>>,
    ids: IdGen,
    /// `(residue, stride)` of the oid partition this space allocates
    /// from; `(0, 1)` (single-node) makes every oid local.
    partition: RwLock<(u64, u64)>,
}

impl ObjectSpace {
    pub fn new(schema: Arc<Schema>) -> Self {
        ObjectSpace {
            schema,
            extents: Arc::new(ExtentRegistry::new()),
            objects: RwLock::new(HashMap::new()),
            persistent: RwLock::new(HashSet::new()),
            state_sentries: RwLock::new(Vec::new()),
            lifecycle_sentries: RwLock::new(Vec::new()),
            fault: RwLock::new(None),
            ids: IdGen::new(),
            partition: RwLock::new((0, 1)),
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn extents(&self) -> &Arc<ExtentRegistry> {
        &self.extents
    }

    /// Install the persistence fault handler (Persistence PM).
    pub fn set_fault_handler(&self, h: FaultHandler) {
        *self.fault.write() = Some(h);
    }

    /// Restrict oid allocation to the residue class `residue` modulo
    /// `stride`. A sharded deployment calls this with its shard index
    /// and the shard count so `oid % shards` names the owning shard —
    /// the partition function and the allocator agree by construction,
    /// and the assignment is stable across restarts because it depends
    /// only on the oid value.
    pub fn configure_oid_allocation(&self, residue: u64, stride: u64) {
        self.ids.configure_residue(residue, stride);
        *self.partition.write() = (residue, stride.max(1));
    }

    /// Whether `oid` belongs to this space's partition. Always true on
    /// a single node; in a sharded deployment a foreign oid is owned —
    /// and its persistence tracked — by another shard's space.
    pub fn is_local(&self, oid: ObjectId) -> bool {
        let (residue, stride) = *self.partition.read();
        stride <= 1 || oid.raw() % stride == residue
    }

    /// Register a state-change sentry.
    pub fn add_state_sentry(&self, s: Arc<dyn StateSentry>) {
        self.state_sentries.write().push(s);
    }

    /// Register a lifecycle (constructor/destructor) sentry.
    pub fn add_lifecycle_sentry(&self, s: Arc<dyn LifecycleSentry>) {
        self.lifecycle_sentries.write().push(s);
    }

    // ---- lifecycle ----

    /// Create an object with the class defaults.
    pub fn create(&self, txn: TxnId, class: ClassId) -> Result<ObjectId> {
        let attrs = self.schema.defaults(class)?;
        Ok(self.install(txn, class, attrs))
    }

    /// Create an object overriding named attributes.
    pub fn create_with(
        &self,
        txn: TxnId,
        class: ClassId,
        overrides: &[(&str, Value)],
    ) -> Result<ObjectId> {
        let mut attrs = self.schema.defaults(class)?;
        for (name, value) in overrides {
            let slot = self.schema.attr_slot(class, name)?;
            let ty = self.schema.attributes(class)?[slot].ty;
            if !value.conforms_to(ty) {
                return Err(ReachError::TypeMismatch {
                    expected: format!("{ty:?}"),
                    got: format!("{:?}", value.value_type()),
                });
            }
            attrs[slot] = value.clone();
        }
        Ok(self.install(txn, class, attrs))
    }

    fn install(&self, txn: TxnId, class: ClassId, attrs: Vec<Value>) -> ObjectId {
        let oid: ObjectId = self.ids.next();
        let state = ObjectState { class, attrs };
        self.objects.write().insert(oid, state.clone());
        self.extents.register(class, oid);
        self.fire_lifecycle(txn, oid, &state, true);
        oid
    }

    /// Install a known object (persistence load / translation / undo
    /// restore). The caller owns id uniqueness. Lifecycle sentries fire
    /// with `TxnId::NULL` so change tracking ignores the install while
    /// indexes stay consistent.
    pub fn install_existing(&self, oid: ObjectId, state: ObjectState) {
        self.ids_advance_past(oid);
        self.extents.register(state.class, oid);
        self.objects.write().insert(oid, state.clone());
        self.fire_lifecycle(TxnId::NULL, oid, &state, true);
    }

    fn fire_lifecycle(&self, txn: TxnId, oid: ObjectId, state: &ObjectState, create: bool) {
        let sentries = self.lifecycle_sentries.read().clone();
        for s in &sentries {
            if create {
                s.on_create(txn, oid, state);
            } else {
                s.on_delete(txn, oid, state);
            }
        }
    }

    fn ids_advance_past(&self, oid: ObjectId) {
        // Never reissue an id that already names an installed object.
        while self.ids.peek() <= oid.raw() {
            self.ids.next_raw();
        }
    }

    /// Delete an object. Returns its last state (destructor arguments).
    pub fn delete(&self, txn: TxnId, oid: ObjectId) -> Result<ObjectState> {
        let state = self
            .objects
            .write()
            .remove(&oid)
            .ok_or(ReachError::ObjectNotFound(oid))?;
        self.extents.unregister(state.class, oid);
        self.persistent.write().remove(&oid);
        self.fire_lifecycle(txn, oid, &state, false);
        Ok(state)
    }

    /// Evict a resident object without deleting it (persistence owns the
    /// truth; next dereference faults it back in).
    pub fn evict(&self, oid: ObjectId) -> Result<ObjectState> {
        let state = self
            .objects
            .write()
            .remove(&oid)
            .ok_or(ReachError::ObjectNotFound(oid))?;
        self.extents.unregister(state.class, oid);
        Ok(state)
    }

    /// Whether the object is currently resident (no fault attempted).
    pub fn is_resident(&self, oid: ObjectId) -> bool {
        self.objects.read().contains_key(&oid)
    }

    /// Mark an object persistent (Persistence PM bookkeeping).
    pub fn mark_persistent(&self, oid: ObjectId) {
        self.persistent.write().insert(oid);
    }

    /// §3.2: only persistent objects may be passed by reference into
    /// detached rule executions.
    pub fn is_persistent(&self, oid: ObjectId) -> bool {
        self.persistent.read().contains(&oid)
    }

    /// Ensure the object is resident, running the fault handler if not.
    fn ensure_resident(&self, oid: ObjectId) -> Result<()> {
        if self.objects.read().contains_key(&oid) {
            return Ok(());
        }
        let handler = self.fault.read().clone();
        if let Some(h) = handler {
            if let Some(state) = h(oid)? {
                self.install_existing(oid, state);
                return Ok(());
            }
        }
        Err(ReachError::ObjectNotFound(oid))
    }

    // ---- attribute access ----

    /// The object's class.
    pub fn class_of(&self, oid: ObjectId) -> Result<ClassId> {
        self.ensure_resident(oid)?;
        Ok(self.objects.read()[&oid].class)
    }

    /// Read an attribute by name.
    pub fn get_attr(&self, oid: ObjectId, name: &str) -> Result<Value> {
        self.ensure_resident(oid)?;
        let objects = self.objects.read();
        let state = objects.get(&oid).ok_or(ReachError::ObjectNotFound(oid))?;
        let slot = self.schema.attr_slot(state.class, name)?;
        Ok(state.attrs[slot].clone())
    }

    /// Write an attribute by name, running the state-sentry chain.
    pub fn set_attr(&self, txn: TxnId, oid: ObjectId, name: &str, value: Value) -> Result<()> {
        self.ensure_resident(oid)?;
        let (class, old) = {
            let mut objects = self.objects.write();
            let state = objects
                .get_mut(&oid)
                .ok_or(ReachError::ObjectNotFound(oid))?;
            let slot = self.schema.attr_slot(state.class, name)?;
            let ty = self.schema.attributes(state.class)?[slot].ty;
            if !value.conforms_to(ty) {
                return Err(ReachError::TypeMismatch {
                    expected: format!("{ty:?}"),
                    got: format!("{:?}", value.value_type()),
                });
            }
            let old = std::mem::replace(&mut state.attrs[slot], value.clone());
            (state.class, old)
        };
        let sentries = self.state_sentries.read().clone();
        if !sentries.is_empty() {
            let change = StateChange {
                txn,
                oid,
                class,
                attribute: name.to_string(),
                old,
                new: value,
            };
            for s in &sentries {
                s.on_change(&change);
            }
        }
        Ok(())
    }

    /// Clone the full state (persistence write-out).
    pub fn snapshot(&self, oid: ObjectId) -> Result<ObjectState> {
        self.ensure_resident(oid)?;
        self.objects
            .read()
            .get(&oid)
            .cloned()
            .ok_or(ReachError::ObjectNotFound(oid))
    }

    /// Overwrite the full state (undo of a rolled-back transaction).
    pub fn restore(&self, oid: ObjectId, state: ObjectState) {
        self.install_existing(oid, state);
    }

    /// Number of resident objects.
    pub fn resident_count(&self) -> usize {
        self.objects.read().len()
    }
}

impl std::fmt::Debug for ObjectSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectSpace")
            .field("resident", &self.resident_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;
    use crate::value::ValueType;
    use reach_common::sync::Mutex;

    fn setup() -> (Arc<Schema>, ObjectSpace, ClassId) {
        let schema = Arc::new(Schema::new());
        let class = ClassBuilder::new(&schema, "Point")
            .attr("x", ValueType::Int, Value::Int(0))
            .attr("y", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        let space = ObjectSpace::new(Arc::clone(&schema));
        (schema, space, class)
    }

    #[test]
    fn create_uses_defaults_and_registers_extent() {
        let (_, space, class) = setup();
        let oid = space.create(TxnId::NULL, class).unwrap();
        assert_eq!(space.get_attr(oid, "x").unwrap(), Value::Int(0));
        assert_eq!(space.extents().extent(class), vec![oid]);
        assert!(space.is_resident(oid));
    }

    #[test]
    fn create_with_overrides_typechecks() {
        let (_, space, class) = setup();
        let oid = space
            .create_with(TxnId::NULL, class, &[("x", Value::Int(7))])
            .unwrap();
        assert_eq!(space.get_attr(oid, "x").unwrap(), Value::Int(7));
        assert!(space
            .create_with(TxnId::NULL, class, &[("x", Value::Str("no".into()))])
            .is_err());
    }

    #[test]
    fn set_attr_runs_state_sentries() {
        let (_, space, class) = setup();
        let oid = space.create(TxnId::NULL, class).unwrap();
        let seen: Arc<Mutex<Vec<StateChange>>> = Arc::new(Mutex::new(Vec::new()));
        struct Recorder(Arc<Mutex<Vec<StateChange>>>);
        impl StateSentry for Recorder {
            fn on_change(&self, c: &StateChange) {
                self.0.lock().push(c.clone());
            }
        }
        space.add_state_sentry(Arc::new(Recorder(Arc::clone(&seen))));
        space
            .set_attr(TxnId::new(3), oid, "y", Value::Int(12))
            .unwrap();
        let changes = seen.lock();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].attribute, "y");
        assert_eq!(changes[0].old, Value::Int(0));
        assert_eq!(changes[0].new, Value::Int(12));
        assert_eq!(changes[0].txn, TxnId::new(3));
    }

    #[test]
    fn delete_unregisters_and_errors_afterwards() {
        let (_, space, class) = setup();
        let oid = space.create(TxnId::NULL, class).unwrap();
        let state = space.delete(TxnId::NULL, oid).unwrap();
        assert_eq!(state.class, class);
        assert!(space.get_attr(oid, "x").is_err());
        assert!(space.extents().extent(class).is_empty());
    }

    #[test]
    fn fault_handler_revives_evicted_objects() {
        let (_, space, class) = setup();
        let oid = space.create(TxnId::NULL, class).unwrap();
        space
            .set_attr(TxnId::NULL, oid, "x", Value::Int(5))
            .unwrap();
        let stored = Arc::new(Mutex::new(HashMap::<ObjectId, ObjectState>::new()));
        // "Persist", then evict.
        stored.lock().insert(oid, space.snapshot(oid).unwrap());
        space.evict(oid).unwrap();
        assert!(!space.is_resident(oid));
        let backing = Arc::clone(&stored);
        space.set_fault_handler(Arc::new(move |o| Ok(backing.lock().get(&o).cloned())));
        // Dereference faults it back in transparently.
        assert_eq!(space.get_attr(oid, "x").unwrap(), Value::Int(5));
        assert!(space.is_resident(oid));
    }

    #[test]
    fn missing_object_without_handler_errors() {
        let (_, space, _) = setup();
        assert!(matches!(
            space.get_attr(ObjectId::new(404), "x"),
            Err(ReachError::ObjectNotFound(_))
        ));
    }

    #[test]
    fn persistence_marking() {
        let (_, space, class) = setup();
        let oid = space.create(TxnId::NULL, class).unwrap();
        assert!(!space.is_persistent(oid));
        space.mark_persistent(oid);
        assert!(space.is_persistent(oid));
        space.delete(TxnId::NULL, oid).unwrap();
        assert!(!space.is_persistent(oid));
    }

    #[test]
    fn object_state_encoding_round_trips() {
        let st = ObjectState {
            class: ClassId::new(9),
            attrs: vec![Value::Int(1), Value::Str("s".into()), Value::Null],
        };
        assert_eq!(ObjectState::decode(&st.encode()).unwrap(), st);
        assert!(ObjectState::decode(&st.encode()[..5]).is_err());
    }
}
