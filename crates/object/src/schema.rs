//! The schema: classes, inheritance, attribute layout, method tables.
//!
//! §6.1 requires that the sentry mechanism cope with the full C++ type
//! system: "inheritance hierarchy including multiple inheritance", state
//! variables, and virtual / non-virtual member functions. The schema
//! models precisely that subset:
//!
//! * classes with any number of base classes (multiple inheritance);
//! * attributes inherited from all bases, with a *flattened layout*
//!   computed per class (duplicate names across bases are a schema
//!   error — the C++ ambiguity rule);
//! * methods declared `virtual` (overridable; dispatch resolves the most
//!   derived implementation) or non-virtual (resolved statically against
//!   the declaring class).

use crate::value::{Value, ValueType};
use reach_common::sync::RwLock;
use reach_common::{ClassId, IdGen, MethodId, ReachError, Result};
use std::collections::{HashMap, HashSet};

/// An attribute declaration.
#[derive(Debug, Clone)]
pub struct AttrDef {
    pub name: String,
    pub ty: ValueType,
    pub default: Value,
}

/// A method declaration (the body lives in the
/// [`MethodRegistry`](crate::method::MethodRegistry)).
#[derive(Debug, Clone)]
pub struct MethodDecl {
    pub id: MethodId,
    pub name: String,
    /// Virtual methods may be overridden in subclasses; dispatch picks
    /// the most derived implementation for the receiver's class.
    pub is_virtual: bool,
}

/// A class definition.
#[derive(Debug, Clone)]
pub struct ClassDef {
    pub id: ClassId,
    pub name: String,
    pub bases: Vec<ClassId>,
    /// Attributes declared directly on this class.
    pub own_attrs: Vec<AttrDef>,
    /// Methods declared directly on this class.
    pub own_methods: Vec<MethodDecl>,
}

/// Resolved, flattened view of a class (computed once at definition).
#[derive(Debug, Clone)]
struct ResolvedClass {
    def: ClassDef,
    /// C3-free linearization: self, then bases depth-first, de-duplicated.
    lineage: Vec<ClassId>,
    /// Flattened attribute layout: slot index by name.
    attr_index: HashMap<String, usize>,
    attrs: Vec<AttrDef>,
    /// Method name -> (declaring class in lineage order, MethodId).
    vtable: HashMap<String, MethodId>,
}

/// The class registry. Thread-safe; classes are immutable once defined.
pub struct Schema {
    classes: RwLock<HashMap<ClassId, ResolvedClass>>,
    by_name: RwLock<HashMap<String, ClassId>>,
    ids: IdGen,
    method_ids: IdGen,
}

impl Schema {
    pub fn new() -> Self {
        Schema {
            classes: RwLock::new(HashMap::new()),
            by_name: RwLock::new(HashMap::new()),
            ids: IdGen::new(),
            method_ids: IdGen::new(),
        }
    }

    /// Issue a method id (used by [`ClassBuilder`](crate::builder::ClassBuilder)).
    pub(crate) fn next_method_id(&self) -> MethodId {
        self.method_ids.next()
    }

    pub(crate) fn next_class_id(&self) -> ClassId {
        self.ids.next()
    }

    /// Register a fully-specified class. Validates bases, detects
    /// duplicate names and attribute ambiguity, and computes the
    /// flattened layout and vtable.
    pub fn define(&self, def: ClassDef) -> Result<ClassId> {
        if self.by_name.read().contains_key(&def.name) {
            return Err(ReachError::SchemaError(format!(
                "class {:?} already defined",
                def.name
            )));
        }
        let classes = self.classes.read();
        for b in &def.bases {
            if !classes.contains_key(b) {
                return Err(ReachError::ClassNotFound(*b));
            }
        }
        // Linearize: self, then each base's lineage depth-first, deduped.
        let mut lineage = vec![def.id];
        let mut seen: HashSet<ClassId> = HashSet::from([def.id]);
        for b in &def.bases {
            for anc in &classes[b].lineage {
                if seen.insert(*anc) {
                    lineage.push(*anc);
                }
            }
        }
        // Flatten attributes: base attributes first (in lineage order,
        // most-derived last so `own_attrs` extend the inherited layout),
        // detecting cross-base ambiguity.
        let mut attrs: Vec<AttrDef> = Vec::new();
        let mut attr_index: HashMap<String, usize> = HashMap::new();
        for cid in lineage.iter().skip(1).rev() {
            let rc = &classes[cid];
            for a in &rc.def.own_attrs {
                if attr_index.contains_key(&a.name) {
                    // Same attribute reachable through two paths of a
                    // diamond is fine (it was deduped by class), but two
                    // *distinct* declarations with one name are ambiguous.
                    continue;
                }
                attr_index.insert(a.name.clone(), attrs.len());
                attrs.push(a.clone());
            }
        }
        for a in &def.own_attrs {
            if attr_index.contains_key(&a.name) {
                return Err(ReachError::SchemaError(format!(
                    "attribute {:?} of class {:?} shadows an inherited attribute",
                    a.name, def.name
                )));
            }
            attr_index.insert(a.name.clone(), attrs.len());
            attrs.push(a.clone());
        }
        // Ambiguity check across distinct bases: two bases contributing
        // the same attribute name from *different* declaring classes.
        {
            let mut from: HashMap<&str, ClassId> = HashMap::new();
            for cid in lineage.iter().skip(1) {
                let rc = &classes[cid];
                for a in &rc.def.own_attrs {
                    if let Some(prev) = from.insert(a.name.as_str(), *cid) {
                        if prev != *cid {
                            return Err(ReachError::SchemaError(format!(
                                "attribute {:?} inherited ambiguously by {:?} (from {} and {})",
                                a.name, def.name, prev, cid
                            )));
                        }
                    }
                }
            }
        }
        // Vtable: walk lineage most-derived first; the first declaration
        // of a name wins (virtual override), non-virtual methods are also
        // reachable but a subclass redeclaration of a non-virtual name is
        // rejected (C++ would silently hide it; we refuse the footgun).
        let mut vtable: HashMap<String, MethodId> = HashMap::new();
        let mut virtuality: HashMap<String, bool> = HashMap::new();
        for m in &def.own_methods {
            if vtable.contains_key(&m.name) {
                return Err(ReachError::SchemaError(format!(
                    "method {:?} declared twice on {:?}",
                    m.name, def.name
                )));
            }
            vtable.insert(m.name.clone(), m.id);
            virtuality.insert(m.name.clone(), m.is_virtual);
        }
        for cid in lineage.iter().skip(1) {
            let rc = &classes[cid];
            for m in &rc.def.own_methods {
                match virtuality.get(&m.name) {
                    None => {
                        vtable.insert(m.name.clone(), m.id);
                        virtuality.insert(m.name.clone(), m.is_virtual);
                    }
                    Some(_) if !m.is_virtual && vtable[&m.name] != m.id => {
                        // Derived class redefined a non-virtual base method.
                        return Err(ReachError::SchemaError(format!(
                            "non-virtual method {:?} of {} cannot be overridden by {:?}",
                            m.name, cid, def.name
                        )));
                    }
                    Some(_) => {} // virtual override: derived wins
                }
            }
        }
        drop(classes);
        let id = def.id;
        let name = def.name.clone();
        self.classes.write().insert(
            id,
            ResolvedClass {
                def,
                lineage,
                attr_index,
                attrs,
                vtable,
            },
        );
        self.by_name.write().insert(name, id);
        Ok(id)
    }

    /// Look up a class id by name.
    pub fn class_by_name(&self, name: &str) -> Result<ClassId> {
        self.by_name
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| ReachError::ClassNameNotFound(name.to_string()))
    }

    /// The class's name.
    pub fn class_name(&self, id: ClassId) -> Result<String> {
        self.with(id, |rc| rc.def.name.clone())
    }

    /// All defined class names.
    pub fn class_names(&self) -> Vec<String> {
        self.by_name.read().keys().cloned().collect()
    }

    fn with<R>(&self, id: ClassId, f: impl FnOnce(&ResolvedClass) -> R) -> Result<R> {
        self.classes
            .read()
            .get(&id)
            .map(f)
            .ok_or(ReachError::ClassNotFound(id))
    }

    /// Whether `sub` is `sup` or inherits from it (transitively).
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.with(sub, |rc| rc.lineage.contains(&sup))
            .unwrap_or(false)
    }

    /// The full lineage (self first, then ancestors).
    pub fn lineage(&self, id: ClassId) -> Result<Vec<ClassId>> {
        self.with(id, |rc| rc.lineage.clone())
    }

    /// The flattened attribute layout.
    pub fn attributes(&self, id: ClassId) -> Result<Vec<AttrDef>> {
        self.with(id, |rc| rc.attrs.clone())
    }

    /// Slot index of an attribute in the flattened layout.
    pub fn attr_slot(&self, id: ClassId, name: &str) -> Result<usize> {
        self.with(id, |rc| rc.attr_index.get(name).copied())?
            .ok_or_else(|| ReachError::AttributeNotFound {
                class: self.class_name(id).unwrap_or_else(|_| id.to_string()),
                attribute: name.to_string(),
            })
    }

    /// Declared type of an attribute.
    pub fn attr_type(&self, id: ClassId, name: &str) -> Result<ValueType> {
        let slot = self.attr_slot(id, name)?;
        self.with(id, |rc| rc.attrs[slot].ty)
    }

    /// Default values for a fresh instance of the class.
    pub fn defaults(&self, id: ClassId) -> Result<Vec<Value>> {
        self.with(id, |rc| {
            rc.attrs.iter().map(|a| a.default.clone()).collect()
        })
    }

    /// Resolve a method name on a class (virtual dispatch through the
    /// lineage). Returns the most derived implementation's id.
    pub fn resolve_method(&self, id: ClassId, name: &str) -> Result<MethodId> {
        self.with(id, |rc| rc.vtable.get(name).copied())?
            .ok_or_else(|| ReachError::MethodNameNotFound {
                class: self.class_name(id).unwrap_or_else(|_| id.to_string()),
                method: name.to_string(),
            })
    }

    /// All method names reachable on a class.
    pub fn method_names(&self, id: ClassId) -> Result<Vec<String>> {
        self.with(id, |rc| {
            let mut v: Vec<String> = rc.vtable.keys().cloned().collect();
            v.sort();
            v
        })
    }

    /// Number of defined classes.
    pub fn len(&self) -> usize {
        self.classes.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Schema {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Schema")
            .field("classes", &self.class_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;

    fn schema() -> Schema {
        Schema::new()
    }

    #[test]
    fn single_inheritance_flattens_attributes() {
        let s = schema();
        let base = ClassBuilder::new(&s, "Base")
            .attr("x", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        let derived = ClassBuilder::new(&s, "Derived")
            .base(base)
            .attr("y", ValueType::Int, Value::Int(1))
            .define()
            .unwrap();
        assert!(s.is_subclass(derived, base));
        assert!(!s.is_subclass(base, derived));
        assert_eq!(s.attr_slot(derived, "x").unwrap(), 0);
        assert_eq!(s.attr_slot(derived, "y").unwrap(), 1);
        assert_eq!(
            s.defaults(derived).unwrap(),
            vec![Value::Int(0), Value::Int(1)]
        );
    }

    #[test]
    fn diamond_inheritance_dedupes_shared_base() {
        let s = schema();
        let top = ClassBuilder::new(&s, "Top")
            .attr("t", ValueType::Int, Value::Int(9))
            .define()
            .unwrap();
        let left = ClassBuilder::new(&s, "Left").base(top).define().unwrap();
        let right = ClassBuilder::new(&s, "Right").base(top).define().unwrap();
        let bottom = ClassBuilder::new(&s, "Bottom")
            .base(left)
            .base(right)
            .define()
            .unwrap();
        // `t` appears exactly once in the flattened layout.
        assert_eq!(s.attributes(bottom).unwrap().len(), 1);
        assert!(s.is_subclass(bottom, top));
        assert_eq!(s.lineage(bottom).unwrap().len(), 4);
    }

    #[test]
    fn ambiguous_multiple_inheritance_is_rejected() {
        let s = schema();
        let a = ClassBuilder::new(&s, "A")
            .attr("n", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        let b = ClassBuilder::new(&s, "B")
            .attr("n", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        let err = ClassBuilder::new(&s, "C").base(a).base(b).define();
        assert!(matches!(err, Err(ReachError::SchemaError(_))));
    }

    #[test]
    fn shadowing_inherited_attribute_is_rejected() {
        let s = schema();
        let base = ClassBuilder::new(&s, "Base")
            .attr("x", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        let err = ClassBuilder::new(&s, "Derived")
            .base(base)
            .attr("x", ValueType::Int, Value::Int(1))
            .define();
        assert!(matches!(err, Err(ReachError::SchemaError(_))));
    }

    #[test]
    fn duplicate_class_name_is_rejected() {
        let s = schema();
        ClassBuilder::new(&s, "Dup").define().unwrap();
        assert!(matches!(
            ClassBuilder::new(&s, "Dup").define(),
            Err(ReachError::SchemaError(_))
        ));
    }

    #[test]
    fn unknown_base_is_rejected() {
        let s = schema();
        let err = ClassBuilder::new(&s, "Orphan")
            .base(ClassId::new(404))
            .define();
        assert!(matches!(err, Err(ReachError::ClassNotFound(_))));
    }

    #[test]
    fn unknown_attribute_lookup_errors() {
        let s = schema();
        let c = ClassBuilder::new(&s, "C").define().unwrap();
        assert!(matches!(
            s.attr_slot(c, "ghost"),
            Err(ReachError::AttributeNotFound { .. })
        ));
    }

    #[test]
    fn class_lookup_by_name() {
        let s = schema();
        let c = ClassBuilder::new(&s, "Named").define().unwrap();
        assert_eq!(s.class_by_name("Named").unwrap(), c);
        assert!(s.class_by_name("Ghost").is_err());
        assert_eq!(s.class_name(c).unwrap(), "Named");
    }
}
