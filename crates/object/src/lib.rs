//! `reach-object` — the reflective object model underneath REACH.
//!
//! The paper's REACH system uses the C++ type system as its data model
//! and a language preprocessor to weave *in-line wrapper sentries* into
//! every extendible class (§6.2). Rust has no preprocessable C++
//! classes, so this crate provides the equivalent capability as a
//! *reflective* model (see DESIGN.md §2): classes are first-class
//! runtime values with single *and multiple* inheritance, attributes,
//! and virtual methods, and every method invocation goes through a
//! [`dispatch::Dispatcher`] whose interception point plays the role of
//! the generated wrapper.
//!
//! The properties §6.1 demands are all honoured here:
//!
//! * *rich types can be sentried* — any class, regardless of shape;
//! * *monitoring is orthogonal to persistence/distribution* — the
//!   [`space::ObjectSpace`] hook points are independent of the sentry
//!   chain;
//! * *member function invocation is trappable* — `before` and `after`
//!   hooks around every dispatch;
//! * *monitored and unmonitored types are declared identically* — the
//!   monitoring bit is flipped at runtime per (class, method), never in
//!   the class definition;
//! * *state access is trappable* — `set_attr` runs the state-change
//!   sentries, which is exactly what the closed commercial systems of §4
//!   could not offer.

pub mod builder;
pub mod dispatch;
pub mod extent;
pub mod method;
pub mod schema;
pub mod space;
pub mod value;

pub use builder::ClassBuilder;
pub use dispatch::{Dispatcher, MethodCall, MethodSentry, SentryPhase};
pub use extent::ExtentRegistry;
pub use method::{MethodBody, MethodCtx, MethodRegistry};
pub use schema::{AttrDef, ClassDef, MethodDecl, Schema};
pub use space::{LifecycleSentry, ObjectSpace, ObjectState, StateChange, StateSentry};
pub use value::{Args, Value, ValueType};
