//! Runtime values and their wire encoding.
//!
//! REACH objects hold dynamically-typed attribute values. The variants
//! mirror what the paper's C++ model can express in rule parameters:
//! primitives, strings, object references, raw bytes and lists.

use reach_common::{ObjectId, ReachError, Result};
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Reference to another object (persistent or transient).
    Ref(ObjectId),
    Bytes(Vec<u8>),
    List(Vec<Value>),
}

/// A shared, immutable argument payload.
///
/// A monitored method call's arguments flow from the dispatcher through
/// the sentry chain into every event occurrence raised for it. Behind
/// an `Arc` slice the values are copied out of the caller's slice
/// exactly once; every hop after that — the `MethodCall`, each
/// registered event type's occurrence, composite constituents, history
/// entries — is a refcount bump instead of a fresh `Vec`. The empty
/// payload is one process-wide allocation, so argument-less events
/// allocate nothing.
#[derive(Debug, Clone)]
pub struct Args(std::sync::Arc<[Value]>);

impl Args {
    /// The shared empty payload (no allocation per call).
    pub fn empty() -> Args {
        static EMPTY: std::sync::OnceLock<std::sync::Arc<[Value]>> = std::sync::OnceLock::new();
        Args(std::sync::Arc::clone(
            EMPTY.get_or_init(|| std::sync::Arc::from(Vec::new())),
        ))
    }

    /// Copy a slice into a fresh shared payload (empty slices reuse the
    /// shared empty allocation).
    pub fn copy_from(values: &[Value]) -> Args {
        if values.is_empty() {
            Args::empty()
        } else {
            Args(std::sync::Arc::from(values))
        }
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::empty()
    }
}

impl std::ops::Deref for Args {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl PartialEq for Args {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl From<Vec<Value>> for Args {
    fn from(values: Vec<Value>) -> Self {
        if values.is_empty() {
            Args::empty()
        } else {
            Args(std::sync::Arc::from(values))
        }
    }
}

impl<'a> IntoIterator for &'a Args {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// The static type of a value (used in attribute declarations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Null,
    Bool,
    Int,
    Float,
    Str,
    Ref,
    Bytes,
    List,
    /// Accepts any runtime value.
    Any,
}

impl Value {
    /// The runtime type tag.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Ref(_) => ValueType::Ref,
            Value::Bytes(_) => ValueType::Bytes,
            Value::List(_) => ValueType::List,
        }
    }

    /// Whether this value conforms to a declared type.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        ty == ValueType::Any || self.value_type() == ty || matches!(self, Value::Null)
    }

    fn mismatch(&self, want: &str) -> ReachError {
        ReachError::TypeMismatch {
            expected: want.to_string(),
            got: format!("{:?}", self.value_type()),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            v => Err(v.mismatch("Bool")),
        }
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            v => Err(v.mismatch("Int")),
        }
    }

    /// Numeric coercion: ints widen to floats.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            v => Err(v.mismatch("Float")),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            v => Err(v.mismatch("Str")),
        }
    }

    pub fn as_ref_id(&self) -> Result<ObjectId> {
        match self {
            Value::Ref(o) => Ok(*o),
            v => Err(v.mismatch("Ref")),
        }
    }

    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            v => Err(v.mismatch("List")),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used by the query engine's comparison operators.
    /// Cross-type comparisons order by type tag; numerics compare by
    /// value across Int/Float.
    pub fn compare(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Int(a), Value::Float(b)) => {
                (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal)
            }
            (Value::Float(a), Value::Int(b)) => {
                a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)
            }
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Ref(a), Value::Ref(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.compare(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    // ---- wire encoding (used by the Persistence PM) ----

    /// Append the encoded value to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Ref(o) => {
                out.push(5);
                out.extend_from_slice(&o.raw().to_le_bytes());
            }
            Value::Bytes(b) => {
                out.push(6);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::List(l) => {
                out.push(7);
                out.extend_from_slice(&(l.len() as u32).to_le_bytes());
                for v in l {
                    v.encode_into(out);
                }
            }
        }
    }

    /// Decode one value from `buf` starting at `*pos`, advancing `*pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Value> {
        let corrupt = || ReachError::Io("corrupt value encoding".into());
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > buf.len() {
                return Err(corrupt());
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag = take(pos, 1)?[0];
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Bool(take(pos, 1)?[0] != 0),
            2 => Value::Int(i64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
            3 => Value::Float(f64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
            4 => {
                let n = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                Value::Str(String::from_utf8(take(pos, n)?.to_vec()).map_err(|_| corrupt())?)
            }
            5 => Value::Ref(ObjectId::new(u64::from_le_bytes(
                take(pos, 8)?.try_into().unwrap(),
            ))),
            6 => {
                let n = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                Value::Bytes(take(pos, n)?.to_vec())
            }
            7 => {
                let n = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                let mut l = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    l.push(Value::decode_from(buf, pos)?);
                }
                Value::List(l)
            }
            _ => return Err(corrupt()),
        })
    }

    /// Encode to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    // ---- memcomparable index encoding (used by the Indexing PM) ----

    /// Encode into a **memcomparable** key: plain `memcmp` on the
    /// encoded bytes orders exactly like [`Value::compare`] — with one
    /// documented exception: `compare` coerces across `Int`/`Float`
    /// numerically, while index keys order the two by type rank. An
    /// index over a schema-typed attribute never mixes the two, which
    /// is why the Indexing PM may use this encoding at all.
    ///
    /// The encoding is also *decodable* ([`Value::decode_index_key`]):
    /// reopening a persistent index rebuilds its in-memory shadow from
    /// the stored keys alone.
    ///
    /// Layout per value: a rank byte (`Null`=0x01 … `List`=0x08, the
    /// [`Value::compare`] type order), then:
    /// * `Int` — the i64 with its sign bit flipped, big-endian (order-
    ///   preserving across negatives);
    /// * `Float` — IEEE bits; positive values get the sign bit set,
    ///   negative values are wholly inverted (the classic total-order
    ///   trick: negatives descend by magnitude, positives ascend);
    /// * `Str`/`Bytes` — content with `0x00` escaped as `0x00 0xFF`,
    ///   terminated by `0x00 0x00` (a proper prefix sorts first, and no
    ///   content can sort below the terminator);
    /// * `List` — each element's full encoding, then a `0x00`
    ///   terminator byte, which sorts below every rank byte so a prefix
    ///   list sorts first — matching `compare`'s elementwise-then-length
    ///   order.
    pub fn index_key_into(&self, out: &mut Vec<u8>) {
        const SIGN: u64 = 1 << 63;
        match self {
            Value::Null => out.push(0x01),
            Value::Bool(b) => {
                out.push(0x02);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(0x03);
                out.extend_from_slice(&((*i as u64) ^ SIGN).to_be_bytes());
            }
            Value::Float(f) => {
                out.push(0x04);
                let bits = f.to_bits();
                let ordered = if bits & SIGN == 0 { bits | SIGN } else { !bits };
                out.extend_from_slice(&ordered.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(0x05);
                escape_into(s.as_bytes(), out);
            }
            Value::Ref(o) => {
                out.push(0x06);
                out.extend_from_slice(&o.raw().to_be_bytes());
            }
            Value::Bytes(b) => {
                out.push(0x07);
                escape_into(b, out);
            }
            Value::List(l) => {
                out.push(0x08);
                for v in l {
                    v.index_key_into(out);
                }
                out.push(0x00);
            }
        }
    }

    /// [`Value::index_key_into`] to a fresh buffer.
    pub fn index_key(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.index_key_into(&mut out);
        out
    }

    /// Decode one memcomparable key back into a value (the whole buffer
    /// must be consumed — index keys are stored one per entry).
    pub fn decode_index_key(buf: &[u8]) -> Result<Value> {
        let mut pos = 0usize;
        let v = decode_index_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(ReachError::Io("trailing bytes after index key".into()));
        }
        Ok(v)
    }
}

/// `0x00`-escape `data` into `out` and terminate (see
/// [`Value::index_key_into`]).
fn escape_into(data: &[u8], out: &mut Vec<u8>) {
    for &b in data {
        if b == 0x00 {
            out.extend_from_slice(&[0x00, 0xFF]);
        } else {
            out.push(b);
        }
    }
    out.extend_from_slice(&[0x00, 0x00]);
}

fn unescape_from(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let corrupt = || ReachError::Io("corrupt index key".into());
    let mut out = Vec::new();
    loop {
        let b = *buf.get(*pos).ok_or_else(corrupt)?;
        *pos += 1;
        if b != 0x00 {
            out.push(b);
            continue;
        }
        match *buf.get(*pos).ok_or_else(corrupt)? {
            0x00 => {
                *pos += 1;
                return Ok(out);
            }
            0xFF => {
                *pos += 1;
                out.push(0x00);
            }
            _ => return Err(corrupt()),
        }
    }
}

fn decode_index_from(buf: &[u8], pos: &mut usize) -> Result<Value> {
    const SIGN: u64 = 1 << 63;
    let corrupt = || ReachError::Io("corrupt index key".into());
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > buf.len() {
            return Err(corrupt());
        }
        let s = &buf[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let rank = take(pos, 1)?[0];
    Ok(match rank {
        0x01 => Value::Null,
        0x02 => Value::Bool(take(pos, 1)?[0] != 0),
        0x03 => {
            let u = u64::from_be_bytes(take(pos, 8)?.try_into().unwrap());
            Value::Int((u ^ SIGN) as i64)
        }
        0x04 => {
            let ordered = u64::from_be_bytes(take(pos, 8)?.try_into().unwrap());
            let bits = if ordered & SIGN != 0 {
                ordered ^ SIGN
            } else {
                !ordered
            };
            Value::Float(f64::from_bits(bits))
        }
        0x05 => {
            let bytes = unescape_from(buf, pos)?;
            Value::Str(String::from_utf8(bytes).map_err(|_| corrupt())?)
        }
        0x06 => Value::Ref(ObjectId::new(u64::from_be_bytes(
            take(pos, 8)?.try_into().unwrap(),
        ))),
        0x07 => Value::Bytes(unescape_from(buf, pos)?),
        0x08 => {
            let mut l = Vec::new();
            loop {
                if *buf.get(*pos).ok_or_else(corrupt)? == 0x00 {
                    *pos += 1;
                    break;
                }
                l.push(decode_index_from(buf, pos)?);
            }
            Value::List(l)
        }
        _ => return Err(corrupt()),
    })
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
        Value::Ref(_) => 5,
        Value::Bytes(_) => 6,
        Value::List(_) => 7,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(o) => write!(f, "{o}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<ObjectId> for Value {
    fn from(o: ObjectId) -> Self {
        Value::Ref(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("héllo".into()),
            Value::Ref(ObjectId::new(99)),
            Value::Bytes(vec![0, 1, 2, 255]),
            Value::List(vec![Value::Int(1), Value::Str("two".into()), Value::Null]),
        ]
    }

    #[test]
    fn every_value_round_trips() {
        for v in samples() {
            let enc = v.encode();
            let mut pos = 0;
            let dec = Value::decode_from(&enc, &mut pos).unwrap();
            assert_eq!(dec, v);
            assert_eq!(pos, enc.len(), "decoder must consume exactly the encoding");
        }
    }

    #[test]
    fn concatenated_values_decode_in_sequence() {
        let mut buf = Vec::new();
        for v in samples() {
            v.encode_into(&mut buf);
        }
        let mut pos = 0;
        for v in samples() {
            assert_eq!(Value::decode_from(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_encoding_is_an_error() {
        let enc = Value::Str("hello world".into()).encode();
        let mut pos = 0;
        assert!(Value::decode_from(&enc[..enc.len() - 2], &mut pos).is_err());
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::Int(7).as_str().is_err());
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Ref(ObjectId::new(4)).as_ref_id().unwrap().raw(), 4);
    }

    #[test]
    fn null_conforms_to_everything() {
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Str));
        assert!(Value::Int(1).conforms_to(ValueType::Any));
        assert!(!Value::Int(1).conforms_to(ValueType::Str));
    }

    #[test]
    fn numeric_comparison_crosses_int_float() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Less);
        assert_eq!(Value::Float(3.0).compare(&Value::Int(3)), Equal);
        assert_eq!(
            Value::Str("b".into()).compare(&Value::Str("a".into())),
            Greater
        );
    }

    #[test]
    fn list_comparison_is_lexicographic() {
        use std::cmp::Ordering::*;
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert_eq!(a.compare(&b), Less);
        assert_eq!(c.compare(&a), Less);
        assert_eq!(a.compare(&a), Equal);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
    }

    /// A spread of values per type, each list already in `compare`
    /// order, for the memcomparable ordering checks.
    fn ordered_ladder() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(-1_000_000),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(1),
            Value::Int(7_777_777),
            Value::Int(i64::MAX),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-1e300),
            Value::Float(-2.5),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(1e-30),
            Value::Float(2.5),
            Value::Float(1e300),
            Value::Float(f64::INFINITY),
            Value::Str("".into()),
            Value::Str("a".into()),
            Value::Str("a\0".into()),
            Value::Str("a\0b".into()),
            Value::Str("ab".into()),
            Value::Str("b".into()),
            Value::Ref(ObjectId::new(0)),
            Value::Ref(ObjectId::new(1)),
            Value::Ref(ObjectId::new(u64::MAX)),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0x00]),
            Value::Bytes(vec![0x00, 0x00]),
            Value::Bytes(vec![0x00, 0x01]),
            Value::Bytes(vec![0x01]),
            Value::Bytes(vec![0xFF, 0xFF]),
            Value::List(vec![]),
            Value::List(vec![Value::Int(1)]),
            Value::List(vec![Value::Int(1), Value::Int(2)]),
            Value::List(vec![Value::Int(2)]),
            Value::List(vec![Value::Str("a\0".into()), Value::Null]),
        ]
    }

    #[test]
    fn index_keys_order_like_compare() {
        // memcmp on encoded keys must agree with Value::compare for
        // every pair — except Int×Float, where compare coerces
        // numerically and the index orders by type rank (documented;
        // schema-typed attributes never mix the two in one index).
        let ladder = ordered_ladder();
        for a in &ladder {
            for b in &ladder {
                if matches!(
                    (a, b),
                    (Value::Int(_), Value::Float(_)) | (Value::Float(_), Value::Int(_))
                ) {
                    continue;
                }
                // -0.0 and 0.0 compare Equal but encode differently;
                // that refinement of compare's order is harmless (both
                // directions of a range bound still capture both).
                if let (Value::Float(x), Value::Float(y)) = (a, b) {
                    if *x == 0.0 && *y == 0.0 {
                        continue;
                    }
                }
                assert_eq!(
                    a.index_key().cmp(&b.index_key()),
                    a.compare(b),
                    "memcmp order diverges from compare for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn index_keys_round_trip() {
        for v in ordered_ladder().into_iter().chain(samples()) {
            let key = v.index_key();
            let dec = Value::decode_index_key(&key).unwrap();
            // Bit-exact for floats (PartialEq would pass 0.0 == -0.0).
            if let (Value::Float(a), Value::Float(b)) = (&v, &dec) {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert_eq!(dec, v);
            }
        }
    }

    #[test]
    fn index_key_rejects_corruption() {
        assert!(Value::decode_index_key(&[]).is_err());
        assert!(Value::decode_index_key(&[0x99]).is_err());
        // Truncated string (no terminator).
        assert!(Value::decode_index_key(&[0x05, b'a']).is_err());
        // Invalid escape.
        assert!(Value::decode_index_key(&[0x05, 0x00, 0x07]).is_err());
        // Trailing garbage.
        assert!(Value::decode_index_key(&[0x01, 0x01]).is_err());
        // Unterminated list.
        assert!(Value::decode_index_key(&[0x08, 0x01]).is_err());
    }
}
