//! Class extents: the set of live objects per class.
//!
//! The Query PM iterates extents; rules with class-level events consult
//! them too. Extents track *direct* instances; deep extents (including
//! subclass instances) are computed through the schema's lineage.

use crate::schema::Schema;
use reach_common::sync::RwLock;
use reach_common::{ClassId, ObjectId};
use std::collections::{BTreeSet, HashMap};

/// Registry of per-class object sets.
pub struct ExtentRegistry {
    extents: RwLock<HashMap<ClassId, BTreeSet<ObjectId>>>,
}

impl ExtentRegistry {
    pub fn new() -> Self {
        ExtentRegistry {
            extents: RwLock::new(HashMap::new()),
        }
    }

    /// Record a new instance of `class`.
    pub fn register(&self, class: ClassId, oid: ObjectId) {
        self.extents.write().entry(class).or_default().insert(oid);
    }

    /// Remove an instance.
    pub fn unregister(&self, class: ClassId, oid: ObjectId) {
        if let Some(set) = self.extents.write().get_mut(&class) {
            set.remove(&oid);
        }
    }

    /// Direct instances of `class`, in id order.
    pub fn extent(&self, class: ClassId) -> Vec<ObjectId> {
        self.extents
            .read()
            .get(&class)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Instances of `class` and every subclass, in id order.
    pub fn extent_deep(&self, schema: &Schema, class: ClassId) -> Vec<ObjectId> {
        let extents = self.extents.read();
        let mut out = BTreeSet::new();
        for (cid, set) in extents.iter() {
            if schema.is_subclass(*cid, class) {
                out.extend(set.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Number of direct instances.
    pub fn count(&self, class: ClassId) -> usize {
        self.extents.read().get(&class).map_or(0, |s| s.len())
    }
}

impl Default for ExtentRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;

    #[test]
    fn extent_tracks_register_unregister() {
        let r = ExtentRegistry::new();
        let c = ClassId::new(1);
        r.register(c, ObjectId::new(10));
        r.register(c, ObjectId::new(5));
        assert_eq!(r.extent(c), vec![ObjectId::new(5), ObjectId::new(10)]);
        r.unregister(c, ObjectId::new(5));
        assert_eq!(r.extent(c), vec![ObjectId::new(10)]);
        assert_eq!(r.count(c), 1);
    }

    #[test]
    fn deep_extent_includes_subclasses() {
        let s = Schema::new();
        let base = ClassBuilder::new(&s, "Base").define().unwrap();
        let derived = ClassBuilder::new(&s, "Derived")
            .base(base)
            .define()
            .unwrap();
        let other = ClassBuilder::new(&s, "Other").define().unwrap();
        let r = ExtentRegistry::new();
        r.register(base, ObjectId::new(1));
        r.register(derived, ObjectId::new(2));
        r.register(other, ObjectId::new(3));
        assert_eq!(
            r.extent_deep(&s, base),
            vec![ObjectId::new(1), ObjectId::new(2)]
        );
        assert_eq!(r.extent(base), vec![ObjectId::new(1)]);
    }
}
