//! Method bodies and their registry.
//!
//! A method body is a Rust closure over a [`MethodCtx`], which gives it
//! the receiver, the arguments, the object space (for state access and
//! creating objects) and the dispatcher (for nested method calls — the
//! equivalent of one C++ member function calling another).

use crate::dispatch::Dispatcher;
use crate::space::ObjectSpace;
use crate::value::Value;
use reach_common::sync::RwLock;
use reach_common::{MethodId, ObjectId, ReachError, Result, TxnId};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything a method body can touch.
pub struct MethodCtx<'a> {
    pub space: &'a ObjectSpace,
    pub dispatcher: &'a Dispatcher,
    pub txn: TxnId,
    pub self_oid: ObjectId,
    pub args: &'a [Value],
}

impl MethodCtx<'_> {
    /// Read an attribute of the receiver.
    pub fn get(&self, attr: &str) -> Result<Value> {
        self.space.get_attr(self.self_oid, attr)
    }

    /// Write an attribute of the receiver (state sentries fire).
    pub fn set(&self, attr: &str, value: Value) -> Result<()> {
        self.space.set_attr(self.txn, self.self_oid, attr, value)
    }

    /// Positional argument, or `Null` when absent.
    pub fn arg(&self, idx: usize) -> Value {
        self.args.get(idx).cloned().unwrap_or(Value::Null)
    }

    /// Invoke another method in the same transaction (nested dispatch —
    /// its events are detected like any other).
    pub fn call(&self, receiver: ObjectId, method: &str, args: &[Value]) -> Result<Value> {
        self.dispatcher
            .invoke(self.space, self.txn, receiver, method, args)
    }
}

/// A method implementation.
pub type MethodBody = Arc<dyn Fn(&MethodCtx<'_>) -> Result<Value> + Send + Sync>;

/// Registry mapping method ids to bodies.
pub struct MethodRegistry {
    bodies: RwLock<HashMap<MethodId, MethodBody>>,
}

impl MethodRegistry {
    pub fn new() -> Self {
        MethodRegistry {
            bodies: RwLock::new(HashMap::new()),
        }
    }

    /// Register (or replace) the body for a method id.
    pub fn register(&self, id: MethodId, body: MethodBody) {
        self.bodies.write().insert(id, body);
    }

    /// Convenience: register from a plain closure.
    pub fn register_fn<F>(&self, id: MethodId, f: F)
    where
        F: Fn(&MethodCtx<'_>) -> Result<Value> + Send + Sync + 'static,
    {
        self.register(id, Arc::new(f));
    }

    /// Fetch a body.
    pub fn body(&self, id: MethodId) -> Result<MethodBody> {
        self.bodies
            .read()
            .get(&id)
            .cloned()
            .ok_or(ReachError::MethodNotFound(id))
    }

    pub fn len(&self) -> usize {
        self.bodies.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MethodRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip_and_missing() {
        let r = MethodRegistry::new();
        let id = MethodId::new(1);
        assert!(r.body(id).is_err());
        r.register_fn(id, |_| Ok(Value::Int(42)));
        assert!(r.body(id).is_ok());
        assert_eq!(r.len(), 1);
    }
}
