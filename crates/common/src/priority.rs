//! Rule priorities (the `prio 5;` clause of the rule language, §6.1).
//!
//! Higher numeric value means *more* urgent — a rule with `prio 10` fires
//! before a rule with `prio 5`. Ties are broken by the ECA-manager's
//! timestamp policy (§6.4), which lives in `reach-core`.

use std::fmt;

/// A rule priority. Default is 0 (lowest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub i32);

impl Priority {
    /// The neutral priority every rule gets unless it says otherwise.
    pub const DEFAULT: Priority = Priority(0);
    /// The lowest expressible priority.
    pub const MIN: Priority = Priority(i32::MIN);
    /// The highest expressible priority.
    pub const MAX: Priority = Priority(i32::MAX);

    /// A priority at `level` (higher fires first).
    #[inline]
    pub const fn new(level: i32) -> Self {
        Priority(level)
    }

    /// The numeric level.
    #[inline]
    pub const fn level(self) -> i32 {
        self.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio {}", self.0)
    }
}

impl From<i32> for Priority {
    fn from(level: i32) -> Self {
        Priority(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_value_is_more_urgent() {
        assert!(Priority::new(10) > Priority::new(5));
        assert!(Priority::MAX > Priority::DEFAULT);
        assert!(Priority::MIN < Priority::new(-1));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Priority::default(), Priority::new(0));
    }

    #[test]
    fn displays_like_the_rule_language() {
        assert_eq!(Priority::new(5).to_string(), "prio 5");
    }
}
