//! Schedule-perturbing synchronization layer.
//!
//! Every crate in the workspace takes its `Mutex` / `RwLock` / `Condvar`
//! from this module instead of `parking_lot` directly. In the default
//! build the module is a **zero-cost re-export** of `parking_lot` — no
//! wrapper types, no branches, nothing for the optimizer to even remove.
//!
//! With the `sched` cargo feature (enabled by the concurrency test
//! suites and the `exp_stress` harness), the same names resolve to thin
//! wrappers in which **every acquire and release is a perturbation
//! point**: when the seeded scheduler is armed, each point consults a
//! pure function of `(seed, thread slot, per-thread op index)` and
//! either proceeds, yields the OS scheduler, or sleeps a few
//! microseconds. The same seed therefore replays the same interleaving
//! *pressure*, which is what turns "ran the stress test 50 times and it
//! passed" into "seed `0x5EED` fails — go look".
//!
//! The scheduler is armed either explicitly ([`sched::arm`] /
//! [`sched::run_seeded`]) or by setting the `REACH_SCHED_SEED`
//! environment variable before the process starts. While armed, threads
//! that registered via [`sched::register_thread`] also append every
//! perturbation point to a global **acquisition trace**; per-slot trace
//! streams are fully deterministic for a fixed seed (decisions depend
//! only on `(seed, slot, index)`, and a thread's own operation sequence
//! is program-ordered), which the harness checks by replaying a seed and
//! comparing [`sched::by_slot`] views.
//!
//! Unregistered threads are still perturbed while the scheduler is
//! armed, but do not pollute the trace — test binaries run many tests
//! concurrently, and the trace must describe the workload under test,
//! not its neighbours.

// ------------------------------------------------------------------
// Default build: pure re-export. The perturbing layer "compiles away"
// by never being compiled in the first place.
// ------------------------------------------------------------------

#[cfg(not(feature = "sched"))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(feature = "sched")]
pub use parking_lot::WaitTimeoutResult;

#[cfg(feature = "sched")]
pub use instrumented::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The seeded scheduler controlling the perturbation points.
///
/// The full API exists in every build so tests and harnesses never need
/// `cfg` gymnastics; without the `sched` feature the functions are
/// no-ops, [`sched::enabled`] returns `false`, and traces are empty.
pub mod sched {
    /// One synchronization operation kind, as recorded in the trace.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum SyncOp {
        /// A blocking `Mutex::lock` (or `try_lock`) acquisition point.
        MutexLock,
        /// A `Mutex` guard release.
        MutexUnlock,
        /// A blocking `RwLock::read` (or `try_read`) acquisition point.
        RwRead,
        /// A blocking `RwLock::write` (or `try_write`) acquisition point.
        RwWrite,
        /// Release of a read guard.
        RwUnlockRead,
        /// Release of a write guard.
        RwUnlockWrite,
        /// Entry into a `Condvar` wait (any flavour).
        CondWait,
    }

    /// What the scheduler decided to do at a perturbation point.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Decision {
        /// Proceed immediately.
        Run,
        /// `std::thread::yield_now()`.
        Yield,
        /// Sleep for the given number of microseconds (1..=50).
        Sleep(u16),
    }

    /// One entry of the acquisition trace.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TraceEvent {
        /// The registered slot of the thread that hit the point.
        pub slot: u64,
        /// The thread-local operation index (0-based, per arming epoch).
        pub index: u64,
        /// The operation that hit the point.
        pub op: SyncOp,
        /// What the scheduler injected.
        pub decision: Decision,
    }

    /// Group a trace into deterministic per-slot streams (sorted by
    /// slot; each stream sorted by per-thread index). Two runs of the
    /// same seeded workload produce identical values here even though
    /// the global append order races.
    pub fn by_slot(trace: &[TraceEvent]) -> std::collections::BTreeMap<u64, Vec<TraceEvent>> {
        let mut map: std::collections::BTreeMap<u64, Vec<TraceEvent>> =
            std::collections::BTreeMap::new();
        for e in trace {
            map.entry(e.slot).or_default().push(*e);
        }
        for stream in map.values_mut() {
            stream.sort_by_key(|e| e.index);
        }
        map
    }

    /// A stable fingerprint of the per-slot view of a trace (FNV-1a over
    /// the sorted streams) — handy for printing and quick comparison.
    pub fn fingerprint(trace: &[TraceEvent]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (slot, stream) in by_slot(trace) {
            mix(slot);
            for e in stream {
                mix(e.index);
                mix(e.op as u64);
                mix(match e.decision {
                    Decision::Run => 0,
                    Decision::Yield => 1,
                    Decision::Sleep(us) => 2 + us as u64,
                });
            }
        }
        h
    }

    /// Whether the perturbing layer is compiled in at all.
    pub const fn enabled() -> bool {
        cfg!(feature = "sched")
    }

    #[cfg(feature = "sched")]
    pub use armed::{arm, armed_seed, disarm, perturb, register_thread, run_seeded, take_trace};

    #[cfg(feature = "sched")]
    mod armed {
        use super::{Decision, SyncOp, TraceEvent};
        use std::cell::Cell;
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::{Mutex as StdMutex, Once};

        static ARMED: AtomicBool = AtomicBool::new(false);
        static SEED: AtomicU64 = AtomicU64::new(0);
        /// Bumped on every `arm`; lazily resets per-thread state.
        static EPOCH: AtomicU64 = AtomicU64::new(0);
        /// Auto-assigned slots start far above anything a test registers.
        static NEXT_AUTO_SLOT: AtomicU64 = AtomicU64::new(1 << 32);
        static TRACE: StdMutex<Vec<TraceEvent>> = StdMutex::new(Vec::new());
        /// Serializes `run_seeded` sections across a test binary.
        static EXCLUSIVE: StdMutex<()> = StdMutex::new(());
        static ENV_ARM: Once = Once::new();

        thread_local! {
            /// (epoch, slot, next op index, registered?)
            static THREAD: Cell<(u64, u64, u64, bool)> = const { Cell::new((0, 0, 0, false)) };
        }

        /// Arm the scheduler with `seed`: clears the trace, bumps the
        /// epoch (resetting per-thread op indices) and turns every
        /// perturbation point live.
        pub fn arm(seed: u64) {
            let mut trace = TRACE.lock().unwrap_or_else(|e| e.into_inner());
            trace.clear();
            SEED.store(seed, Ordering::Relaxed);
            EPOCH.fetch_add(1, Ordering::Relaxed);
            ARMED.store(true, Ordering::SeqCst);
        }

        /// Disarm the scheduler; perturbation points go back to a single
        /// relaxed load + branch.
        pub fn disarm() {
            ARMED.store(false, Ordering::SeqCst);
        }

        /// The seed currently armed, if any.
        pub fn armed_seed() -> Option<u64> {
            ARMED
                .load(Ordering::Relaxed)
                .then(|| SEED.load(Ordering::Relaxed))
        }

        /// Give the calling thread a deterministic trace slot for the
        /// current arming epoch (and reset its op index). Workload
        /// threads call this with a stable id (their spawn index) so
        /// their trace streams are comparable across runs.
        pub fn register_thread(slot: u64) {
            let epoch = EPOCH.load(Ordering::Relaxed);
            THREAD.with(|t| t.set((epoch, slot, 0, true)));
        }

        /// Drain the acquisition trace accumulated since the last `arm`.
        pub fn take_trace() -> Vec<TraceEvent> {
            std::mem::take(&mut *TRACE.lock().unwrap_or_else(|e| e.into_inner()))
        }

        /// Arm with `seed`, run `f`, disarm, and return `f`'s result
        /// together with the trace. Seeded sections from different tests
        /// in one binary are serialized on an internal lock so their
        /// traces do not interleave.
        pub fn run_seeded<R>(seed: u64, f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
            let _x = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
            arm(seed);
            let out = f();
            disarm();
            (out, take_trace())
        }

        /// SplitMix64 finalizer.
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// The perturbation point: called by the instrumented types on
        /// every acquire/release. Disarmed cost is one relaxed load.
        #[inline]
        pub fn perturb(op: SyncOp) {
            ENV_ARM.call_once(|| {
                if let Ok(v) = std::env::var("REACH_SCHED_SEED") {
                    if let Some(seed) = super::super::parse_seed(&v) {
                        arm(seed);
                        eprintln!("[sched] armed from REACH_SCHED_SEED={seed:#x}");
                    }
                }
            });
            if !ARMED.load(Ordering::Relaxed) {
                return;
            }
            let epoch = EPOCH.load(Ordering::Relaxed);
            let (slot, index, registered) = THREAD.with(|t| {
                let (e, mut slot, mut idx, mut reg) = t.get();
                if e != epoch {
                    // New arming epoch: unregistered identity, fresh index.
                    slot = NEXT_AUTO_SLOT.fetch_add(1, Ordering::Relaxed);
                    idx = 0;
                    reg = false;
                }
                t.set((epoch, slot, idx + 1, reg));
                (slot, idx, reg)
            });
            let seed = SEED.load(Ordering::Relaxed);
            let r = mix(seed
                ^ slot.wrapping_mul(0x9e3779b97f4a7c15)
                ^ index.wrapping_mul(0xd1b54a32d192ed03)
                ^ (op as u64).wrapping_mul(0x2545f4914f6cdd1d));
            let decision = match r % 8 {
                0..=3 => Decision::Run,
                4 | 5 => Decision::Yield,
                _ => Decision::Sleep((1 + (r >> 8) % 50) as u16),
            };
            if registered {
                TRACE
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(TraceEvent {
                        slot,
                        index,
                        op,
                        decision,
                    });
            }
            match decision {
                Decision::Run => {}
                Decision::Yield => std::thread::yield_now(),
                Decision::Sleep(us) => {
                    std::thread::sleep(std::time::Duration::from_micros(us as u64))
                }
            }
        }
    }

    // -------------------------------------------------- disabled stubs

    /// Arm the scheduler (no-op without the `sched` feature).
    #[cfg(not(feature = "sched"))]
    pub fn arm(_seed: u64) {}

    /// Disarm the scheduler (no-op without the `sched` feature).
    #[cfg(not(feature = "sched"))]
    pub fn disarm() {}

    /// The armed seed (always `None` without the `sched` feature).
    #[cfg(not(feature = "sched"))]
    pub fn armed_seed() -> Option<u64> {
        None
    }

    /// Register the calling thread (no-op without the `sched` feature).
    #[cfg(not(feature = "sched"))]
    pub fn register_thread(_slot: u64) {}

    /// Drain the trace (always empty without the `sched` feature).
    #[cfg(not(feature = "sched"))]
    pub fn take_trace() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Run `f` (unperturbed without the `sched` feature); trace is empty.
    #[cfg(not(feature = "sched"))]
    pub fn run_seeded<R>(_seed: u64, f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
        (f(), Vec::new())
    }
}

/// Parse a seed from decimal or `0x`-prefixed hex.
pub(crate) fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

// ------------------------------------------------------------------
// Instrumented wrappers (sched builds only).
// ------------------------------------------------------------------

#[cfg(feature = "sched")]
mod instrumented {
    use super::sched::{perturb, SyncOp};
    use super::WaitTimeoutResult;
    use std::time::{Duration, Instant};

    /// A `parking_lot::Mutex` whose acquire/release are perturbation
    /// points (see the module docs).
    pub struct Mutex<T: ?Sized> {
        inner: parking_lot::Mutex<T>,
    }

    /// Guard for [`Mutex`]; its drop is a release perturbation point.
    pub struct MutexGuard<'a, T: ?Sized> {
        // `Option` so `Condvar::wait` can reach the inner guard and so
        // `Drop` can release *before* perturbing the handoff.
        inner: Option<parking_lot::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Create a new instrumented mutex.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: parking_lot::Mutex::new(value),
            }
        }

        /// Consume the mutex, returning its data.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire, perturbing the schedule first when armed.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            perturb(SyncOp::MutexLock);
            MutexGuard {
                inner: Some(self.inner.lock()),
            }
        }

        /// Non-blocking acquire (still a perturbation point).
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            perturb(SyncOp::MutexLock);
            self.inner.try_lock().map(|g| MutexGuard { inner: Some(g) })
        }

        /// Mutable access without locking.
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            perturb(SyncOp::MutexUnlock);
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    /// A `parking_lot::Condvar` whose waits are perturbation points.
    #[derive(Default)]
    pub struct Condvar {
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        /// Create a new instrumented condvar.
        pub const fn new() -> Self {
            Condvar {
                inner: parking_lot::Condvar::new(),
            }
        }

        /// Block until notified.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            perturb(SyncOp::CondWait);
            self.inner.wait(guard.inner.as_mut().expect("guard taken"));
        }

        /// Block until notified or `timeout` elapses.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            perturb(SyncOp::CondWait);
            self.inner
                .wait_for(guard.inner.as_mut().expect("guard taken"), timeout)
        }

        /// Block until notified or `deadline` passes.
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            perturb(SyncOp::CondWait);
            self.inner
                .wait_until(guard.inner.as_mut().expect("guard taken"), deadline)
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// A `parking_lot::RwLock` whose acquire/release are perturbation
    /// points.
    pub struct RwLock<T: ?Sized> {
        inner: parking_lot::RwLock<T>,
    }

    /// Shared guard for [`RwLock`]; drop is a release point.
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    }

    /// Exclusive guard for [`RwLock`]; drop is a release point.
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    }

    impl<T> RwLock<T> {
        /// Create a new instrumented rwlock.
        pub const fn new(value: T) -> Self {
            RwLock {
                inner: parking_lot::RwLock::new(value),
            }
        }

        /// Consume the lock, returning its data.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Shared acquire, perturbing first when armed.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            perturb(SyncOp::RwRead);
            RwLockReadGuard {
                inner: Some(self.inner.read()),
            }
        }

        /// Exclusive acquire, perturbing first when armed.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            perturb(SyncOp::RwWrite);
            RwLockWriteGuard {
                inner: Some(self.inner.write()),
            }
        }

        /// Non-blocking shared acquire (still a perturbation point).
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            perturb(SyncOp::RwRead);
            self.inner
                .try_read()
                .map(|g| RwLockReadGuard { inner: Some(g) })
        }

        /// Non-blocking exclusive acquire (still a perturbation point).
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            perturb(SyncOp::RwWrite);
            self.inner
                .try_write()
                .map(|g| RwLockWriteGuard { inner: Some(g) })
        }

        /// Mutable access without locking.
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            perturb(SyncOp::RwUnlockRead);
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            perturb(SyncOp::RwUnlockWrite);
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn parse_seed_accepts_dec_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed(" 0xff "), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn wrappers_behave_like_locks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
        assert!(rw.try_read().is_some());
        assert!(rw.try_write().is_some());
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            if cv.wait_for(&mut done, Duration::from_secs(5)).timed_out() {
                panic!("condvar wait timed out");
            }
        }
        h.join().unwrap();
    }
}
