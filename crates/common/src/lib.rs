//! Common kernel types shared by every layer of the REACH active OODBMS.
//!
//! This crate deliberately has no knowledge of storage, objects,
//! transactions or rules; it only provides the vocabulary the other
//! crates speak: strongly-typed identifiers, the unified error type,
//! the virtual clock used for temporal events, rule priorities, the
//! deterministic fault injector, the observability registry
//! ([`obs::MetricsRegistry`]) every layer records into, and the
//! schedule-perturbing synchronization layer ([`sync`]) all crates take
//! their locks from.

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod obs;
pub mod priority;
pub mod rng;
pub mod sync;

pub use clock::{Clock, TimePoint, VirtualClock};
pub use error::{ReachError, Result};
pub use fault::{FaultInjector, FaultMode, FaultPlan, FaultPoint, WriteOutcome};
pub use ids::{
    shard_of, ClassId, EventTypeId, IdGen, MethodId, ObjectId, PageId, RuleId, Timestamp, TxnId,
};
pub use metrics::{Counter, Histogram, HistogramSnapshot};
pub use obs::{MetricsRegistry, MetricsSnapshot, Span, Stage, StageSnapshot, Trace};
pub use priority::Priority;
pub use rng::{announce_seed, seed_from_env, SplitMix64};
