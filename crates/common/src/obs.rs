//! The observability registry: per-stage firing-path spans, component
//! counters, and the one switch that turns it all on.
//!
//! The firing path of the paper's Figure 2 — sentry → primitive
//! ECA-manager → compositor → rule engine → subtransaction → WAL force
//! — is modelled as six [`Stage`]s. Each stage owns an ungated event
//! counter mirror, a latency [`Histogram`] and a bounded ring of recent
//! [`Span`]s. A single [`MetricsRegistry`] is created by the storage
//! manager (the lowest layer) and threaded *up* through the
//! transaction manager, the OODB sentries and the REACH core, so every
//! layer records into the same instance and `exp_torture`,
//! `exp_observe` and `Reach::metrics_snapshot()` all report from one
//! source of truth.
//!
//! **Overhead contract.** The registry is created disabled. Every
//! gated record path first calls [`MetricsRegistry::on`] — a single
//! relaxed atomic load plus one branch — and only then touches a clock
//! or an atomic. That keeps E4's "useless overhead" story intact: an
//! unmonitored method call through an instrumented-but-disabled system
//! pays one predictable branch, nothing more. A handful of counters
//! that pre-date this subsystem (buffer-pool hits/misses, engine rule
//! stats) remain ungated because existing code reads them without
//! enabling observability; they are plain relaxed adds and were always
//! unconditionally on.

use crate::metrics::{fmt_ns, Counter, Histogram, HistogramSnapshot};
use crate::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Capacity of each per-stage span ring. Oldest spans are overwritten
/// once a stage has recorded more than this many.
pub const SPAN_RING_CAPACITY: usize = 256;

/// The six stages of the firing path (Figure 2, left to right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sentry interception of a raw operation (method call, state
    /// change, lifecycle transition, flow point).
    Sentry,
    /// Primitive ECA-manager delivery: event typed, history recorded,
    /// directly-attached rules collected.
    EcaManager,
    /// Composite event automata advance (feed, match, completion).
    Compositor,
    /// Rule engine firing (condition + action scheduling) for one
    /// triggering event.
    Engine,
    /// One rule action running as a nested subtransaction.
    Subtransaction,
    /// WAL force (group of appends made durable).
    WalForce,
}

impl Stage {
    /// All stages in firing-path order.
    pub const ALL: [Stage; 6] = [
        Stage::Sentry,
        Stage::EcaManager,
        Stage::Compositor,
        Stage::Engine,
        Stage::Subtransaction,
        Stage::WalForce,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Sentry => "sentry",
            Stage::EcaManager => "eca-manager",
            Stage::Compositor => "compositor",
            Stage::Engine => "engine",
            Stage::Subtransaction => "subtransaction",
            Stage::WalForce => "wal-force",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Sentry => 0,
            Stage::EcaManager => 1,
            Stage::Compositor => 2,
            Stage::Engine => 3,
            Stage::Subtransaction => 4,
            Stage::WalForce => 5,
        }
    }
}

/// One recorded traversal of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Monotonic per-stage sequence number (0-based). Reveals
    /// truncation: if the ring holds seqs 300..556, spans 0..300 were
    /// overwritten.
    pub seq: u64,
    /// Wall-clock duration of the traversal in nanoseconds.
    pub dur_ns: u64,
}

/// Bounded overwrite-oldest span buffer.
struct SpanRing {
    next_seq: AtomicU64,
    slots: Mutex<Vec<Span>>,
}

impl SpanRing {
    fn new() -> Self {
        SpanRing {
            next_seq: AtomicU64::new(0),
            slots: Mutex::new(Vec::with_capacity(SPAN_RING_CAPACITY)),
        }
    }

    fn push(&self, dur_ns: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let span = Span { seq, dur_ns };
        let mut slots = self.slots.lock();
        if slots.len() < SPAN_RING_CAPACITY {
            slots.push(span);
        } else {
            slots[(seq as usize) % SPAN_RING_CAPACITY] = span;
        }
    }

    /// Spans currently retained, oldest first.
    fn drain_sorted(&self) -> Vec<Span> {
        let mut out = self.slots.lock().clone();
        out.sort_by_key(|s| s.seq);
        out
    }
}

/// Per-stage observation state: traversal count, latency histogram and
/// the recent-span ring.
pub struct StageObs {
    /// Total traversals recorded (survives ring truncation).
    pub count: Counter,
    /// Latency distribution of traversals.
    pub latency: Histogram,
    ring: SpanRing,
}

impl StageObs {
    fn new() -> Self {
        StageObs {
            count: Counter::new(),
            latency: Histogram::new(),
            ring: SpanRing::new(),
        }
    }

    fn record(&self, dur_ns: u64) {
        self.count.inc();
        self.latency.record(dur_ns);
        self.ring.push(dur_ns);
    }
}

/// Write-ahead-log counters (recorded by `reach-storage`).
#[derive(Default)]
pub struct WalMetrics {
    /// Log records appended.
    pub appends: Counter,
    /// Bytes appended (frame payloads incl. headers).
    pub append_bytes: Counter,
    /// `force()` calls that actually synced.
    pub forces: Counter,
    /// Latency of syncing forces.
    pub force_latency: Histogram,
    /// Group-commit fast path: force requests already covered by the
    /// forced LSN on entry (read-only commits, back-to-back forces) —
    /// no wait, no sync.
    pub force_skips: Counter,
    /// Group-commit followers: force requests satisfied by *another*
    /// committer's leader sync while they waited on the sequencer.
    /// `txn_commits / wal_forces` is the batching factor; this counter
    /// shows how many commits rode along without paying a sync.
    pub force_piggybacks: Counter,
}

/// Buffer-pool counters (recorded by `reach-storage`; ungated — these
/// pre-date the registry and are read by tests without enabling it).
#[derive(Default)]
pub struct PoolMetrics {
    /// Fetches served from a resident frame.
    pub hits: Counter,
    /// Fetches that had to read from disk.
    pub misses: Counter,
    /// Clock-hand evictions of clean or flushed frames.
    pub evictions: Counter,
    /// Dirty pages written back by eviction or flush.
    pub writebacks: Counter,
}

/// Transaction-manager counters (recorded by `reach-txn`).
#[derive(Default)]
pub struct TxnMetrics {
    /// Top-level + nested transactions begun.
    pub begins: Counter,
    /// Transactions committed.
    pub commits: Counter,
    /// Transactions aborted (voluntary or forced).
    pub aborts: Counter,
    /// Latency of top-level commits (incl. WAL force + hooks).
    pub commit_latency: Histogram,
    /// Lock acquisitions that had to wait.
    pub lock_waits: Counter,
    /// Time spent blocked waiting for locks.
    pub lock_wait_latency: Histogram,
    /// Deadlocks detected (victim aborted with `ReachError::Deadlock`).
    pub deadlocks: Counter,
    /// Lock-manager grants (every acquire/try_acquire that succeeded).
    /// The MVCC zero-lock claim is asserted against this counter:
    /// snapshot readers must leave it untouched.
    pub lock_acquisitions: Counter,
    /// Read-only snapshot transactions begun.
    pub snapshot_begins: Counter,
    /// Snapshot reads served (each with zero lock-manager traffic).
    pub snapshot_reads: Counter,
    /// Object versions published by committing writers.
    pub versions_published: Counter,
    /// Object versions reclaimed by snapshot-watermark GC.
    pub versions_reclaimed: Counter,
}

/// Per-sentry-mechanism detection counters (recorded by `reach-oodb`).
///
/// `useful` counts interceptions that produced an event for a monitored
/// target; `useless` counts interceptions where the sentry looked and
/// found nothing monitored — the §6.2 "useless overhead" population.
#[derive(Default)]
pub struct SentryMetrics {
    /// In-line wrapper sentry: calls routed through the mechanism.
    pub inline_invocations: Counter,
    /// In-line wrapper sentry: events actually raised (useful work).
    pub inline_detections: Counter,
    /// Root-class trap: trapped calls (the walk runs on every one).
    pub trap_invocations: Counter,
    /// Root-class trap: events actually raised.
    pub trap_detections: Counter,
    /// Surrogate/proxy sentry: calls paying the identity-map lookup.
    pub surrogate_invocations: Counter,
    /// Surrogate/proxy sentry: events actually raised.
    pub surrogate_detections: Counter,
    /// Announce-based sentry: events raised (announce is opt-in, so it
    /// has no useless population by construction).
    pub announce_detections: Counter,
}

/// Rule-engine counters (recorded by `reach-core`). These subsume the
/// pre-registry `EngineStats` and stay **ungated**: rule accounting is
/// cheap, always wanted, and asserted by tests that never enable the
/// registry.
#[derive(Default)]
pub struct EngineMetrics {
    /// Rules fired in immediate mode (nested subtransaction inline).
    pub immediate_runs: Counter,
    /// Rules fired in deferred mode (pre-commit queue).
    pub deferred_runs: Counter,
    /// Rules fired in a detached mode (fresh top-level transaction).
    pub detached_runs: Counter,
    /// Actions actually executed (condition held).
    pub actions_executed: Counter,
    /// Conditions evaluated false (no subtransaction created).
    pub conditions_false: Counter,
    /// Firings skipped because the triggering txn aborted first.
    pub triggering_aborts: Counter,
    /// Detached firings skipped on a transient error before retry glue.
    pub skipped_transient: Counter,
    /// Causally-dependent firings skipped: dependency not satisfiable.
    pub skipped_dependency: Counter,
    /// Rule executions that ended in a non-transient error.
    pub failures: Counter,
    /// Extra attempts spent retrying transient detached failures.
    pub retries: Counter,
    /// Detached firings that exhausted their retry budget.
    pub gave_up: Counter,
}

/// Event-pipeline counters (recorded by `reach-core`'s router and
/// compositors).
#[derive(Default)]
pub struct EventMetrics {
    /// Primitive events delivered to their ECA-manager.
    pub detected: Counter,
    /// Composite completions (an automaton reached its accepting state).
    pub composites_completed: Counter,
    /// Automaton instances ever created.
    pub instances_created: Counter,
    /// Instances discarded (lifespan expiry, consumption, pressure GC).
    pub instances_discarded: Counter,
    /// Instances discarded specifically by the pressure cap.
    pub instances_pressure_gcd: Counter,
    /// High-water mark of live instances (updated at snapshot time).
    pub instances_peak: Counter,
    /// Highest occupied occurrence-slab slot count any single compositor
    /// reached (constituent storage; generations freed per window).
    pub occ_slab_peak: Counter,
}

/// Recovery figures, written once per reboot by `reach-storage`'s
/// recovery pass — the single source for `salvaged_bytes` et al.
#[derive(Default)]
pub struct RecoveryMetrics {
    /// Log records scanned during analysis.
    pub records_scanned: Counter,
    /// Page writes redone.
    pub redone: Counter,
    /// Loser transactions found.
    pub losers: Counter,
    /// Updates undone (CLRs written).
    pub undone: Counter,
    /// Trailing torn-tail bytes discarded by the scan.
    pub salvaged_bytes: Counter,
    /// Bytes of surviving log the analysis pass had to read. Bounded by
    /// checkpoint truncation; grows linearly without it (E17).
    pub scan_bytes: Counter,
}

/// Checkpoint/truncation counters (recorded by `reach-storage`'s
/// checkpointer; ungated — cheap, always wanted, and read by the
/// torture harness without enabling the registry).
#[derive(Default)]
pub struct CheckpointMetrics {
    /// Complete Begin/End checkpoint pairs written.
    pub taken: Counter,
    /// Truncations that actually dropped a log prefix.
    pub truncations: Counter,
    /// Total log bytes dropped by truncation.
    pub truncated_bytes: Counter,
}

/// Persistent-index counters (recorded by `reach-storage`'s B+Tree and
/// index facade; gated like the WAL family — the hot sentry path pays
/// one branch when metrics are off).
#[derive(Default)]
pub struct IndexMetrics {
    /// Logical `(key, oid)` insertions applied to a persistent tree.
    pub inserts: Counter,
    /// Logical `(key, oid)` deletions applied to a persistent tree.
    pub deletes: Counter,
    /// Point lookups served.
    pub lookups: Counter,
    /// Range scans served.
    pub range_scans: Counter,
    /// Node page images written (every physically-logged tree write).
    pub node_writes: Counter,
    /// Node splits performed (leaf + internal).
    pub node_splits: Counter,
    /// Root splits (tree grew a level).
    pub root_splits: Counter,
    /// Logical index operations undone (abort or restart-undo).
    pub undone: Counter,
}

/// Network-server counters (recorded by `reach-server`; ungated — the
/// admission/shed decisions they witness must be observable in tests
/// and `exp_serve` without enabling the firing-path spans).
#[derive(Default)]
pub struct ServerMetrics {
    /// Sessions admitted (a connection that got a session slot).
    pub sessions_opened: Counter,
    /// Sessions that ended (any reason).
    pub sessions_closed: Counter,
    /// Connections rejected at admission with `Overloaded`.
    pub admissions_rejected: Counter,
    /// Requests fully processed (ok or error response sent).
    pub requests: Counter,
    /// Latency from frame decode to response enqueue.
    pub request_latency: Histogram,
    /// Requests answered with an error response.
    pub request_errors: Counter,
    /// Requests rejected because their deadline had already expired,
    /// or whose lock wait was cut short by the deadline.
    pub deadline_rejections: Counter,
    /// Sessions disconnected because their write queue stayed full.
    pub slow_consumer_disconnects: Counter,
    /// Idle sessions reaped (their open transactions aborted).
    pub idle_reaped: Counter,
    /// Orphaned transactions aborted on disconnect/reap/shutdown.
    pub orphan_aborts: Counter,
    /// Rule-firing / dead-letter notifications pushed to subscribers.
    pub notifications_sent: Counter,
    /// Frames rejected as protocol violations.
    pub protocol_errors: Counter,
    /// Payload bytes read off sockets.
    pub bytes_read: Counter,
    /// Payload bytes written to sockets.
    pub bytes_written: Counter,
    /// Request handlers that panicked (caught; connection dropped).
    pub panics: Counter,
}

/// The shared observability registry.
///
/// One per storage manager; every layer above holds a clone of the same
/// `Arc`. Created **disabled**: all span/histogram/WAL/txn/sentry
/// recording is skipped behind [`MetricsRegistry::on`] until
/// [`MetricsRegistry::enable`] is called. See the module docs for which
/// counter families are ungated.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    stages: [StageObs; 6],
    /// WAL counters.
    pub wal: WalMetrics,
    /// Buffer-pool counters (ungated).
    pub pool: PoolMetrics,
    /// Transaction-manager counters.
    pub txn: TxnMetrics,
    /// Sentry-mechanism counters.
    pub sentry: SentryMetrics,
    /// Rule-engine counters (ungated).
    pub engine: EngineMetrics,
    /// Event-pipeline counters.
    pub events: EventMetrics,
    /// Recovery figures (written once per reboot).
    pub recovery: RecoveryMetrics,
    /// Checkpoint/truncation counters (ungated).
    pub ckpt: CheckpointMetrics,
    /// Persistent-index counters.
    pub index: IndexMetrics,
    /// Network-server counters (ungated).
    pub server: ServerMetrics,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry, disabled.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(false),
            stages: [
                StageObs::new(),
                StageObs::new(),
                StageObs::new(),
                StageObs::new(),
                StageObs::new(),
                StageObs::new(),
            ],
            wal: WalMetrics::default(),
            pool: PoolMetrics::default(),
            txn: TxnMetrics::default(),
            sentry: SentryMetrics::default(),
            engine: EngineMetrics::default(),
            events: EventMetrics::default(),
            recovery: RecoveryMetrics::default(),
            ckpt: CheckpointMetrics::default(),
            index: IndexMetrics::default(),
            server: ServerMetrics::default(),
        }
    }

    /// A fresh shared registry, disabled.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Is gated recording on? One relaxed load + one branch at the
    /// caller — this is the *entire* disabled-path cost.
    #[inline(always)]
    pub fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn gated recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Turn gated recording off. Already-recorded data is retained.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Start a span timer — `Some(Instant)` only when enabled, so the
    /// disabled path never reads the clock.
    #[inline(always)]
    pub fn span_start(&self) -> Option<Instant> {
        if self.on() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a span started with [`MetricsRegistry::span_start`].
    /// No-op when the start was `None` (registry was disabled).
    #[inline]
    pub fn span_end(&self, stage: Stage, start: Option<Instant>) {
        if let Some(t0) = start {
            self.record_span(stage, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record a traversal of `stage` with a known duration.
    pub fn record_span(&self, stage: Stage, dur_ns: u64) {
        self.stages[stage.index()].record(dur_ns);
    }

    /// Read access to one stage's observation state.
    pub fn stage(&self, stage: Stage) -> &StageObs {
        &self.stages[stage.index()]
    }

    /// Copy everything into a plain-data [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stages = Stage::ALL.map(|s| {
            let obs = self.stage(s);
            StageSnapshot {
                stage: s,
                count: obs.count.get(),
                latency: obs.latency.snapshot(),
                recent: obs.ring.drain_sorted(),
            }
        });
        MetricsSnapshot {
            enabled: self.on(),
            stages,
            wal_appends: self.wal.appends.get(),
            wal_append_bytes: self.wal.append_bytes.get(),
            wal_forces: self.wal.forces.get(),
            wal_force_latency: self.wal.force_latency.snapshot(),
            wal_force_skips: self.wal.force_skips.get(),
            wal_force_piggybacks: self.wal.force_piggybacks.get(),
            pool_hits: self.pool.hits.get(),
            pool_misses: self.pool.misses.get(),
            pool_evictions: self.pool.evictions.get(),
            pool_writebacks: self.pool.writebacks.get(),
            txn_begins: self.txn.begins.get(),
            txn_commits: self.txn.commits.get(),
            txn_aborts: self.txn.aborts.get(),
            txn_commit_latency: self.txn.commit_latency.snapshot(),
            lock_waits: self.txn.lock_waits.get(),
            lock_wait_latency: self.txn.lock_wait_latency.snapshot(),
            deadlocks: self.txn.deadlocks.get(),
            lock_acquisitions: self.txn.lock_acquisitions.get(),
            snapshot_begins: self.txn.snapshot_begins.get(),
            snapshot_reads: self.txn.snapshot_reads.get(),
            versions_published: self.txn.versions_published.get(),
            versions_reclaimed: self.txn.versions_reclaimed.get(),
            sentry_useful: [
                self.sentry.inline_detections.get(),
                self.sentry.trap_detections.get(),
                self.sentry.surrogate_detections.get(),
                self.sentry.announce_detections.get(),
            ],
            sentry_useless: [
                self.sentry
                    .inline_invocations
                    .get()
                    .saturating_sub(self.sentry.inline_detections.get()),
                self.sentry
                    .trap_invocations
                    .get()
                    .saturating_sub(self.sentry.trap_detections.get()),
                self.sentry
                    .surrogate_invocations
                    .get()
                    .saturating_sub(self.sentry.surrogate_detections.get()),
                0,
            ],
            events_detected: self.events.detected.get(),
            composites_completed: self.events.composites_completed.get(),
            instances_created: self.events.instances_created.get(),
            instances_discarded: self.events.instances_discarded.get(),
            instances_pressure_gcd: self.events.instances_pressure_gcd.get(),
            instances_peak: self.events.instances_peak.get(),
            occ_slab_peak: self.events.occ_slab_peak.get(),
            immediate_runs: self.engine.immediate_runs.get(),
            deferred_runs: self.engine.deferred_runs.get(),
            detached_runs: self.engine.detached_runs.get(),
            actions_executed: self.engine.actions_executed.get(),
            conditions_false: self.engine.conditions_false.get(),
            failures: self.engine.failures.get(),
            retries: self.engine.retries.get(),
            gave_up: self.engine.gave_up.get(),
            recovery_records_scanned: self.recovery.records_scanned.get(),
            recovery_redone: self.recovery.redone.get(),
            recovery_losers: self.recovery.losers.get(),
            recovery_undone: self.recovery.undone.get(),
            recovery_salvaged_bytes: self.recovery.salvaged_bytes.get(),
            recovery_scan_bytes: self.recovery.scan_bytes.get(),
            ckpt_taken: self.ckpt.taken.get(),
            ckpt_truncations: self.ckpt.truncations.get(),
            ckpt_truncated_bytes: self.ckpt.truncated_bytes.get(),
            index_inserts: self.index.inserts.get(),
            index_deletes: self.index.deletes.get(),
            index_lookups: self.index.lookups.get(),
            index_range_scans: self.index.range_scans.get(),
            index_node_writes: self.index.node_writes.get(),
            index_node_splits: self.index.node_splits.get(),
            index_root_splits: self.index.root_splits.get(),
            index_undone: self.index.undone.get(),
            server_sessions_opened: self.server.sessions_opened.get(),
            server_sessions_closed: self.server.sessions_closed.get(),
            server_admissions_rejected: self.server.admissions_rejected.get(),
            server_requests: self.server.requests.get(),
            server_request_latency: self.server.request_latency.snapshot(),
            server_request_errors: self.server.request_errors.get(),
            server_deadline_rejections: self.server.deadline_rejections.get(),
            server_slow_consumer_disconnects: self.server.slow_consumer_disconnects.get(),
            server_idle_reaped: self.server.idle_reaped.get(),
            server_orphan_aborts: self.server.orphan_aborts.get(),
            server_notifications_sent: self.server.notifications_sent.get(),
            server_protocol_errors: self.server.protocol_errors.get(),
            server_bytes_read: self.server.bytes_read.get(),
            server_bytes_written: self.server.bytes_written.get(),
            server_panics: self.server.panics.get(),
        }
    }

    /// Render the snapshot as the human-readable per-stage report used
    /// by `exp_observe` and the README.
    pub fn report(&self) -> String {
        self.snapshot().render()
    }
}

/// Plain-data copy of one stage's observations.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// Total traversals recorded.
    pub count: u64,
    /// Latency distribution.
    pub latency: HistogramSnapshot,
    /// Recent spans retained by the ring, oldest first (≤
    /// [`SPAN_RING_CAPACITY`]).
    pub recent: Vec<Span>,
}

/// Plain-data copy of the whole registry at one instant.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field names mirror the registry counters 1:1
pub struct MetricsSnapshot {
    pub enabled: bool,
    pub stages: [StageSnapshot; 6],
    pub wal_appends: u64,
    pub wal_append_bytes: u64,
    pub wal_forces: u64,
    pub wal_force_latency: HistogramSnapshot,
    pub wal_force_skips: u64,
    pub wal_force_piggybacks: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_evictions: u64,
    pub pool_writebacks: u64,
    pub txn_begins: u64,
    pub txn_commits: u64,
    pub txn_aborts: u64,
    pub txn_commit_latency: HistogramSnapshot,
    pub lock_waits: u64,
    pub lock_wait_latency: HistogramSnapshot,
    pub deadlocks: u64,
    pub lock_acquisitions: u64,
    pub snapshot_begins: u64,
    pub snapshot_reads: u64,
    pub versions_published: u64,
    pub versions_reclaimed: u64,
    /// Useful detections per mechanism: inline, trap, surrogate, announce.
    pub sentry_useful: [u64; 4],
    /// Useless interceptions per mechanism (announce is always 0).
    pub sentry_useless: [u64; 4],
    pub events_detected: u64,
    pub composites_completed: u64,
    pub instances_created: u64,
    pub instances_discarded: u64,
    pub instances_pressure_gcd: u64,
    pub instances_peak: u64,
    pub occ_slab_peak: u64,
    pub immediate_runs: u64,
    pub deferred_runs: u64,
    pub detached_runs: u64,
    pub actions_executed: u64,
    pub conditions_false: u64,
    pub failures: u64,
    pub retries: u64,
    pub gave_up: u64,
    pub recovery_records_scanned: u64,
    pub recovery_redone: u64,
    pub recovery_losers: u64,
    pub recovery_undone: u64,
    pub recovery_salvaged_bytes: u64,
    pub recovery_scan_bytes: u64,
    pub ckpt_taken: u64,
    pub ckpt_truncations: u64,
    pub ckpt_truncated_bytes: u64,
    pub index_inserts: u64,
    pub index_deletes: u64,
    pub index_lookups: u64,
    pub index_range_scans: u64,
    pub index_node_writes: u64,
    pub index_node_splits: u64,
    pub index_root_splits: u64,
    pub index_undone: u64,
    pub server_sessions_opened: u64,
    pub server_sessions_closed: u64,
    pub server_admissions_rejected: u64,
    pub server_requests: u64,
    pub server_request_latency: HistogramSnapshot,
    pub server_request_errors: u64,
    pub server_deadline_rejections: u64,
    pub server_slow_consumer_disconnects: u64,
    pub server_idle_reaped: u64,
    pub server_orphan_aborts: u64,
    pub server_notifications_sent: u64,
    pub server_protocol_errors: u64,
    pub server_bytes_read: u64,
    pub server_bytes_written: u64,
    pub server_panics: u64,
}

/// Render a quantile figure, suffixed with `!` when the histogram's
/// overflow count says the percentile is saturated (the true value is
/// somewhere at or beyond the bucket range and cannot be resolved).
fn fmt_quantile(h: &HistogramSnapshot, q: f64) -> String {
    let s = fmt_ns(h.quantile(q));
    if h.saturated(q) {
        format!("{s}!")
    } else {
        s
    }
}

impl MetricsSnapshot {
    /// Render the human-readable per-stage report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let _ = writeln!(
            out,
            "== REACH metrics ({}) ==",
            if self.enabled { "enabled" } else { "disabled" }
        );
        let _ = writeln!(out, "-- firing path (Figure 2) --");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "mean", "p50", "p99", "max"
        );
        let mut overflowed = 0u64;
        for s in &self.stages {
            overflowed += s.latency.overflow;
            let _ = writeln!(
                out,
                "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
                s.stage.name(),
                s.count,
                fmt_ns(s.latency.mean_ns()),
                fmt_quantile(&s.latency, 0.5),
                fmt_quantile(&s.latency, 0.99),
                fmt_ns(s.latency.max_ns),
            );
        }
        if overflowed > 0 {
            let _ = writeln!(
                out,
                "(! = saturated percentile: {overflowed} sample(s) overflowed the histogram range)"
            );
        }
        let _ = writeln!(out, "-- events --");
        let _ = writeln!(
            out,
            "detected {}  composites-completed {}  instances created {} / discarded {} (pressure {}) / peak {}  slab-peak {}",
            self.events_detected,
            self.composites_completed,
            self.instances_created,
            self.instances_discarded,
            self.instances_pressure_gcd,
            self.instances_peak,
            self.occ_slab_peak,
        );
        let _ = writeln!(out, "-- sentries (useful/useless) --");
        let mech = ["inline-wrapper", "root-class-trap", "surrogate", "announce"];
        for (i, m) in mech.iter().enumerate() {
            if self.sentry_useful[i] + self.sentry_useless[i] > 0 {
                let _ = writeln!(
                    out,
                    "{:<16} {:>10} / {}",
                    m, self.sentry_useful[i], self.sentry_useless[i]
                );
            }
        }
        let _ = writeln!(out, "-- rule engine --");
        let _ = writeln!(
            out,
            "immediate {}  deferred {}  detached {}  actions {}  cond-false {}  failures {}  retries {}  gave-up {}",
            self.immediate_runs,
            self.deferred_runs,
            self.detached_runs,
            self.actions_executed,
            self.conditions_false,
            self.failures,
            self.retries,
            self.gave_up,
        );
        let _ = writeln!(out, "-- transactions --");
        let _ = writeln!(
            out,
            "begins {}  commits {}  aborts {}  commit mean {}  lock-waits {} (mean {})  deadlocks {}",
            self.txn_begins,
            self.txn_commits,
            self.txn_aborts,
            fmt_ns(self.txn_commit_latency.mean_ns()),
            self.lock_waits,
            fmt_ns(self.lock_wait_latency.mean_ns()),
            self.deadlocks,
        );
        let _ = writeln!(
            out,
            "snapshots: ro-begins {}  reads {}  lock-grants {}  versions published {} / reclaimed {}",
            self.snapshot_begins,
            self.snapshot_reads,
            self.lock_acquisitions,
            self.versions_published,
            self.versions_reclaimed,
        );
        let _ = writeln!(out, "-- storage --");
        let _ = writeln!(
            out,
            "wal appends {} ({} bytes)  forces {} (mean {}, skipped {}, piggybacked {})  pool hits {} / misses {}  evictions {}  writebacks {}",
            self.wal_appends,
            self.wal_append_bytes,
            self.wal_forces,
            fmt_ns(self.wal_force_latency.mean_ns()),
            self.wal_force_skips,
            self.wal_force_piggybacks,
            self.pool_hits,
            self.pool_misses,
            self.pool_evictions,
            self.pool_writebacks,
        );
        let _ = writeln!(
            out,
            "recovery: scanned {} ({} bytes)  redone {}  losers {}  undone {}  salvaged bytes {}",
            self.recovery_records_scanned,
            self.recovery_scan_bytes,
            self.recovery_redone,
            self.recovery_losers,
            self.recovery_undone,
            self.recovery_salvaged_bytes,
        );
        let _ = writeln!(
            out,
            "checkpoints: taken {}  truncations {}  truncated bytes {}",
            self.ckpt_taken, self.ckpt_truncations, self.ckpt_truncated_bytes,
        );
        if self.index_inserts + self.index_deletes + self.index_lookups + self.index_range_scans > 0
        {
            let _ = writeln!(
                out,
                "index: ins {}  del {}  lookups {}  ranges {}  node writes {}  splits {} ({} root)  undone {}",
                self.index_inserts,
                self.index_deletes,
                self.index_lookups,
                self.index_range_scans,
                self.index_node_writes,
                self.index_node_splits,
                self.index_root_splits,
                self.index_undone,
            );
        }
        if self.server_sessions_opened + self.server_admissions_rejected > 0 {
            let _ = writeln!(out, "-- server --");
            let _ = writeln!(
                out,
                "sessions {} opened / {} closed  shed {}  requests {} (p50 {}, p99 {})  errors {}  deadline-rejects {}",
                self.server_sessions_opened,
                self.server_sessions_closed,
                self.server_admissions_rejected,
                self.server_requests,
                fmt_quantile(&self.server_request_latency, 0.5),
                fmt_quantile(&self.server_request_latency, 0.99),
                self.server_request_errors,
                self.server_deadline_rejections,
            );
            let _ = writeln!(
                out,
                "slow-consumer disconnects {}  idle-reaped {}  orphan-aborts {}  notifications {}  protocol-errors {}  bytes {} in / {} out  panics {}",
                self.server_slow_consumer_disconnects,
                self.server_idle_reaped,
                self.server_orphan_aborts,
                self.server_notifications_sent,
                self.server_protocol_errors,
                self.server_bytes_read,
                self.server_bytes_written,
                self.server_panics,
            );
        }
        out
    }
}

/// Trace sink for the Figure 2 message-flow experiment: every hand-off
/// between detector, managers, compositors and rules is recorded as a
/// line when enabled. Lives here (not in `reach-core`) so the registry
/// and the trace share one home; `reach-core` re-exports it.
#[derive(Default)]
pub struct Trace {
    enabled: AtomicBool,
    lines: Mutex<Vec<String>>,
}

impl Trace {
    /// Start recording lines.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording lines (already-recorded lines are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Record a line; the closure only runs when enabled.
    pub fn log(&self, line: impl FnOnce() -> String) {
        if self.enabled.load(Ordering::Acquire) {
            self.lines.lock().push(line());
        }
    }

    /// Take all recorded lines, leaving the sink empty.
    pub fn take(&self) -> Vec<String> {
        std::mem::take(&mut self.lines.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_no_spans() {
        let reg = MetricsRegistry::new();
        assert!(!reg.on());
        let t = reg.span_start();
        assert!(t.is_none(), "disabled span_start must not read the clock");
        reg.span_end(Stage::Sentry, t);
        assert_eq!(reg.stage(Stage::Sentry).count.get(), 0);
    }

    #[test]
    fn enabled_registry_records_spans() {
        let reg = MetricsRegistry::new();
        reg.enable();
        let t = reg.span_start();
        assert!(t.is_some());
        reg.span_end(Stage::Engine, t);
        assert_eq!(reg.stage(Stage::Engine).count.get(), 1);
        assert_eq!(reg.stage(Stage::Engine).latency.count(), 1);
        let snap = reg.snapshot();
        let engine = &snap.stages[3];
        assert_eq!(engine.stage, Stage::Engine);
        assert_eq!(engine.count, 1);
        assert_eq!(engine.recent.len(), 1);
        assert_eq!(engine.recent[0].seq, 0);
    }

    #[test]
    fn span_ring_truncates_oldest_but_count_survives() {
        let reg = MetricsRegistry::new();
        reg.enable();
        let n = SPAN_RING_CAPACITY as u64 + 100;
        for i in 0..n {
            reg.record_span(Stage::Compositor, i);
        }
        let snap = reg.snapshot();
        let comp = &snap.stages[2];
        assert_eq!(comp.count, n, "total count survives truncation");
        assert_eq!(comp.recent.len(), SPAN_RING_CAPACITY, "ring is bounded");
        // The retained spans are exactly the newest SPAN_RING_CAPACITY.
        let min_seq = comp.recent.iter().map(|s| s.seq).min().unwrap();
        let max_seq = comp.recent.iter().map(|s| s.seq).max().unwrap();
        assert_eq!(min_seq, 100, "oldest 100 spans were overwritten");
        assert_eq!(max_seq, n - 1);
        // Sorted oldest-first and contiguous.
        for (i, s) in comp.recent.iter().enumerate() {
            assert_eq!(s.seq, min_seq + i as u64);
            assert_eq!(s.dur_ns, s.seq, "payload follows its seq");
        }
    }

    #[test]
    fn report_renders_every_stage_line() {
        let reg = MetricsRegistry::new();
        reg.enable();
        for s in Stage::ALL {
            reg.record_span(s, 1_000);
        }
        reg.engine.immediate_runs.inc();
        reg.recovery.salvaged_bytes.set(17);
        let report = reg.report();
        for s in Stage::ALL {
            assert!(report.contains(s.name()), "report mentions {}", s.name());
        }
        assert!(report.contains("salvaged bytes 17"));
    }
}
