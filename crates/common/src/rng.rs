//! Seeded test randomness with a replay discipline.
//!
//! Every randomized test in the workspace draws from [`SplitMix64`] with
//! a seed obtained through [`seed_from_env`], and announces that seed via
//! [`announce_seed`] so a failing run always prints the one line needed
//! to reproduce it (`REACH_SEED=0x... cargo test ...`). The generator
//! itself was previously private to the storage torture harness; it
//! lives here so txn/core/oodb tests share one implementation.

/// A tiny deterministic PRNG (SplitMix64). Not cryptographic; purely
/// for reproducible test workloads.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Fork an independent stream (for per-thread generators that must
    /// not share state). Deterministic in the parent seed and `salt`.
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        SplitMix64(self.next_u64() ^ salt.wrapping_mul(0x2545f4914f6cdd1d))
    }
}

/// Resolve the seed for a randomized test: the `REACH_SEED` environment
/// variable (decimal or `0x`-prefixed hex) when set, otherwise
/// `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("REACH_SEED") {
        Ok(v) => crate::sync::parse_seed(&v).unwrap_or(default),
        Err(_) => default,
    }
}

/// Print the seed a test is about to use, in replay-ready form. Under
/// `cargo test` the line is captured and only shown when the test
/// fails — exactly when it is needed.
pub fn announce_seed(test: &str, seed: u64) {
    eprintln!("[seed] {test}: replay with REACH_SEED={seed:#x}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range_and_chance_sane() {
        let mut r = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
        let mut hits = 0;
        for _ in 0..1000 {
            if r.chance(1, 2) {
                hits += 1;
            }
        }
        assert!((300..700).contains(&hits), "p=0.5 wildly off: {hits}/1000");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = SplitMix64::new(9);
        let mut child = parent.fork(1);
        assert_ne!(parent.next_u64(), child.next_u64());
    }
}
