//! Lock-free metric primitives: counters and fixed-bucket latency
//! histograms.
//!
//! Everything here is allocation-free on the hot path and built only on
//! `std::sync::atomic` — no external dependencies, per the repo rule
//! that observability must never change what it observes. Counters are
//! single relaxed `fetch_add`s; histograms bucket a nanosecond duration
//! into one of [`BUCKETS`] power-of-two bins with a `leading_zeros`
//! computation and three relaxed atomics. Snapshots are plain data and
//! mergeable, so per-thread or per-component histograms can be summed
//! at report time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` holds durations `d` with
/// `2^(i-1) <= d < 2^i` nanoseconds (bucket 0 holds `d == 0`); the last
/// bucket absorbs everything `>= 2^(BUCKETS-2)` ns (~2.3 minutes), far
/// beyond any latency this system produces.
pub const BUCKETS: usize = 48;

/// Smallest duration the bucket array cannot represent: anything at or
/// above this still lands in the top bucket (so bucket sums equal
/// `count`), but is additionally tallied in the histogram's `overflow`
/// counter so saturated percentiles can be flagged instead of silently
/// reported as the top-bucket bound.
pub const OVERFLOW_NS: u64 = 1u64 << (BUCKETS - 1);

/// A monotonically increasing event counter.
///
/// `inc`/`add` are relaxed atomic adds: safe from any thread, never a
/// synchronization point. Use for "how many times did X happen".
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. Only used when the counter mirrors a value
    /// computed elsewhere (e.g. recovery report fields written once at
    /// reboot); hot paths use [`Counter::inc`]/[`Counter::add`].
    #[inline]
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Raise the value to `n` if it is currently lower (relaxed
    /// `fetch_max`) — for high-water marks like peak live instances.
    #[inline]
    pub fn record_max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }
}

/// Map a nanosecond duration to its bucket index.
///
/// Bucket 0 is `0 ns`; bucket `i>0` covers `[2^(i-1), 2^i)` ns; the top
/// bucket is a catch-all. Computed as `64 - leading_zeros(ns)` clamped,
/// i.e. the position of the highest set bit plus one.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let idx = (64 - ns.leading_zeros()) as usize;
    idx.min(BUCKETS - 1)
}

/// Inclusive upper bound (ns) of bucket `i`, for report rendering.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket latency histogram with power-of-two nanosecond
/// buckets.
///
/// Recording is three relaxed atomic RMWs plus one relaxed `fetch_max`;
/// there is no locking and no allocation. Read it by taking a
/// [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    overflow: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array with a const item.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        if ns >= OVERFLOW_NS {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into plain mergeable data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`], safe to merge, compare and
/// serialize by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations (ns).
    pub sum_ns: u64,
    /// Largest observed duration (ns).
    pub max_ns: u64,
    /// Observations at or beyond [`OVERFLOW_NS`]. They still count in
    /// the top bucket, but any percentile whose rank lands among them is
    /// saturated — the bucket resolution can no longer tell them apart.
    pub overflow: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            overflow: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (bucketwise sum; max of maxes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.overflow += other.overflow;
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket containing the q-th observation. Bucketed histograms can
    /// only answer to bucket resolution — good enough to tell 2 µs from
    /// 2 ms, which is what the experiments need.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Whether the `q`-quantile is saturated: its rank falls among the
    /// overflowed observations, so [`HistogramSnapshot::quantile`] can
    /// only report the top-bucket bound (capped at `max_ns`), not a real
    /// bucket boundary. Reports should flag such figures.
    pub fn saturated(&self, q: f64) -> bool {
        if self.overflow == 0 || self.count == 0 {
            return false;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        rank > self.count - self.overflow
    }
}

/// Render a nanosecond figure with a human unit (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_power_of_two_partition() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        // Every value lands in exactly the bucket whose range contains it.
        for i in 1..BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
        }
        // The top bucket absorbs the extreme.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(100);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 1_000_101);
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[bucket_index(100)], 1);
        assert_eq!(s.buckets[bucket_index(1_000_000)], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn snapshot_merge_sums_buckets_and_maxes_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10, 20, 30] {
            a.record(v);
        }
        for v in [15, 5_000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum_ns, 10 + 20 + 30 + 15 + 5_000);
        assert_eq!(m.max_ns, 5_000);
        assert_eq!(m.buckets.iter().sum::<u64>(), 5);
        // Merging an empty snapshot is the identity.
        let before = m.clone();
        m.merge(&HistogramSnapshot::default());
        assert_eq!(m, before);
    }

    #[test]
    fn quantiles_are_bucket_resolution() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64,128)
        }
        h.record(1_000_000); // one slow outlier
        let s = h.snapshot();
        assert!(s.quantile(0.5) < 128, "median in the fast bucket");
        assert_eq!(s.quantile(1.0), 1_000_000, "p100 capped at max");
        assert_eq!(s.mean_ns(), (99 * 100 + 1_000_000) / 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }

    #[test]
    fn overflow_samples_are_counted_and_flag_saturated_percentiles() {
        let h = Histogram::new();
        for _ in 0..97 {
            h.record(1_000); // well inside the bucket range
        }
        h.record(OVERFLOW_NS); // first unrepresentable duration
        h.record(OVERFLOW_NS * 3);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.overflow, 3);
        // Bucket sums still account for every observation (the top
        // bucket absorbs the overflow), so merges stay consistent.
        assert_eq!(s.buckets.iter().sum::<u64>(), 100);
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        // p50 is honest; p99 and p100 land among the overflowed samples
        // and must be flagged as saturated.
        assert!(!s.saturated(0.5));
        assert!(s.saturated(0.98));
        assert!(s.saturated(0.99));
        assert!(s.saturated(1.0));
        // The boundary: rank 97 is the last in-range observation.
        assert!(!s.saturated(0.97));
        // Merging propagates the overflow count.
        let mut m = HistogramSnapshot::default();
        m.merge(&s);
        m.merge(&s);
        assert_eq!(m.overflow, 6);
        assert!(m.saturated(0.99));
        // A histogram with no overflow never reports saturation.
        let ok = Histogram::new();
        ok.record(OVERFLOW_NS - 1);
        assert!(!ok.snapshot().saturated(1.0));
    }

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);
    }
}
