//! The clock used for temporal events, validity intervals and milestones.
//!
//! REACH's temporal events (§3.1: absolute, relative, periodic, and the
//! milestone events of \[BBK93\]) need a time source that the test suite
//! and the benchmark harness can control deterministically. The
//! [`VirtualClock`] therefore runs in one of two modes:
//!
//! * **virtual** — time only moves when [`VirtualClock::advance`] or
//!   [`VirtualClock::set`] is called. This is the default and is what
//!   every test and every experiment regenerator uses.
//! * **real** — time is the wall clock, measured from clock creation.
//!
//! All timestamps are microseconds as [`TimePoint`] newtypes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A point in time: microseconds since the clock's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(pub u64);

impl TimePoint {
    /// The clock origin, `t = 0`.
    pub const ZERO: TimePoint = TimePoint(0);
    /// A point later than every reachable instant (used for "no deadline").
    pub const MAX: TimePoint = TimePoint(u64::MAX);

    /// A point `us` microseconds after the origin.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        TimePoint(us)
    }

    /// A point `ms` milliseconds after the origin.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        TimePoint(ms * 1_000)
    }

    /// A point `s` seconds after the origin.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        TimePoint(s * 1_000_000)
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn plus(self, d: Duration) -> TimePoint {
        TimePoint(self.0.saturating_add(d.as_micros() as u64))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn minus(self, d: Duration) -> TimePoint {
        TimePoint(self.0.saturating_sub(d.as_micros() as u64))
    }

    /// Elapsed duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: TimePoint) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}µs", self.0)
    }
}

enum Mode {
    Virtual(AtomicU64),
    Real(Instant),
}

/// The time source. Shared by reference (usually inside an `Arc`)
/// between the temporal-event manager, compositors and the test driver.
pub struct VirtualClock {
    mode: Mode,
}

impl VirtualClock {
    /// A deterministic clock starting at `t = 0` that only moves on demand.
    pub fn new_virtual() -> Self {
        VirtualClock {
            mode: Mode::Virtual(AtomicU64::new(0)),
        }
    }

    /// A wall clock measured from now.
    pub fn new_real() -> Self {
        VirtualClock {
            mode: Mode::Real(Instant::now()),
        }
    }

    /// The current time.
    #[inline]
    pub fn now(&self) -> TimePoint {
        match &self.mode {
            Mode::Virtual(t) => TimePoint(t.load(Ordering::Acquire)),
            Mode::Real(start) => TimePoint(start.elapsed().as_micros() as u64),
        }
    }

    /// Move a virtual clock forward by `d` and return the new time.
    /// No-op (returns `now`) on a real clock.
    pub fn advance(&self, d: Duration) -> TimePoint {
        match &self.mode {
            Mode::Virtual(t) => TimePoint(
                t.fetch_add(d.as_micros() as u64, Ordering::AcqRel) + d.as_micros() as u64,
            ),
            Mode::Real(_) => self.now(),
        }
    }

    /// Set a virtual clock to an absolute point, never moving backwards.
    /// No-op on a real clock.
    pub fn set(&self, at: TimePoint) -> TimePoint {
        match &self.mode {
            Mode::Virtual(t) => {
                t.fetch_max(at.0, Ordering::AcqRel);
                self.now()
            }
            Mode::Real(_) => self.now(),
        }
    }

    /// Whether this clock is virtual (controllable).
    pub fn is_virtual(&self) -> bool {
        matches!(self.mode, Mode::Virtual(_))
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock")
            .field("virtual", &self.is_virtual())
            .field("now", &self.now())
            .finish()
    }
}

/// Trait alias-like abstraction so components can take any time source.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> TimePoint;
}

impl Clock for VirtualClock {
    fn now(&self) -> TimePoint {
        VirtualClock::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let c = VirtualClock::new_virtual();
        assert_eq!(c.now(), TimePoint::ZERO);
        let t = c.advance(Duration::from_millis(5));
        assert_eq!(t, TimePoint::from_millis(5));
        assert_eq!(c.now(), TimePoint::from_millis(5));
    }

    #[test]
    fn virtual_clock_set_never_goes_backwards() {
        let c = VirtualClock::new_virtual();
        c.set(TimePoint::from_secs(10));
        c.set(TimePoint::from_secs(4));
        assert_eq!(c.now(), TimePoint::from_secs(10));
    }

    #[test]
    fn real_clock_moves_on_its_own() {
        let c = VirtualClock::new_real();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn timepoint_arithmetic() {
        let t = TimePoint::from_secs(1);
        assert_eq!(t.plus(Duration::from_secs(1)), TimePoint::from_secs(2));
        assert_eq!(t.minus(Duration::from_secs(2)), TimePoint::ZERO);
        assert_eq!(
            TimePoint::from_secs(3).since(TimePoint::from_secs(1)),
            Duration::from_secs(2)
        );
        assert_eq!(
            TimePoint::from_secs(1).since(TimePoint::from_secs(3)),
            Duration::ZERO
        );
    }

    #[test]
    fn timepoint_max_is_a_ceiling() {
        assert!(TimePoint::MAX > TimePoint::from_secs(u32::MAX as u64));
        assert_eq!(TimePoint::MAX.plus(Duration::from_secs(1)), TimePoint::MAX);
    }
}
