//! Strongly-typed identifiers.
//!
//! Every subsystem hands out opaque 64-bit identifiers. Newtypes keep a
//! `PageId` from ever being confused with an `ObjectId` at compile time,
//! which matters in a system whose C++ ancestor used raw `void*` for
//! everything.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// The reserved "no such entity" value.
            pub const NULL: $name = $name(0);

            /// Construct from a raw value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Whether this is the reserved null id.
            #[inline]
            pub const fn is_null(self) -> bool {
                self.0 == 0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// Identity of a (possibly persistent) object. In Open OODB terms this
    /// is the OID handed out by the address-space manager.
    ObjectId,
    "oid:"
);
define_id!(
    /// Identity of a transaction (top-level or nested).
    TxnId,
    "txn:"
);
define_id!(
    /// Identity of a class in the data dictionary.
    ClassId,
    "cls:"
);
define_id!(
    /// Identity of a method within the method registry.
    MethodId,
    "mth:"
);
define_id!(
    /// Identity of an ECA rule.
    RuleId,
    "rule:"
);
define_id!(
    /// Identity of a (primitive or composite) event *type* — the subject
    /// an ECA-manager is dedicated to.
    EventTypeId,
    "evt:"
);
define_id!(
    /// Identity of a page in the storage manager.
    PageId,
    "pg:"
);

/// The shard that owns `oid` in an `shards`-way hash partition.
///
/// This is the single placement function of the sharded deployment:
/// the allocation side ([`IdGen::configure_residue`]), the router, and
/// the server's `ShardOf` opcode all answer through it, so placement
/// is a pure, restart-stable function of the oid alone.
#[inline]
pub const fn shard_of(oid: ObjectId, shards: u32) -> u32 {
    if shards <= 1 {
        0
    } else {
        (oid.raw() % shards as u64) as u32
    }
}

/// Monotonic logical timestamp used to order event occurrences and to
/// implement the oldest-/newest-rule-first tie-break policies of §6.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The earliest timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Wrap a raw counter value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Timestamp(raw)
    }

    /// The raw counter value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

/// Thread-safe generator of unique 64-bit values, starting at 1 so that
/// 0 stays free for the `NULL` sentinel of every id newtype.
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
    /// Issue step (default 1). A sharded deployment configures stride =
    /// shard count and a distinct residue per shard, so every id a
    /// shard allocates satisfies `id % stride == residue` — the hash
    /// partition and the allocation agree by construction.
    stride: AtomicU64,
}

impl IdGen {
    /// A fresh generator starting at 1.
    pub fn new() -> Self {
        IdGen {
            next: AtomicU64::new(1),
            stride: AtomicU64::new(1),
        }
    }

    /// Start issuing at `first` (used when recovering a persistent
    /// catalog whose ids must not be reissued).
    pub fn starting_at(first: u64) -> Self {
        IdGen {
            next: AtomicU64::new(first.max(1)),
            stride: AtomicU64::new(1),
        }
    }

    /// Restrict this generator to the residue class `residue` modulo
    /// `stride`: every subsequently issued id satisfies
    /// `id % stride == residue`. The next issue point advances to the
    /// smallest qualifying value ≥ the current one (and ≥ 1), so
    /// re-configuring after a restart never reissues an id.
    pub fn configure_residue(&self, residue: u64, stride: u64) {
        assert!(stride > 0 && residue < stride, "residue must be < stride");
        self.stride.store(stride, Ordering::Relaxed);
        let mut cur = self.next.load(Ordering::Relaxed).max(1);
        if cur % stride != residue {
            cur = cur - (cur % stride) + residue;
            if cur < self.next.load(Ordering::Relaxed).max(1) {
                cur += stride;
            }
        }
        self.next.store(cur.max(1), Ordering::Relaxed);
    }

    /// Issue the next raw id.
    #[inline]
    pub fn next_raw(&self) -> u64 {
        self.next
            .fetch_add(self.stride.load(Ordering::Relaxed), Ordering::Relaxed)
    }

    /// Issue the next id as type `T`.
    #[inline]
    pub fn next<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }

    /// The value the next call would return (for catalog persistence).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for IdGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn null_ids_are_null() {
        assert!(ObjectId::NULL.is_null());
        assert!(TxnId::NULL.is_null());
        assert!(!ObjectId::new(7).is_null());
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(ObjectId::new(42).to_string(), "oid:42");
        assert_eq!(RuleId::new(3).to_string(), "rule:3");
        assert_eq!(Timestamp::new(9).to_string(), "ts:9");
    }

    #[test]
    fn idgen_is_monotonic_and_never_null() {
        let g = IdGen::new();
        let a: ObjectId = g.next();
        let b: ObjectId = g.next();
        assert!(!a.is_null());
        assert!(a < b);
    }

    #[test]
    fn idgen_starting_at_clamps_zero() {
        let g = IdGen::starting_at(0);
        let a: TxnId = g.next();
        assert_eq!(a, TxnId::new(1));
    }

    #[test]
    fn idgen_unique_across_threads() {
        let g = Arc::new(IdGen::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate id {v}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(PageId::new(1) < PageId::new(2));
        assert!(Timestamp::new(5) > Timestamp::ZERO);
    }
}
