//! The unified error type for the whole system.
//!
//! One enum rather than per-crate error types keeps the `?`-chains across
//! the storage → object → transaction → rule layers short, at the cost of
//! a slightly wide surface. Variants are grouped by subsystem.

use crate::ids::{ClassId, MethodId, ObjectId, PageId, RuleId, TxnId};
use std::fmt;

/// Result alias used across all REACH crates.
pub type Result<T> = std::result::Result<T, ReachError>;

/// Every error the REACH system can surface to a caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    // ---- storage manager ----
    /// An I/O failure in the underlying address space (file) manager.
    Io(String),
    /// A *transient* I/O condition (would-block, timed-out, interrupted):
    /// retrying the same operation can legitimately succeed, unlike
    /// [`ReachError::Io`] which reports a hard device failure.
    IoTransient(String),
    /// The page does not exist in the segment.
    PageNotFound(PageId),
    /// A slot lookup failed (page, slot).
    SlotNotFound(PageId, u16),
    /// The record is too large to ever fit on a page.
    RecordTooLarge {
        /// Requested record size in bytes.
        size: usize,
        /// Largest record a page can hold.
        max: usize,
    },
    /// The buffer pool has no evictable frame (everything pinned).
    BufferPoolExhausted,
    /// WAL replay found a corrupt or truncated record.
    WalCorrupt(String),

    // ---- object model ----
    /// Unknown class.
    ClassNotFound(ClassId),
    /// Unknown class name.
    ClassNameNotFound(String),
    /// Unknown method on a class.
    MethodNotFound(MethodId),
    /// Method name could not be resolved on the class or its bases.
    MethodNameNotFound {
        /// Class the lookup started from.
        class: String,
        /// Unresolved method name.
        method: String,
    },
    /// Unknown attribute on a class.
    AttributeNotFound {
        /// Class the lookup started from.
        class: String,
        /// Unresolved attribute name.
        attribute: String,
    },
    /// Unknown object.
    ObjectNotFound(ObjectId),
    /// A value had the wrong runtime type for the declared attribute.
    TypeMismatch {
        /// The declared type.
        expected: String,
        /// The runtime type actually supplied.
        got: String,
    },
    /// Schema definition error (duplicate class, inheritance cycle, ...).
    SchemaError(String),
    /// A method implementation signalled failure.
    MethodFailed(String),

    // ---- transactions ----
    /// Unknown transaction id.
    TxnNotFound(TxnId),
    /// Operation on a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// Deadlock detected; this transaction was chosen as the victim.
    Deadlock(TxnId),
    /// Lock request timed out.
    LockTimeout(TxnId),
    /// Lock upgrade/acquire conflict that is not resolvable.
    LockConflict(String),
    /// Nested-transaction structural violation (e.g. committing a parent
    /// while a child is still active).
    NestedViolation(String),
    /// A commit/abort dependency forbids the requested outcome.
    DependencyViolation(String),
    /// The transaction was aborted (possibly by a rule or dependency).
    TxnAborted(TxnId),
    /// A per-request deadline expired before the operation completed.
    /// The transaction may have been aborted by the server.
    DeadlineExceeded,
    /// A write (or other mutating operation) was attempted inside a
    /// read-only snapshot transaction. Begin a regular transaction for
    /// writes; snapshot transactions only read.
    ReadOnlyTxn(TxnId),

    // ---- active layer ----
    /// Unknown rule.
    RuleNotFound(RuleId),
    /// The (event category, coupling mode) combination is not supported —
    /// exactly the "N" cells of Table 1 in the paper.
    UnsupportedCoupling {
        /// Event category (e.g. "composite(n-tx)").
        event: String,
        /// Rejected coupling mode.
        mode: String,
    },
    /// A composite event definition is illegal (e.g. no validity interval
    /// for a multi-transaction composition, §3.3).
    IllegalEventDefinition(String),
    /// A rule attempted to pass a transient object by reference into a
    /// detached execution (§3.2 forbids this).
    TransientReferenceEscape(ObjectId),
    /// Condition or action evaluation failed.
    RuleEvaluation(String),
    /// The rule language parser rejected the source.
    Parse {
        /// 1-based source line of the error.
        line: u32,
        /// What the parser expected or found.
        message: String,
    },

    // ---- meta architecture ----
    /// No policy manager registered for the requested dimension.
    PolicyManagerMissing(String),
    /// A named object lookup in the data dictionary failed.
    NameNotFound(String),
    /// Capability is not available in this configuration — used by the
    /// layered baseline to report what the closed platform cannot do.
    NotSupported(String),
    /// Query compilation/execution error.
    Query(String),

    // ---- network / server ----
    /// The server refused admission (session table or queue full). The
    /// request was *not* executed; retrying after backoff is safe.
    Overloaded(String),
    /// The peer violated the wire protocol (bad frame, unknown opcode,
    /// oversized payload). Not retryable: the same bytes fail again.
    Protocol(String),
    /// The connection closed mid-conversation. Whatever was in flight
    /// has an unknown outcome; reconnect and re-inspect state.
    ConnectionClosed(String),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ReachError::*;
        match self {
            Io(m) => write!(f, "i/o error: {m}"),
            IoTransient(m) => write!(f, "transient i/o condition: {m}"),
            PageNotFound(p) => write!(f, "page not found: {p}"),
            SlotNotFound(p, s) => write!(f, "slot {s} not found on {p}"),
            RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            BufferPoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            WalCorrupt(m) => write!(f, "write-ahead log corrupt: {m}"),
            ClassNotFound(c) => write!(f, "class not found: {c}"),
            ClassNameNotFound(n) => write!(f, "class not found: {n:?}"),
            MethodNotFound(m) => write!(f, "method not found: {m}"),
            MethodNameNotFound { class, method } => {
                write!(f, "no method {method:?} on class {class:?} or its bases")
            }
            AttributeNotFound { class, attribute } => {
                write!(f, "no attribute {attribute:?} on class {class:?}")
            }
            ObjectNotFound(o) => write!(f, "object not found: {o}"),
            TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            SchemaError(m) => write!(f, "schema error: {m}"),
            MethodFailed(m) => write!(f, "method failed: {m}"),
            TxnNotFound(t) => write!(f, "transaction not found: {t}"),
            TxnNotActive(t) => write!(f, "transaction not active: {t}"),
            Deadlock(t) => write!(f, "deadlock: {t} chosen as victim"),
            LockTimeout(t) => write!(f, "lock timeout in {t}"),
            LockConflict(m) => write!(f, "lock conflict: {m}"),
            NestedViolation(m) => write!(f, "nested transaction violation: {m}"),
            DependencyViolation(m) => write!(f, "commit dependency violation: {m}"),
            TxnAborted(t) => write!(f, "transaction aborted: {t}"),
            DeadlineExceeded => write!(f, "request deadline exceeded"),
            ReadOnlyTxn(t) => write!(f, "{t} is read-only: writes need a regular transaction"),
            RuleNotFound(r) => write!(f, "rule not found: {r}"),
            UnsupportedCoupling { event, mode } => {
                write!(
                    f,
                    "coupling mode {mode} not supported for {event} events (Table 1)"
                )
            }
            IllegalEventDefinition(m) => write!(f, "illegal event definition: {m}"),
            TransientReferenceEscape(o) => write!(
                f,
                "transient object {o} may not be passed by reference to a detached rule"
            ),
            RuleEvaluation(m) => write!(f, "rule evaluation failed: {m}"),
            Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            PolicyManagerMissing(d) => write!(f, "no policy manager for dimension {d:?}"),
            NameNotFound(n) => write!(f, "name not bound in data dictionary: {n:?}"),
            NotSupported(m) => write!(f, "not supported on this platform: {m}"),
            Query(m) => write!(f, "query error: {m}"),
            Overloaded(m) => write!(f, "server overloaded: {m}"),
            Protocol(m) => write!(f, "wire protocol violation: {m}"),
            ConnectionClosed(m) => write!(f, "connection closed: {m}"),
        }
    }
}

impl ReachError {
    /// Whether the failure is *transient*: retrying the same operation
    /// in a fresh transaction can legitimately succeed. Deadlock victims
    /// and lock timeouts are scheduling accidents, and an exhausted
    /// buffer pool drains as pins are released. Everything else —
    /// corrupt logs, missing objects, schema violations, real I/O
    /// errors — is deterministic and must not be retried blindly.
    ///
    /// Over the wire the same taxonomy drives client retry: an
    /// [`ReachError::Overloaded`] rejection means the request was never
    /// executed, a [`ReachError::ConnectionClosed`] or
    /// [`ReachError::DeadlineExceeded`] means a fresh attempt in a new
    /// transaction can succeed, and [`ReachError::IoTransient`] covers
    /// would-block / timed-out socket conditions. A
    /// [`ReachError::Protocol`] violation is deterministic — the same
    /// bytes fail the same way — and must not be retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ReachError::Deadlock(_)
                | ReachError::LockTimeout(_)
                | ReachError::BufferPoolExhausted
                | ReachError::IoTransient(_)
                | ReachError::DeadlineExceeded
                | ReachError::Overloaded(_)
                | ReachError::ConnectionClosed(_)
        )
    }

    /// Stable numeric code used by the wire protocol. Codes are grouped
    /// by subsystem in decades and never reused: clients built against
    /// an older taxonomy still classify newer errors by range. Every
    /// variant has a distinct code (asserted by a test below).
    pub fn wire_code(&self) -> u16 {
        use ReachError::*;
        match self {
            // storage manager: 10–19
            Io(_) => 10,
            PageNotFound(_) => 11,
            SlotNotFound(..) => 12,
            RecordTooLarge { .. } => 13,
            BufferPoolExhausted => 14,
            WalCorrupt(_) => 15,
            IoTransient(_) => 16,
            // object model: 20–29
            ClassNotFound(_) => 20,
            ClassNameNotFound(_) => 21,
            MethodNotFound(_) => 22,
            MethodNameNotFound { .. } => 23,
            AttributeNotFound { .. } => 24,
            ObjectNotFound(_) => 25,
            TypeMismatch { .. } => 26,
            SchemaError(_) => 27,
            MethodFailed(_) => 28,
            // transactions: 30–39
            TxnNotFound(_) => 30,
            TxnNotActive(_) => 31,
            Deadlock(_) => 32,
            LockTimeout(_) => 33,
            LockConflict(_) => 34,
            NestedViolation(_) => 35,
            DependencyViolation(_) => 36,
            TxnAborted(_) => 37,
            DeadlineExceeded => 38,
            ReadOnlyTxn(_) => 39,
            // active layer: 40–49
            RuleNotFound(_) => 40,
            UnsupportedCoupling { .. } => 41,
            IllegalEventDefinition(_) => 42,
            TransientReferenceEscape(_) => 43,
            RuleEvaluation(_) => 44,
            Parse { .. } => 45,
            // meta architecture: 50–59
            PolicyManagerMissing(_) => 50,
            NameNotFound(_) => 51,
            NotSupported(_) => 52,
            Query(_) => 53,
            // network / server: 60–69
            Overloaded(_) => 60,
            Protocol(_) => 61,
            ConnectionClosed(_) => 62,
        }
    }

    /// Reconstruct an error from a wire `(code, message)` pair. The
    /// variant (and therefore [`ReachError::wire_code`] and
    /// [`ReachError::is_transient`]) round-trips exactly; structured
    /// payloads (ids, sizes, line numbers) are carried in the rendered
    /// message only, so they come back as their null/zero placeholders.
    /// Unknown codes map to [`ReachError::Protocol`] so a newer server
    /// cannot silently masquerade as success on an older client.
    pub fn from_wire(code: u16, message: String) -> ReachError {
        use ReachError::*;
        let m = message;
        match code {
            10 => Io(m),
            11 => PageNotFound(PageId::new(0)),
            12 => SlotNotFound(PageId::new(0), 0),
            13 => RecordTooLarge { size: 0, max: 0 },
            14 => BufferPoolExhausted,
            15 => WalCorrupt(m),
            16 => IoTransient(m),
            20 => ClassNotFound(ClassId::new(0)),
            21 => ClassNameNotFound(m),
            22 => MethodNotFound(MethodId::new(0)),
            23 => MethodNameNotFound {
                class: m,
                method: String::new(),
            },
            24 => AttributeNotFound {
                class: m,
                attribute: String::new(),
            },
            25 => ObjectNotFound(ObjectId::new(0)),
            26 => TypeMismatch {
                expected: m,
                got: String::new(),
            },
            27 => SchemaError(m),
            28 => MethodFailed(m),
            30 => TxnNotFound(TxnId::new(0)),
            31 => TxnNotActive(TxnId::new(0)),
            32 => Deadlock(TxnId::new(0)),
            33 => LockTimeout(TxnId::new(0)),
            34 => LockConflict(m),
            35 => NestedViolation(m),
            36 => DependencyViolation(m),
            37 => TxnAborted(TxnId::new(0)),
            38 => DeadlineExceeded,
            39 => ReadOnlyTxn(TxnId::new(0)),
            40 => RuleNotFound(RuleId::new(0)),
            41 => UnsupportedCoupling {
                event: m,
                mode: String::new(),
            },
            42 => IllegalEventDefinition(m),
            43 => TransientReferenceEscape(ObjectId::new(0)),
            44 => RuleEvaluation(m),
            45 => Parse {
                line: 0,
                message: m,
            },
            50 => PolicyManagerMissing(m),
            51 => NameNotFound(m),
            52 => NotSupported(m),
            53 => Query(m),
            60 => Overloaded(m),
            61 => Protocol(m),
            62 => ConnectionClosed(m),
            other => Protocol(format!("unknown wire error code {other}: {m}")),
        }
    }
}

impl std::error::Error for ReachError {}

impl From<std::io::Error> for ReachError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            // Scheduling accidents on a socket or file descriptor: the
            // same call can succeed if repeated. Everything else is a
            // hard failure.
            WouldBlock | TimedOut | Interrupted => ReachError::IoTransient(e.to_string()),
            // Unambiguously a peer going away. UnexpectedEof is *not*
            // mapped here: on a file a short read means corruption (a
            // hard error); the network transport classifies its own
            // EOFs as ConnectionClosed explicitly.
            ConnectionReset | ConnectionAborted | BrokenPipe => {
                ReachError::ConnectionClosed(e.to_string())
            }
            _ => ReachError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ReachError::UnsupportedCoupling {
            event: "composite(n-tx)".into(),
            mode: "immediate".into(),
        };
        let s = e.to_string();
        assert!(s.contains("immediate"));
        assert!(s.contains("Table 1"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ReachError = io.into();
        assert!(matches!(e, ReachError::Io(_)));
    }

    #[test]
    fn transient_taxonomy() {
        assert!(ReachError::Deadlock(TxnId::new(1)).is_transient());
        assert!(ReachError::LockTimeout(TxnId::new(1)).is_transient());
        assert!(ReachError::BufferPoolExhausted.is_transient());
        assert!(!ReachError::Io("disk on fire".into()).is_transient());
        assert!(!ReachError::WalCorrupt("torn".into()).is_transient());
        assert!(!ReachError::ObjectNotFound(ObjectId::new(1)).is_transient());
    }

    /// One exemplar of every variant, used to sweep taxonomy invariants.
    fn exemplars() -> Vec<ReachError> {
        use ReachError::*;
        vec![
            Io("eio".into()),
            IoTransient("would block".into()),
            PageNotFound(PageId::new(7)),
            SlotNotFound(PageId::new(7), 3),
            RecordTooLarge { size: 9, max: 4 },
            BufferPoolExhausted,
            WalCorrupt("torn".into()),
            ClassNotFound(ClassId::new(1)),
            ClassNameNotFound("C".into()),
            MethodNotFound(MethodId::new(1)),
            MethodNameNotFound {
                class: "C".into(),
                method: "m".into(),
            },
            AttributeNotFound {
                class: "C".into(),
                attribute: "a".into(),
            },
            ObjectNotFound(ObjectId::new(1)),
            TypeMismatch {
                expected: "Int".into(),
                got: "Str".into(),
            },
            SchemaError("dup".into()),
            MethodFailed("boom".into()),
            TxnNotFound(TxnId::new(1)),
            TxnNotActive(TxnId::new(1)),
            Deadlock(TxnId::new(1)),
            LockTimeout(TxnId::new(1)),
            LockConflict("upgrade".into()),
            NestedViolation("child active".into()),
            DependencyViolation("must abort".into()),
            TxnAborted(TxnId::new(1)),
            DeadlineExceeded,
            ReadOnlyTxn(TxnId::new(1)),
            RuleNotFound(RuleId::new(1)),
            UnsupportedCoupling {
                event: "composite".into(),
                mode: "immediate".into(),
            },
            IllegalEventDefinition("no interval".into()),
            TransientReferenceEscape(ObjectId::new(1)),
            RuleEvaluation("cond".into()),
            Parse {
                line: 3,
                message: "expected ON".into(),
            },
            PolicyManagerMissing("txn".into()),
            NameNotFound("root".into()),
            NotSupported("triggers".into()),
            Query("bad select".into()),
            Overloaded("session table full".into()),
            Protocol("oversized frame".into()),
            ConnectionClosed("peer reset".into()),
        ]
    }

    #[test]
    fn wire_codes_are_distinct() {
        let all = exemplars();
        let mut seen = std::collections::HashMap::new();
        for e in &all {
            if let Some(prev) = seen.insert(e.wire_code(), format!("{e:?}")) {
                panic!("wire code {} shared by {prev} and {e:?}", e.wire_code());
            }
        }
    }

    #[test]
    fn wire_round_trip_preserves_code_and_transience() {
        for e in exemplars() {
            let back = ReachError::from_wire(e.wire_code(), e.to_string());
            assert_eq!(back.wire_code(), e.wire_code(), "code drift for {e:?}");
            assert_eq!(
                back.is_transient(),
                e.is_transient(),
                "transience drift for {e:?}"
            );
        }
    }

    #[test]
    fn unknown_wire_code_is_protocol_error() {
        let e = ReachError::from_wire(9999, "??".into());
        assert!(matches!(e, ReachError::Protocol(_)));
        assert!(!e.is_transient());
    }

    #[test]
    fn io_kind_mapping() {
        use std::io::{Error, ErrorKind};
        let t: ReachError = Error::new(ErrorKind::WouldBlock, "eagain").into();
        assert!(matches!(t, ReachError::IoTransient(_)));
        assert!(t.is_transient());
        let t: ReachError = Error::new(ErrorKind::TimedOut, "etimedout").into();
        assert!(t.is_transient());
        let c: ReachError = Error::new(ErrorKind::ConnectionReset, "econnreset").into();
        assert!(matches!(c, ReachError::ConnectionClosed(_)));
        assert!(c.is_transient());
        let h: ReachError = Error::new(ErrorKind::PermissionDenied, "eacces").into();
        assert!(matches!(h, ReachError::Io(_)));
        assert!(!h.is_transient());
        // Short file reads stay hard errors (storage corruption).
        let eof: ReachError = Error::new(ErrorKind::UnexpectedEof, "short read").into();
        assert!(matches!(eof, ReachError::Io(_)));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            ReachError::ObjectNotFound(ObjectId::new(1)),
            ReachError::ObjectNotFound(ObjectId::new(1))
        );
        assert_ne!(
            ReachError::ObjectNotFound(ObjectId::new(1)),
            ReachError::ObjectNotFound(ObjectId::new(2))
        );
    }
}
