//! The unified error type for the whole system.
//!
//! One enum rather than per-crate error types keeps the `?`-chains across
//! the storage → object → transaction → rule layers short, at the cost of
//! a slightly wide surface. Variants are grouped by subsystem.

use crate::ids::{ClassId, MethodId, ObjectId, PageId, RuleId, TxnId};
use std::fmt;

/// Result alias used across all REACH crates.
pub type Result<T> = std::result::Result<T, ReachError>;

/// Every error the REACH system can surface to a caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    // ---- storage manager ----
    /// An I/O failure in the underlying address space (file) manager.
    Io(String),
    /// The page does not exist in the segment.
    PageNotFound(PageId),
    /// A slot lookup failed (page, slot).
    SlotNotFound(PageId, u16),
    /// The record is too large to ever fit on a page.
    RecordTooLarge {
        /// Requested record size in bytes.
        size: usize,
        /// Largest record a page can hold.
        max: usize,
    },
    /// The buffer pool has no evictable frame (everything pinned).
    BufferPoolExhausted,
    /// WAL replay found a corrupt or truncated record.
    WalCorrupt(String),

    // ---- object model ----
    /// Unknown class.
    ClassNotFound(ClassId),
    /// Unknown class name.
    ClassNameNotFound(String),
    /// Unknown method on a class.
    MethodNotFound(MethodId),
    /// Method name could not be resolved on the class or its bases.
    MethodNameNotFound {
        /// Class the lookup started from.
        class: String,
        /// Unresolved method name.
        method: String,
    },
    /// Unknown attribute on a class.
    AttributeNotFound {
        /// Class the lookup started from.
        class: String,
        /// Unresolved attribute name.
        attribute: String,
    },
    /// Unknown object.
    ObjectNotFound(ObjectId),
    /// A value had the wrong runtime type for the declared attribute.
    TypeMismatch {
        /// The declared type.
        expected: String,
        /// The runtime type actually supplied.
        got: String,
    },
    /// Schema definition error (duplicate class, inheritance cycle, ...).
    SchemaError(String),
    /// A method implementation signalled failure.
    MethodFailed(String),

    // ---- transactions ----
    /// Unknown transaction id.
    TxnNotFound(TxnId),
    /// Operation on a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// Deadlock detected; this transaction was chosen as the victim.
    Deadlock(TxnId),
    /// Lock request timed out.
    LockTimeout(TxnId),
    /// Lock upgrade/acquire conflict that is not resolvable.
    LockConflict(String),
    /// Nested-transaction structural violation (e.g. committing a parent
    /// while a child is still active).
    NestedViolation(String),
    /// A commit/abort dependency forbids the requested outcome.
    DependencyViolation(String),
    /// The transaction was aborted (possibly by a rule or dependency).
    TxnAborted(TxnId),

    // ---- active layer ----
    /// Unknown rule.
    RuleNotFound(RuleId),
    /// The (event category, coupling mode) combination is not supported —
    /// exactly the "N" cells of Table 1 in the paper.
    UnsupportedCoupling {
        /// Event category (e.g. "composite(n-tx)").
        event: String,
        /// Rejected coupling mode.
        mode: String,
    },
    /// A composite event definition is illegal (e.g. no validity interval
    /// for a multi-transaction composition, §3.3).
    IllegalEventDefinition(String),
    /// A rule attempted to pass a transient object by reference into a
    /// detached execution (§3.2 forbids this).
    TransientReferenceEscape(ObjectId),
    /// Condition or action evaluation failed.
    RuleEvaluation(String),
    /// The rule language parser rejected the source.
    Parse {
        /// 1-based source line of the error.
        line: u32,
        /// What the parser expected or found.
        message: String,
    },

    // ---- meta architecture ----
    /// No policy manager registered for the requested dimension.
    PolicyManagerMissing(String),
    /// A named object lookup in the data dictionary failed.
    NameNotFound(String),
    /// Capability is not available in this configuration — used by the
    /// layered baseline to report what the closed platform cannot do.
    NotSupported(String),
    /// Query compilation/execution error.
    Query(String),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ReachError::*;
        match self {
            Io(m) => write!(f, "i/o error: {m}"),
            PageNotFound(p) => write!(f, "page not found: {p}"),
            SlotNotFound(p, s) => write!(f, "slot {s} not found on {p}"),
            RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            BufferPoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            WalCorrupt(m) => write!(f, "write-ahead log corrupt: {m}"),
            ClassNotFound(c) => write!(f, "class not found: {c}"),
            ClassNameNotFound(n) => write!(f, "class not found: {n:?}"),
            MethodNotFound(m) => write!(f, "method not found: {m}"),
            MethodNameNotFound { class, method } => {
                write!(f, "no method {method:?} on class {class:?} or its bases")
            }
            AttributeNotFound { class, attribute } => {
                write!(f, "no attribute {attribute:?} on class {class:?}")
            }
            ObjectNotFound(o) => write!(f, "object not found: {o}"),
            TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            SchemaError(m) => write!(f, "schema error: {m}"),
            MethodFailed(m) => write!(f, "method failed: {m}"),
            TxnNotFound(t) => write!(f, "transaction not found: {t}"),
            TxnNotActive(t) => write!(f, "transaction not active: {t}"),
            Deadlock(t) => write!(f, "deadlock: {t} chosen as victim"),
            LockTimeout(t) => write!(f, "lock timeout in {t}"),
            LockConflict(m) => write!(f, "lock conflict: {m}"),
            NestedViolation(m) => write!(f, "nested transaction violation: {m}"),
            DependencyViolation(m) => write!(f, "commit dependency violation: {m}"),
            TxnAborted(t) => write!(f, "transaction aborted: {t}"),
            RuleNotFound(r) => write!(f, "rule not found: {r}"),
            UnsupportedCoupling { event, mode } => {
                write!(
                    f,
                    "coupling mode {mode} not supported for {event} events (Table 1)"
                )
            }
            IllegalEventDefinition(m) => write!(f, "illegal event definition: {m}"),
            TransientReferenceEscape(o) => write!(
                f,
                "transient object {o} may not be passed by reference to a detached rule"
            ),
            RuleEvaluation(m) => write!(f, "rule evaluation failed: {m}"),
            Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            PolicyManagerMissing(d) => write!(f, "no policy manager for dimension {d:?}"),
            NameNotFound(n) => write!(f, "name not bound in data dictionary: {n:?}"),
            NotSupported(m) => write!(f, "not supported on this platform: {m}"),
            Query(m) => write!(f, "query error: {m}"),
        }
    }
}

impl ReachError {
    /// Whether the failure is *transient*: retrying the same operation
    /// in a fresh transaction can legitimately succeed. Deadlock victims
    /// and lock timeouts are scheduling accidents, and an exhausted
    /// buffer pool drains as pins are released. Everything else —
    /// corrupt logs, missing objects, schema violations, real I/O
    /// errors — is deterministic and must not be retried blindly.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ReachError::Deadlock(_) | ReachError::LockTimeout(_) | ReachError::BufferPoolExhausted
        )
    }
}

impl std::error::Error for ReachError {}

impl From<std::io::Error> for ReachError {
    fn from(e: std::io::Error) -> Self {
        ReachError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ReachError::UnsupportedCoupling {
            event: "composite(n-tx)".into(),
            mode: "immediate".into(),
        };
        let s = e.to_string();
        assert!(s.contains("immediate"));
        assert!(s.contains("Table 1"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ReachError = io.into();
        assert!(matches!(e, ReachError::Io(_)));
    }

    #[test]
    fn transient_taxonomy() {
        assert!(ReachError::Deadlock(TxnId::new(1)).is_transient());
        assert!(ReachError::LockTimeout(TxnId::new(1)).is_transient());
        assert!(ReachError::BufferPoolExhausted.is_transient());
        assert!(!ReachError::Io("disk on fire".into()).is_transient());
        assert!(!ReachError::WalCorrupt("torn".into()).is_transient());
        assert!(!ReachError::ObjectNotFound(ObjectId::new(1)).is_transient());
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            ReachError::ObjectNotFound(ObjectId::new(1)),
            ReachError::ObjectNotFound(ObjectId::new(1))
        );
        assert_ne!(
            ReachError::ObjectNotFound(ObjectId::new(1)),
            ReachError::ObjectNotFound(ObjectId::new(2))
        );
    }
}
