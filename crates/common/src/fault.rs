//! Deterministic fault injection for the storage / recovery pipeline.
//!
//! A [`FaultPlan`] names *where* ([`FaultPoint`]) and *when* (the nth
//! time that point is reached) a fault fires, and *what* happens
//! ([`FaultMode`]). A shared [`FaultInjector`] is threaded into the
//! stable-storage device and the write-ahead log; each I/O primitive
//! calls [`FaultInjector::check`] before doing real work and acts on the
//! returned [`WriteOutcome`].
//!
//! The three modes model the three ways real storage dies:
//!
//! * **Fail** — the single operation returns an I/O error and persists
//!   nothing (a transient EIO).
//! * **Torn** — a power loss mid-write: a byte-precise *prefix* of the
//!   payload reaches the device, the rest is lost, the caller sees an
//!   error, and the device is dead from then on (torn implies crash).
//! * **Crash** — a clean power loss at an operation boundary: the
//!   triggering operation persists nothing and the device permanently
//!   rejects everything afterwards.
//!
//! Everything is deterministic: plans are explicit trigger lists (or
//! derived from a seed via SplitMix64), and occurrence counters make a
//! rerun of the same workload hit the same fault at the same byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A named site in the storage stack where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// `StableStorage::read` of a page image.
    PageRead,
    /// `StableStorage::write` of a page image.
    PageWrite,
    /// `WriteAheadLog::append` of one log frame.
    WalAppend,
    /// `WriteAheadLog::force` (the commit durability point).
    WalForce,
    /// `WriteAheadLog::truncate_prefix` (checkpoint log truncation).
    WalTruncate,
    /// `StableStorage::sync`.
    Sync,
    /// A network transport read (one frame coming off the socket).
    NetRead,
    /// A network transport write (one frame going onto the socket).
    NetWrite,
}

impl FaultPoint {
    /// All points, in counter-index order.
    pub const ALL: [FaultPoint; 8] = [
        FaultPoint::PageRead,
        FaultPoint::PageWrite,
        FaultPoint::WalAppend,
        FaultPoint::WalForce,
        FaultPoint::WalTruncate,
        FaultPoint::Sync,
        FaultPoint::NetRead,
        FaultPoint::NetWrite,
    ];

    /// Stable name used in error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PageRead => "page_read",
            FaultPoint::PageWrite => "page_write",
            FaultPoint::WalAppend => "wal_append",
            FaultPoint::WalForce => "wal_force",
            FaultPoint::WalTruncate => "wal_truncate",
            FaultPoint::Sync => "sync",
            FaultPoint::NetRead => "net_read",
            FaultPoint::NetWrite => "net_write",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::PageRead => 0,
            FaultPoint::PageWrite => 1,
            FaultPoint::WalAppend => 2,
            FaultPoint::WalForce => 3,
            FaultPoint::WalTruncate => 4,
            FaultPoint::Sync => 5,
            FaultPoint::NetRead => 6,
            FaultPoint::NetWrite => 7,
        }
    }

    /// Whether the point mutates the device. After a crash, mutating
    /// points always fail; reads keep working so a post-mortem (or a
    /// recovery run over the surviving bytes) can still look at state.
    /// A crashed *connection* is dead in both directions, so the
    /// network read point counts as a mutation.
    fn is_mutation(self) -> bool {
        !matches!(self, FaultPoint::PageRead)
    }
}

/// What happens when a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails with an I/O error; nothing is persisted.
    Fail,
    /// The first `keep` bytes of the payload are persisted, the rest is
    /// lost, the operation fails, and the device is dead afterwards.
    Torn {
        /// Number of payload bytes that survive.
        keep: usize,
    },
    /// The operation persists nothing and the device is dead afterwards.
    Crash,
    /// The operation stalls for `millis` before proceeding normally.
    /// Models a slow peer / congested link; used by the network
    /// transport to exercise deadline and slow-consumer handling.
    Stall {
        /// How long the operation blocks before continuing.
        millis: u64,
    },
}

/// One scheduled fault: fire `mode` the `nth` time `point` is reached
/// (1-based — `nth == 1` is the very first occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// The injection site this trigger watches.
    pub point: FaultPoint,
    /// Which occurrence of the site fires the fault (1-based).
    pub nth: u64,
    /// What happens when it fires.
    pub mode: FaultMode,
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    triggers: Vec<Trigger>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a transient failure at the nth occurrence of `point`.
    pub fn fail_at(mut self, point: FaultPoint, nth: u64) -> Self {
        self.triggers.push(Trigger {
            point,
            nth,
            mode: FaultMode::Fail,
        });
        self
    }

    /// Schedule a torn write keeping exactly `keep` payload bytes.
    pub fn torn_at(mut self, point: FaultPoint, nth: u64, keep: usize) -> Self {
        self.triggers.push(Trigger {
            point,
            nth,
            mode: FaultMode::Torn { keep },
        });
        self
    }

    /// Schedule a clean crash at the nth occurrence of `point`.
    pub fn crash_at(mut self, point: FaultPoint, nth: u64) -> Self {
        self.triggers.push(Trigger {
            point,
            nth,
            mode: FaultMode::Crash,
        });
        self
    }

    /// Schedule a stall of `millis` at the nth occurrence of `point`.
    pub fn stall_at(mut self, point: FaultPoint, nth: u64, millis: u64) -> Self {
        self.triggers.push(Trigger {
            point,
            nth,
            mode: FaultMode::Stall { millis },
        });
        self
    }

    /// A pseudo-random plan of `faults` transient failures spread over
    /// the first `horizon` occurrences of each point. Deterministic for
    /// a given seed. Only `Fail` triggers are generated — torn/crash
    /// faults end a run, so sweeps schedule those explicitly.
    pub fn seeded(seed: u64, faults: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            // Storage points only (the first six of ALL): network
            // points have their own sweep in `seeded_net`, and drawing
            // from six keeps historical seeds producing the same plans.
            let point = FaultPoint::ALL[(rng.next() % 6) as usize];
            let nth = 1 + rng.next() % horizon.max(1);
            plan = plan.fail_at(point, nth);
        }
        plan
    }

    /// A pseudo-random *network* plan: `faults` triggers spread over the
    /// first `horizon` occurrences of the [`FaultPoint::NetRead`] /
    /// [`FaultPoint::NetWrite`] points, mixing transient failures, torn
    /// frames (partial I/O then disconnect), short stalls, and clean
    /// disconnects. Deterministic for a given seed. One injector models
    /// one connection, so a torn/crash trigger kills that connection
    /// only — the torture harness hands a fresh injector to each
    /// reconnect attempt.
    pub fn seeded_net(seed: u64, faults: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let point = if rng.next().is_multiple_of(2) {
                FaultPoint::NetRead
            } else {
                FaultPoint::NetWrite
            };
            let nth = 1 + rng.next() % horizon.max(1);
            plan = match rng.next() % 4 {
                0 => plan.fail_at(point, nth),
                1 => plan.torn_at(point, nth, (rng.next() % 16) as usize),
                2 => plan.stall_at(point, nth, 1 + rng.next() % 20),
                _ => plan.crash_at(point, nth),
            };
        }
        plan
    }

    /// The scheduled triggers.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }
}

/// What an injection site must do, as decided by [`FaultInjector::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// No fault: perform the operation normally.
    Proceed,
    /// Persist nothing and return an I/O error.
    Fail,
    /// Persist exactly `keep` bytes of the payload, then return an I/O
    /// error. The device is dead afterwards.
    Torn {
        /// Number of payload bytes that survive.
        keep: usize,
    },
    /// Sleep for `millis`, then perform the operation normally.
    Stall {
        /// How long the caller must block before continuing.
        millis: u64,
    },
}

/// Shared, thread-safe fault-injection state. One injector is threaded
/// through every layer of one "device" (disk + WAL); cloning the `Arc`
/// shares the occurrence counters and the crashed flag.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: [AtomicU64; 8],
    injected: AtomicU64,
    crashed: AtomicBool,
}

impl FaultInjector {
    /// A shared injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            counts: Default::default(),
            injected: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        })
    }

    /// An injector that never fires (useful as a default).
    pub fn disabled() -> Arc<Self> {
        Self::new(FaultPlan::new())
    }

    /// Record one arrival at `point` and decide what the caller must do.
    pub fn check(&self, point: FaultPoint) -> WriteOutcome {
        let n = self.counts[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if self.crashed.load(Ordering::Acquire) && point.is_mutation() {
            return WriteOutcome::Fail;
        }
        for t in &self.plan.triggers {
            if t.point == point && t.nth == n {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return match t.mode {
                    FaultMode::Fail => WriteOutcome::Fail,
                    FaultMode::Torn { keep } => {
                        self.crashed.store(true, Ordering::Release);
                        WriteOutcome::Torn { keep }
                    }
                    FaultMode::Crash => {
                        self.crashed.store(true, Ordering::Release);
                        WriteOutcome::Fail
                    }
                    FaultMode::Stall { millis } => WriteOutcome::Stall { millis },
                };
            }
        }
        WriteOutcome::Proceed
    }

    /// How many times `point` has been reached so far.
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.counts[point.index()].load(Ordering::Relaxed)
    }

    /// How many faults have actually fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether a torn/crash fault has killed the device.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }
}

/// SplitMix64 — the same tiny deterministic generator the vendored
/// `rand` shim uses, inlined here so `reach-common` stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_proceeds() {
        let inj = FaultInjector::disabled();
        for _ in 0..100 {
            assert_eq!(inj.check(FaultPoint::WalAppend), WriteOutcome::Proceed);
        }
        assert_eq!(inj.injected(), 0);
        assert!(!inj.is_crashed());
    }

    #[test]
    fn fail_fires_exactly_once_at_nth() {
        let inj = FaultInjector::new(FaultPlan::new().fail_at(FaultPoint::PageWrite, 3));
        assert_eq!(inj.check(FaultPoint::PageWrite), WriteOutcome::Proceed);
        assert_eq!(inj.check(FaultPoint::PageWrite), WriteOutcome::Proceed);
        assert_eq!(inj.check(FaultPoint::PageWrite), WriteOutcome::Fail);
        assert_eq!(inj.check(FaultPoint::PageWrite), WriteOutcome::Proceed);
        assert_eq!(inj.injected(), 1);
        assert!(!inj.is_crashed(), "Fail is transient, not a crash");
    }

    #[test]
    fn points_count_independently() {
        let inj = FaultInjector::new(FaultPlan::new().fail_at(FaultPoint::Sync, 1));
        assert_eq!(inj.check(FaultPoint::WalAppend), WriteOutcome::Proceed);
        assert_eq!(inj.check(FaultPoint::Sync), WriteOutcome::Fail);
        assert_eq!(inj.hits(FaultPoint::WalAppend), 1);
        assert_eq!(inj.hits(FaultPoint::Sync), 1);
        assert_eq!(inj.hits(FaultPoint::PageRead), 0);
    }

    #[test]
    fn crash_kills_all_subsequent_mutations_but_not_reads() {
        let inj = FaultInjector::new(FaultPlan::new().crash_at(FaultPoint::WalAppend, 2));
        assert_eq!(inj.check(FaultPoint::WalAppend), WriteOutcome::Proceed);
        assert_eq!(inj.check(FaultPoint::WalAppend), WriteOutcome::Fail);
        assert!(inj.is_crashed());
        assert_eq!(inj.check(FaultPoint::WalAppend), WriteOutcome::Fail);
        assert_eq!(inj.check(FaultPoint::PageWrite), WriteOutcome::Fail);
        assert_eq!(inj.check(FaultPoint::WalForce), WriteOutcome::Fail);
        assert_eq!(inj.check(FaultPoint::Sync), WriteOutcome::Fail);
        assert_eq!(inj.check(FaultPoint::PageRead), WriteOutcome::Proceed);
    }

    #[test]
    fn torn_reports_keep_and_implies_crash() {
        let inj = FaultInjector::new(FaultPlan::new().torn_at(FaultPoint::WalAppend, 1, 5));
        assert_eq!(
            inj.check(FaultPoint::WalAppend),
            WriteOutcome::Torn { keep: 5 }
        );
        assert!(inj.is_crashed());
        assert_eq!(inj.check(FaultPoint::WalAppend), WriteOutcome::Fail);
    }

    #[test]
    fn stall_proceeds_without_crashing() {
        let inj = FaultInjector::new(FaultPlan::new().stall_at(FaultPoint::NetWrite, 2, 7));
        assert_eq!(inj.check(FaultPoint::NetWrite), WriteOutcome::Proceed);
        assert_eq!(
            inj.check(FaultPoint::NetWrite),
            WriteOutcome::Stall { millis: 7 }
        );
        assert!(!inj.is_crashed(), "a stall is not a crash");
        assert_eq!(inj.check(FaultPoint::NetWrite), WriteOutcome::Proceed);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn crashed_connection_kills_net_reads_too() {
        let inj = FaultInjector::new(FaultPlan::new().crash_at(FaultPoint::NetWrite, 1));
        assert_eq!(inj.check(FaultPoint::NetWrite), WriteOutcome::Fail);
        assert!(inj.is_crashed());
        assert_eq!(inj.check(FaultPoint::NetRead), WriteOutcome::Fail);
        assert_eq!(
            inj.check(FaultPoint::PageRead),
            WriteOutcome::Proceed,
            "storage post-mortem reads survive"
        );
    }

    #[test]
    fn seeded_net_plans_are_deterministic_and_net_only() {
        let a = FaultPlan::seeded_net(0x5EED, 12, 500);
        let b = FaultPlan::seeded_net(0x5EED, 12, 500);
        let c = FaultPlan::seeded_net(0x5EEE, 12, 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.triggers().len(), 12);
        assert!(a
            .triggers()
            .iter()
            .all(|t| matches!(t.point, FaultPoint::NetRead | FaultPoint::NetWrite)));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 10, 1000);
        let b = FaultPlan::seeded(42, 10, 1000);
        let c = FaultPlan::seeded(43, 10, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.triggers().len(), 10);
        assert!(a.triggers().iter().all(|t| t.nth >= 1 && t.nth <= 1000));
        assert!(a
            .triggers()
            .iter()
            .all(|t| matches!(t.mode, FaultMode::Fail)));
    }
}
