//! Determinism tests for the schedule-perturbing sync layer. Only
//! meaningful with the `sched` feature; compiles to nothing otherwise.
#![cfg(feature = "sched")]

use reach_common::sync::{sched, Mutex, RwLock};
use std::sync::Arc;

/// A fixed mutex/rwlock workload with a fixed per-thread op count, so
/// each registered slot produces the same op sequence every run. (No
/// condvars here: wakeup counts are inherently nondeterministic.)
fn workload() {
    let m = Arc::new(Mutex::new(0u64));
    let rw = Arc::new(RwLock::new(0u64));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let m = Arc::clone(&m);
            let rw = Arc::clone(&rw);
            std::thread::spawn(move || {
                sched::register_thread(t);
                for i in 0..50 {
                    *m.lock() += 1;
                    if i % 2 == 0 {
                        *rw.write() += 1;
                    } else {
                        let _ = *rw.read();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(*m.lock(), 200);
}

#[test]
fn same_seed_same_per_slot_trace() {
    let (_, t1) = sched::run_seeded(0x5EED, workload);
    let (_, t2) = sched::run_seeded(0x5EED, workload);
    assert!(!t1.is_empty(), "armed workload must produce a trace");
    assert_eq!(
        sched::by_slot(&t1),
        sched::by_slot(&t2),
        "same seed must replay the same per-slot acquisition trace"
    );
    assert_eq!(sched::fingerprint(&t1), sched::fingerprint(&t2));
}

#[test]
fn different_seeds_diverge() {
    let (_, t1) = sched::run_seeded(1, workload);
    let (_, t2) = sched::run_seeded(2, workload);
    assert_ne!(
        sched::by_slot(&t1),
        sched::by_slot(&t2),
        "different seeds should perturb differently (same ops, different decisions)"
    );
}

#[test]
fn disarmed_points_leave_no_trace() {
    sched::disarm();
    workload();
    // Not inside run_seeded: the trace from any prior arm was drained,
    // and disarmed perturbation points must not append.
    let (_, trace) = sched::run_seeded(3, || ());
    assert!(trace.is_empty());
}
