//! ECA-managers and the event router — the architecture of Figure 2.
//!
//! "To provide an efficient and highly selective rule firing mechanism,
//! we use the ECA-managers. ECA-managers are dedicated to a given event
//! type. Therefore, they know which set of rules is fired by an event.
//! ... If a primitive event is part of a composite event, the primitive
//! event is passed along to the corresponding event composer."
//!
//! An [`EcaManager`] holds, per event type: the directly-fired rules,
//! the composite event types subscribed to it, a [`Compositor`] when the
//! type is itself composite, and the local event [`LocalHistory`]. The
//! [`Router`] owns the manager table and the detector index that maps
//! low-level sentry observations to event types.
//!
//! Composition can run **synchronously** (deterministic, used by most
//! tests) or **in parallel** — one worker thread per composite manager
//! fed over a channel, which is the paper's "event composition process
//! should be executed asynchronously with normal processing". The
//! pre-commit *flush* barrier keeps deferred rules sound: before a
//! transaction commits, all of its in-flight primitives must have been
//! composed (§6.4's constraint is what makes this cheap: only
//! non-immediate rules can hang off composites, so normal processing
//! never waits — only commit does).

use crate::algebra::CompositionScope;
use crate::compositor::{Completion, Compositor};
use crate::event::{
    CompositeSpec, EventData, EventOccurrence, EventSpec, FlowPoint, MethodPhase, PrimitiveEvent,
};
use crate::history::LocalHistory;
use crate::rule::Rule;
use crossbeam::channel::{bounded, Sender, TrySendError};
use reach_common::sync::{Mutex, RwLock};
use reach_common::{
    ClassId, EventTypeId, IdGen, MethodId, MetricsRegistry, Stage, TimePoint, Timestamp, TxnId,
};
use reach_object::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// The message-flow trace sink now lives in `reach_common::obs` next to
// the metrics registry; re-exported so `crate::eca::Trace` keeps working.
pub use reach_common::Trace;

/// One ECA-manager.
pub struct EcaManager {
    pub event_type: EventTypeId,
    pub name: String,
    pub spec: EventSpec,
    rules: RwLock<Vec<Arc<Rule>>>,
    /// Composite event types that consume this type.
    subscribers: RwLock<Vec<EventTypeId>>,
    /// Present iff this manager serves a composite type.
    compositor: Option<Compositor>,
    /// Cached channel to this manager's worker thread (parallel mode);
    /// read lock-free-ish on the hot delivery path instead of going
    /// through the router's worker table.
    worker_tx: RwLock<Option<Sender<WorkerMsg>>>,
    pub history: LocalHistory,
}

impl EcaManager {
    fn new(
        event_type: EventTypeId,
        name: String,
        spec: EventSpec,
        metrics: &Arc<MetricsRegistry>,
    ) -> Self {
        let compositor = match &spec {
            EventSpec::Composite(c) => {
                let mut comp = Compositor::with_correlation(
                    c.expr.clone(),
                    c.scope,
                    c.lifespan,
                    c.consumption,
                    c.correlation,
                );
                comp.set_metrics(Arc::clone(metrics));
                Some(comp)
            }
            EventSpec::Primitive(_) => None,
        };
        EcaManager {
            event_type,
            name,
            spec,
            rules: RwLock::new(Vec::new()),
            subscribers: RwLock::new(Vec::new()),
            compositor,
            worker_tx: RwLock::new(None),
            history: LocalHistory::default(),
        }
    }

    /// Attach a rule fired by this event type.
    pub fn add_rule(&self, rule: Arc<Rule>) {
        self.rules.write().push(rule);
    }

    /// Detach a rule; true if present.
    pub fn remove_rule(&self, id: reach_common::RuleId) -> bool {
        let mut rules = self.rules.write();
        let before = rules.len();
        rules.retain(|r| r.id != id);
        rules.len() != before
    }

    /// Snapshot of enabled rules.
    pub fn rules(&self) -> Vec<Arc<Rule>> {
        self.rules
            .read()
            .iter()
            .filter(|r| r.is_enabled())
            .cloned()
            .collect()
    }

    pub fn rule_count(&self) -> usize {
        self.rules.read().len()
    }

    fn subscribe(&self, composite: EventTypeId) {
        self.subscribers.write().push(composite);
    }

    pub fn subscribers(&self) -> Vec<EventTypeId> {
        self.subscribers.read().clone()
    }

    /// Live semi-composed instances (0 for primitive managers).
    pub fn live_instances(&self) -> usize {
        self.compositor.as_ref().map_or(0, |c| c.live_instances())
    }
}

/// Capacity of each compositor worker's inbox. Inboxes used to be
/// unbounded: a raiser faster than a compositor grew the queue (and the
/// process) without limit. Bounded inboxes give natural admission
/// control — a producer that outruns §6.3's "small compositors" blocks
/// at the boundary instead of queueing gigabytes.
pub const INBOX_CAP: usize = 1024;

std::thread_local! {
    /// Whether the current thread is a compositor worker. Workers must
    /// never block on a downstream inbox: a completion cascade (or a
    /// rule raising fresh events) may route back through an upstream
    /// worker, and two workers blocking on each other's full inboxes
    /// would deadlock. Workers instead `try_send` and fall back to
    /// feeding the compositor inline; only application threads take
    /// the blocking backpressure path.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Message protocol for composite-manager worker threads.
enum WorkerMsg {
    Feed(Arc<EventOccurrence>),
    /// Close the window of a finished transaction. `fire` is false for
    /// aborted transactions (their events are revoked).
    CloseTxn(TxnId, bool),
    /// Sweep interval lifespans.
    Expire(TimePoint),
    /// Barrier: reply when all prior messages are processed.
    Flush(Sender<()>),
    Shutdown,
}

/// How composite feeding is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositionMode {
    /// Inline in the detecting thread — deterministic.
    Synchronous,
    /// One worker thread per composite manager (§6.3's parallel small
    /// compositors).
    Parallel,
}

/// A passive delivery observer.
pub type Observer = Arc<dyn Fn(&EventOccurrence) + Send + Sync>;

/// Composition ownership predicate: may this router's compositor for
/// the given event type be fed? (See `Router::set_composition_gate`.)
pub type CompositionGate = Arc<dyn Fn(EventTypeId) -> bool + Send + Sync>;

/// Channel + join handle of one composite manager's worker thread.
type WorkerHandle = (Sender<WorkerMsg>, std::thread::JoinHandle<()>);

/// Consumer of completed composite occurrences and directly-fired rules.
/// Implemented by the engine (`crate::engine`).
pub trait FireHandler: Send + Sync {
    /// Fire `rules` (already filtered to enabled) for `occ`.
    fn fire(&self, rules: Vec<Arc<Rule>>, occ: Arc<EventOccurrence>);

    /// Fire the same rule set for every occurrence of a batch, in
    /// event order. The default loops over [`FireHandler::fire`]; the
    /// engine overrides it to order and partition the rule set once
    /// for the whole batch.
    fn fire_batch(&self, rules: Vec<Arc<Rule>>, occs: &[Arc<EventOccurrence>]) {
        for occ in occs {
            self.fire(rules.clone(), Arc::clone(occ));
        }
    }
}

/// One observed method invocation inside a batched raise — the
/// per-call fields of [`Router::raise_method`].
pub struct MethodObservation<'a> {
    pub txn: TxnId,
    pub top: TxnId,
    pub at: TimePoint,
    pub receiver: reach_common::ObjectId,
    pub class: ClassId,
    pub method: MethodId,
    pub phase: MethodPhase,
    pub args: &'a reach_object::Args,
}

/// The event router: detector index + manager table + delivery.
pub struct Router {
    schema: Arc<Schema>,
    managers: RwLock<HashMap<EventTypeId, Arc<EcaManager>>>,
    by_name: RwLock<HashMap<String, EventTypeId>>,
    // Detector indexes (primitive specs -> event types). A key can have
    // several registered event types (e.g. two rules, each with its own
    // named event on the same class.attribute): every one fires.
    method_index: RwLock<HashMap<(ClassId, MethodId, MethodPhase), Vec<EventTypeId>>>,
    state_index: RwLock<HashMap<(ClassId, String), Vec<EventTypeId>>>,
    lifecycle_index: RwLock<HashMap<(ClassId, bool), Vec<EventTypeId>>>,
    persist_index: RwLock<HashMap<ClassId, Vec<EventTypeId>>>,
    flow_index: RwLock<HashMap<FlowPoint, Vec<EventTypeId>>>,
    signal_index: RwLock<HashMap<String, Vec<EventTypeId>>>,
    ids: IdGen,
    /// Registered method-event counts per phase (`[Before, After]`) —
    /// the sentry's cheap gate: when a phase has no registrations
    /// anywhere, a raise for it cannot match and is skipped before the
    /// txn resolution and index lookup.
    method_phase_count: [AtomicU64; 2],
    /// Registered flow-event count — the [`Router::raise_flow`] gate.
    /// Every begin/commit of every (sub)transaction reports a flow
    /// point; with zero flow registrations the raise is one load.
    flow_count: AtomicU64,
    /// The event sequence clock. Normally private to this router; a
    /// sharded deployment injects one shared clock into every shard's
    /// router so occurrence `seq` values form a single global order and
    /// cross-shard history merges need no translation.
    seq: Arc<AtomicU64>,
    mode: RwLock<CompositionMode>,
    workers: Mutex<HashMap<EventTypeId, WorkerHandle>>,
    handler: RwLock<Option<Arc<dyn FireHandler>>>,
    /// Composition ownership gate. In a sharded deployment every shard
    /// registers every composite type (so event-type ids align across
    /// shards), but only the *owning* shard's compositor may be fed —
    /// otherwise each shard would compose the same global stream and
    /// fire the composite's rules once per shard. `None` (single-node
    /// default) composes everything locally.
    composition_gate: RwLock<Option<CompositionGate>>,
    /// Passive observers of every delivered occurrence (the temporal
    /// manager watches for anchors of relative events here).
    observers: RwLock<Vec<Observer>>,
    pub trace: Arc<Trace>,
    metrics: Arc<MetricsRegistry>,
}

impl Router {
    pub fn new(schema: Arc<Schema>) -> Arc<Self> {
        Self::with_metrics(schema, MetricsRegistry::new_shared())
    }

    /// A router recording into the stack-wide `metrics` registry (the
    /// plain [`Router::new`] gets a private, disabled one).
    pub fn with_metrics(schema: Arc<Schema>, metrics: Arc<MetricsRegistry>) -> Arc<Self> {
        Self::with_seq_clock(schema, metrics, Arc::new(AtomicU64::new(1)))
    }

    /// A router stamping occurrences from an externally owned sequence
    /// clock — the distribution layer hands the same clock to every
    /// shard so `seq` is a total order across the deployment.
    pub fn with_seq_clock(
        schema: Arc<Schema>,
        metrics: Arc<MetricsRegistry>,
        seq: Arc<AtomicU64>,
    ) -> Arc<Self> {
        Arc::new(Router {
            schema,
            managers: RwLock::new(HashMap::new()),
            by_name: RwLock::new(HashMap::new()),
            method_index: RwLock::new(HashMap::new()),
            state_index: RwLock::new(HashMap::new()),
            lifecycle_index: RwLock::new(HashMap::new()),
            persist_index: RwLock::new(HashMap::new()),
            flow_index: RwLock::new(HashMap::new()),
            signal_index: RwLock::new(HashMap::new()),
            ids: IdGen::new(),
            method_phase_count: [AtomicU64::new(0), AtomicU64::new(0)],
            flow_count: AtomicU64::new(0),
            seq,
            mode: RwLock::new(CompositionMode::Synchronous),
            workers: Mutex::new(HashMap::new()),
            handler: RwLock::new(None),
            composition_gate: RwLock::new(None),
            observers: RwLock::new(Vec::new()),
            trace: Arc::new(Trace::default()),
            metrics,
        })
    }

    /// The observability registry this router records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Install the rule-firing handler (the engine).
    pub fn set_handler(&self, h: Arc<dyn FireHandler>) {
        *self.handler.write() = Some(h);
    }

    /// Add a passive delivery observer.
    pub fn add_observer(&self, f: Observer) {
        self.observers.write().push(f);
    }

    /// Install the composition ownership gate (see the field docs).
    /// The distribution layer passes `|ty| owner(ty) == this_shard`.
    pub fn set_composition_gate(&self, gate: CompositionGate) {
        *self.composition_gate.write() = Some(gate);
    }

    /// Whether this router instance may feed `mgr`'s compositor with an
    /// occurrence of local (`remote == false`) or remote origin.
    ///
    /// Same-transaction-scoped composites always compose locally and
    /// never accept remote constituents: their windows are bound to
    /// *local* transaction boundaries, and transaction identifiers are
    /// per-shard, so a remote occurrence's `txn` cannot be correlated
    /// with any window on this shard. Cross-transaction composites are
    /// fed only on their owning shard (the gate), from both the local
    /// raise path and remote committed streams.
    fn composes(&self, mgr: &EcaManager, remote: bool) -> bool {
        let cross_txn = matches!(
            &mgr.spec,
            EventSpec::Composite(spec) if spec.scope == CompositionScope::CrossTransaction
        );
        if !cross_txn {
            return !remote;
        }
        match &*self.composition_gate.read() {
            Some(gate) => gate(mgr.event_type),
            None => true,
        }
    }

    /// Next global event sequence number.
    fn next_seq(&self) -> Timestamp {
        Timestamp::new(self.seq.fetch_add(1, Ordering::Relaxed))
    }

    /// The sequence clock this router stamps occurrences from.
    pub fn seq_clock(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.seq)
    }

    // ---- registration ----

    /// Register an event type under `name`.
    pub fn register(self: &Arc<Self>, name: &str, spec: EventSpec) -> EventTypeId {
        let id: EventTypeId = self.ids.next();
        match &spec {
            EventSpec::Primitive(p) => match p {
                PrimitiveEvent::Method {
                    class,
                    method,
                    phase,
                } => {
                    self.method_index
                        .write()
                        .entry((*class, *method, *phase))
                        .or_default()
                        .push(id);
                    let slot = match phase {
                        MethodPhase::Before => 0,
                        MethodPhase::After => 1,
                    };
                    self.method_phase_count[slot].fetch_add(1, Ordering::Release);
                }
                PrimitiveEvent::StateChange { class, attribute } => {
                    self.state_index
                        .write()
                        .entry((*class, attribute.clone()))
                        .or_default()
                        .push(id);
                }
                PrimitiveEvent::Lifecycle { class, deletion } => {
                    self.lifecycle_index
                        .write()
                        .entry((*class, *deletion))
                        .or_default()
                        .push(id);
                }
                PrimitiveEvent::Persist { class } => {
                    self.persist_index
                        .write()
                        .entry(*class)
                        .or_default()
                        .push(id);
                }
                PrimitiveEvent::Flow { point } => {
                    self.flow_index.write().entry(*point).or_default().push(id);
                    self.flow_count.fetch_add(1, Ordering::Release);
                }
                PrimitiveEvent::UserSignal { name } => {
                    self.signal_index
                        .write()
                        .entry(name.clone())
                        .or_default()
                        .push(id);
                }
                // Temporal specs are driven by the temporal manager,
                // which raises them via `raise_temporal`.
                PrimitiveEvent::TemporalAbsolute { .. }
                | PrimitiveEvent::TemporalPeriodic { .. }
                | PrimitiveEvent::TemporalRelative { .. } => {}
            },
            EventSpec::Composite(c) => {
                // Subscribe this composite to each referenced type.
                for dep in c.expr.referenced_types() {
                    if let Some(mgr) = self.manager(dep) {
                        mgr.subscribe(id);
                    }
                }
            }
        }
        let mgr = Arc::new(EcaManager::new(id, name.to_string(), spec, &self.metrics));
        self.managers.write().insert(id, Arc::clone(&mgr));
        self.by_name.write().insert(name.to_string(), id);
        // In parallel mode, composite managers get their worker now.
        if mgr.compositor.is_some() && *self.mode.read() == CompositionMode::Parallel {
            self.spawn_worker(&mgr);
        }
        id
    }

    /// Whether any method event of `phase` is registered anywhere.
    /// One relaxed-side atomic load — the sentries consult this before
    /// paying for a raise that cannot match (E13's hot path raises the
    /// before phase 50k times against zero registrations otherwise).
    /// Whether any flow event is registered anywhere (see
    /// [`Router::raise_flow`]).
    pub fn observes_flow(&self) -> bool {
        self.flow_count.load(Ordering::Acquire) > 0
    }

    pub fn observes_method_phase(&self, phase: MethodPhase) -> bool {
        let slot = match phase {
            MethodPhase::Before => 0,
            MethodPhase::After => 1,
        };
        self.method_phase_count[slot].load(Ordering::Acquire) > 0
    }

    /// Look up a manager.
    pub fn manager(&self, id: EventTypeId) -> Option<Arc<EcaManager>> {
        self.managers.read().get(&id).cloned()
    }

    /// Look up an event type by registration name.
    pub fn event_by_name(&self, name: &str) -> Option<EventTypeId> {
        self.by_name.read().get(name).copied()
    }

    /// All managers (introspection / figure regeneration).
    pub fn managers(&self) -> Vec<Arc<EcaManager>> {
        let mut v: Vec<_> = self.managers.read().values().cloned().collect();
        v.sort_by_key(|m| m.event_type);
        v
    }

    // ---- composition mode ----

    /// Switch composition dispatch. Call before raising events.
    pub fn set_mode(self: &Arc<Self>, mode: CompositionMode) {
        let old = *self.mode.read();
        if old == mode {
            return;
        }
        *self.mode.write() = mode;
        match mode {
            CompositionMode::Parallel => {
                for mgr in self.managers() {
                    if mgr.compositor.is_some() {
                        self.spawn_worker(&mgr);
                    }
                }
            }
            CompositionMode::Synchronous => {
                for mgr in self.managers() {
                    mgr.worker_tx.write().take();
                }
                let mut workers = self.workers.lock();
                for (_, (tx, handle)) in workers.drain() {
                    let _ = tx.send(WorkerMsg::Shutdown);
                    let _ = handle.join();
                }
            }
        }
    }

    pub fn mode(&self) -> CompositionMode {
        *self.mode.read()
    }

    fn spawn_worker(self: &Arc<Self>, mgr: &Arc<EcaManager>) {
        let mut workers = self.workers.lock();
        if workers.contains_key(&mgr.event_type) {
            return;
        }
        let (tx, rx) = bounded::<WorkerMsg>(INBOX_CAP);
        let router = Arc::clone(self);
        let ty = mgr.event_type;
        let outer_mgr = Arc::clone(mgr);
        let mgr = Arc::clone(mgr);
        let handle = std::thread::Builder::new()
            .name(format!("eca-{}", mgr.name))
            .spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WorkerMsg::Feed(occ) => router.feed_compositor(&mgr, &occ),
                        WorkerMsg::CloseTxn(txn, fire) => router.close_compositor(&mgr, txn, fire),
                        WorkerMsg::Expire(now) => router.expire_compositor(&mgr, now),
                        WorkerMsg::Flush(ack) => {
                            let _ = ack.send(());
                        }
                        WorkerMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn eca worker");
        outer_mgr.worker_tx.write().replace(tx.clone());
        workers.insert(ty, (tx, handle));
    }

    // ---- detection entry points ----

    /// A monitored method invocation was observed.
    #[allow(clippy::too_many_arguments)]
    pub fn raise_method(
        self: &Arc<Self>,
        txn: TxnId,
        top: TxnId,
        at: TimePoint,
        receiver: reach_common::ObjectId,
        class: ClassId,
        method: MethodId,
        phase: MethodPhase,
        args: &reach_object::Args,
    ) {
        let types = self.lookup_method(class, method, phase);
        for ty in types {
            let occ = Arc::new(EventOccurrence {
                event_type: ty,
                seq: self.next_seq(),
                at,
                txn: Some(txn),
                top_txn: Some(top),
                data: EventData {
                    receiver: Some(receiver),
                    args: args.clone(),
                    ..Default::default()
                },
                constituents: Vec::new(),
            });
            self.trace.log(|| {
                format!(
                    "method-event detected (class {class}, {method}, {phase:?}) -> ECA-manager[{ty}]"
                )
            });
            self.deliver(occ);
        }
    }

    /// Batched [`Router::raise_method`]: amortize the detector-index
    /// lookup, occurrence construction and delivery over runs of equal
    /// `(class, method, phase)` — the shape a telemetry batch has.
    ///
    /// When a run maps to a *single* event type, its occurrences are
    /// delivered as one batch (see [`Router::deliver_batch`] for the
    /// ordering contract). Keys with several registered event types
    /// keep the per-call type interleaving of the unbatched path.
    pub fn raise_method_batch(self: &Arc<Self>, batch: &[MethodObservation<'_>]) {
        let mut i = 0;
        while i < batch.len() {
            let key = (batch[i].class, batch[i].method, batch[i].phase);
            let mut j = i + 1;
            while j < batch.len() && (batch[j].class, batch[j].method, batch[j].phase) == key {
                j += 1;
            }
            let types = self.lookup_method(key.0, key.1, key.2);
            let make_occ = |m: &MethodObservation<'_>, ty: EventTypeId| {
                Arc::new(EventOccurrence {
                    event_type: ty,
                    seq: self.next_seq(),
                    at: m.at,
                    txn: Some(m.txn),
                    top_txn: Some(m.top),
                    data: EventData {
                        receiver: Some(m.receiver),
                        args: m.args.clone(),
                        ..Default::default()
                    },
                    constituents: Vec::new(),
                })
            };
            if types.len() == 1 {
                let ty = types[0];
                self.trace.log(|| {
                    format!(
                        "method-event batch x{} (class {}, {}, {:?}) -> ECA-manager[{ty}]",
                        j - i,
                        key.0,
                        key.1,
                        key.2
                    )
                });
                let occs: Vec<_> = batch[i..j].iter().map(|m| make_occ(m, ty)).collect();
                self.deliver_batch(occs);
            } else {
                for m in &batch[i..j] {
                    for &ty in &types {
                        self.deliver(make_occ(m, ty));
                    }
                }
            }
            i = j;
        }
    }

    fn lookup_method(
        &self,
        class: ClassId,
        method: MethodId,
        phase: MethodPhase,
    ) -> Vec<EventTypeId> {
        let index = self.method_index.read();
        let mut out = Vec::new();
        if let Some(tys) = index.get(&(class, method, phase)) {
            out.extend_from_slice(tys);
        }
        // Events declared on a base class catch subclass receivers.
        if let Ok(lineage) = self.schema.lineage(class) {
            for anc in lineage.into_iter().skip(1) {
                if let Some(tys) = index.get(&(anc, method, phase)) {
                    out.extend_from_slice(tys);
                }
            }
        }
        out
    }

    /// A state change was observed.
    #[allow(clippy::too_many_arguments)]
    pub fn raise_state_change(
        self: &Arc<Self>,
        txn: TxnId,
        top: TxnId,
        at: TimePoint,
        receiver: reach_common::ObjectId,
        class: ClassId,
        attribute: &str,
        old: reach_object::Value,
        new: reach_object::Value,
    ) {
        let types = {
            let index = self.state_index.read();
            let mut out = Vec::new();
            if let Some(tys) = index.get(&(class, attribute.to_string())) {
                out.extend_from_slice(tys);
            }
            if let Ok(lineage) = self.schema.lineage(class) {
                for anc in lineage.into_iter().skip(1) {
                    if let Some(tys) = index.get(&(anc, attribute.to_string())) {
                        out.extend_from_slice(tys);
                    }
                }
            }
            out
        };
        for ty in types {
            let occ = Arc::new(EventOccurrence {
                event_type: ty,
                seq: self.next_seq(),
                at,
                txn: Some(txn),
                top_txn: Some(top),
                data: EventData {
                    receiver: Some(receiver),
                    attribute: Some(attribute.to_string()),
                    old: Some(old.clone()),
                    new: Some(new.clone()),
                    ..Default::default()
                },
                constituents: Vec::new(),
            });
            self.trace.log(|| {
                format!("state-change detected ({class}.{attribute}) -> ECA-manager[{ty}]")
            });
            self.deliver(occ);
        }
    }

    /// A constructor/destructor was observed.
    pub fn raise_lifecycle(
        self: &Arc<Self>,
        txn: TxnId,
        top: TxnId,
        at: TimePoint,
        receiver: reach_common::ObjectId,
        class: ClassId,
        deletion: bool,
    ) {
        let types = {
            let index = self.lifecycle_index.read();
            let mut out = Vec::new();
            if let Some(tys) = index.get(&(class, deletion)) {
                out.extend_from_slice(tys);
            }
            if let Ok(lineage) = self.schema.lineage(class) {
                for anc in lineage.into_iter().skip(1) {
                    if let Some(tys) = index.get(&(anc, deletion)) {
                        out.extend_from_slice(tys);
                    }
                }
            }
            out
        };
        for ty in types {
            let occ = Arc::new(EventOccurrence {
                event_type: ty,
                seq: self.next_seq(),
                at,
                txn: Some(txn),
                top_txn: Some(top),
                data: EventData::for_receiver(receiver),
                constituents: Vec::new(),
            });
            self.deliver(occ);
        }
    }

    /// An object was made persistent.
    pub fn raise_persist(
        self: &Arc<Self>,
        txn: TxnId,
        top: TxnId,
        at: TimePoint,
        receiver: reach_common::ObjectId,
        class: ClassId,
    ) {
        let types = {
            let index = self.persist_index.read();
            let mut out = Vec::new();
            if let Some(tys) = index.get(&class) {
                out.extend_from_slice(tys);
            }
            if let Ok(lineage) = self.schema.lineage(class) {
                for anc in lineage.into_iter().skip(1) {
                    if let Some(tys) = index.get(&anc) {
                        out.extend_from_slice(tys);
                    }
                }
            }
            out
        };
        for ty in types {
            let occ = Arc::new(EventOccurrence {
                event_type: ty,
                seq: self.next_seq(),
                at,
                txn: Some(txn),
                top_txn: Some(top),
                data: EventData::for_receiver(receiver),
                constituents: Vec::new(),
            });
            self.deliver(occ);
        }
    }

    /// A transaction flow point was reached.
    pub fn raise_flow(self: &Arc<Self>, txn: TxnId, top: TxnId, at: TimePoint, point: FlowPoint) {
        if !self.observes_flow() {
            return;
        }
        let types = self
            .flow_index
            .read()
            .get(&point)
            .cloned()
            .unwrap_or_default();
        for ty in types {
            let occ = Arc::new(EventOccurrence {
                event_type: ty,
                seq: self.next_seq(),
                at,
                txn: Some(txn),
                top_txn: Some(top),
                data: EventData::default(),
                constituents: Vec::new(),
            });
            self.deliver(occ);
        }
    }

    /// An explicit application signal.
    pub fn raise_signal(
        self: &Arc<Self>,
        txn: Option<TxnId>,
        top: Option<TxnId>,
        at: TimePoint,
        name: &str,
        receiver: Option<reach_common::ObjectId>,
        args: Vec<reach_object::Value>,
    ) {
        let args: reach_object::Args = args.into();
        let types = self
            .signal_index
            .read()
            .get(name)
            .cloned()
            .unwrap_or_default();
        for ty in types {
            let occ = Arc::new(EventOccurrence {
                event_type: ty,
                seq: self.next_seq(),
                at,
                txn,
                top_txn: top,
                data: EventData {
                    signal: Some(name.to_string()),
                    receiver,
                    args: args.clone(),
                    ..Default::default()
                },
                constituents: Vec::new(),
            });
            self.deliver(occ);
        }
    }

    /// A temporal event fired (called by the temporal manager).
    pub fn raise_temporal(self: &Arc<Self>, ty: EventTypeId, at: TimePoint) {
        let occ = Arc::new(EventOccurrence {
            event_type: ty,
            seq: self.next_seq(),
            at,
            txn: None,
            top_txn: None,
            data: EventData::default(),
            constituents: Vec::new(),
        });
        self.trace
            .log(|| format!("temporal event at {at} -> ECA-manager[{ty}]"));
        self.deliver(occ);
    }

    // ---- delivery (Figure 2) ----

    /// Deliver an occurrence to its ECA-manager: history, rules,
    /// propagation to composite managers.
    pub fn deliver(self: &Arc<Self>, occ: Arc<EventOccurrence>) {
        let Some(mgr) = self.manager(occ.event_type) else {
            return;
        };
        let t0 = self.metrics.span_start();
        if t0.is_some() {
            self.metrics.events.detected.inc();
        }
        self.trace.log(|| {
            format!(
                "ECA-manager[{}] creates Event object (seq {})",
                mgr.name, occ.seq
            )
        });
        mgr.history.record(Arc::clone(&occ));
        for obs in self.observers.read().iter() {
            obs(&occ);
        }
        // 1. Fire directly-attached rules.
        let rules = mgr.rules();
        if !rules.is_empty() {
            self.trace.log(|| {
                format!(
                    "ECA-manager[{}] fires {} rule(s), then signals go-ahead",
                    mgr.name,
                    rules.len()
                )
            });
            if let Some(h) = self.handler.read().clone() {
                h.fire(rules, Arc::clone(&occ));
            }
        }
        // 2. Propagate to composite ECA-managers.
        for sub in mgr.subscribers() {
            let Some(sub_mgr) = self.manager(sub) else {
                continue;
            };
            if !self.composes(&sub_mgr, false) {
                continue;
            }
            self.trace.log(|| {
                format!(
                    "ECA-manager[{}] propagates -> composite ECA-manager[{}]",
                    mgr.name, sub_mgr.name
                )
            });
            // Fast path: the manager's cached worker inbox.
            if !self.send_feed(&sub_mgr, &occ) {
                self.feed_compositor(&sub_mgr, &occ);
            }
        }
        if let Some(t0) = t0 {
            self.metrics
                .record_span(Stage::EcaManager, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Deliver an occurrence that was detected — and whose primitive
    /// rules already fired — on another shard. Only composite
    /// subscribers are fed: the owning shard recorded the occurrence in
    /// its history, notified its observers and ran its rules, so here
    /// the occurrence exists solely to complete cross-shard
    /// compositions (whose completions then fire *this* shard's rules
    /// through the ordinary [`Router::deliver`] of the composite).
    pub fn deliver_remote(self: &Arc<Self>, occ: Arc<EventOccurrence>) {
        let Some(mgr) = self.manager(occ.event_type) else {
            return;
        };
        for sub in mgr.subscribers() {
            let Some(sub_mgr) = self.manager(sub) else {
                continue;
            };
            if !self.composes(&sub_mgr, true) {
                continue;
            }
            if !self.send_feed(&sub_mgr, &occ) {
                self.feed_compositor(&sub_mgr, &occ);
            }
        }
    }

    /// Deliver a batch of occurrences of **one event type** (in `seq`
    /// order), amortizing the per-event costs of [`Router::deliver`]:
    /// one manager lookup, one history append, one rules/subscribers/
    /// observers snapshot and one metrics stamp for the whole batch.
    ///
    /// Ordering contract, relative to per-event delivery:
    /// * rule firing sequences are identical — occurrences go through
    ///   the engine in event order, and events raised *by* a fired rule
    ///   are still delivered inline before the next occurrence fires;
    /// * when the type has composite subscribers, the exact per-event
    ///   interleaving `[observers, fire, feed]` is kept per occurrence;
    /// * when it has none (nothing to feed), passive observers see the
    ///   whole batch before the first rule fires — observers cannot
    ///   veto or fire, so firing sequences are unaffected, and the
    ///   engine can amortize scheduling over the batch;
    /// * the batch is recorded into the local history up front, so a
    ///   rule reading its own manager's history mid-batch sees events
    ///   of later batch occurrences already recorded.
    pub fn deliver_batch(self: &Arc<Self>, occs: Vec<Arc<EventOccurrence>>) {
        if occs.len() <= 1 {
            if let Some(occ) = occs.into_iter().next() {
                self.deliver(occ);
            }
            return;
        }
        debug_assert!(occs.windows(2).all(|w| w[0].event_type == w[1].event_type));
        let Some(mgr) = self.manager(occs[0].event_type) else {
            return;
        };
        let t0 = self.metrics.span_start();
        if t0.is_some() {
            self.metrics.events.detected.add(occs.len() as u64);
        }
        self.trace.log(|| {
            format!(
                "ECA-manager[{}] creates {} Event objects (batch)",
                mgr.name,
                occs.len()
            )
        });
        mgr.history.record_batch(&occs);
        let observers = self.observers.read().clone();
        let rules = mgr.rules();
        let handler = if rules.is_empty() {
            None
        } else {
            self.handler.read().clone()
        };
        let subscribers = mgr.subscribers();
        if subscribers.is_empty() {
            for occ in &occs {
                for obs in &observers {
                    obs(occ);
                }
            }
            if let Some(h) = handler {
                h.fire_batch(rules, &occs);
            }
        } else {
            let sub_mgrs: Vec<_> = subscribers
                .iter()
                .filter_map(|s| self.manager(*s))
                .filter(|m| self.composes(m, false))
                .collect();
            for occ in &occs {
                for obs in &observers {
                    obs(occ);
                }
                if let Some(h) = &handler {
                    h.fire(rules.clone(), Arc::clone(occ));
                }
                for sub_mgr in &sub_mgrs {
                    if !self.send_feed(sub_mgr, occ) {
                        self.feed_compositor(sub_mgr, occ);
                    }
                }
            }
        }
        if let Some(t0) = t0 {
            self.metrics
                .record_span(Stage::EcaManager, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Try to hand an occurrence to `sub_mgr`'s worker inbox. Returns
    /// false (caller feeds inline) when the manager has no worker
    /// (synchronous mode), the worker is gone, or — for compositor
    /// worker threads only — the bounded inbox is full. Application
    /// threads block on a full inbox instead: that is the admission
    /// control the bound exists for, and it preserves per-compositor
    /// FIFO order. Workers must not block (see [`IN_WORKER`]), so under
    /// overload a cascading completion is composed inline by the
    /// sending worker; the compositor's own lock keeps that safe.
    fn send_feed(&self, sub_mgr: &EcaManager, occ: &Arc<EventOccurrence>) -> bool {
        let tx = sub_mgr.worker_tx.read();
        let Some(tx) = &*tx else {
            return false;
        };
        if IN_WORKER.with(|w| w.get()) {
            match tx.try_send(WorkerMsg::Feed(Arc::clone(occ))) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
            }
        } else {
            tx.send(WorkerMsg::Feed(Arc::clone(occ))).is_ok()
        }
    }

    fn feed_compositor(self: &Arc<Self>, mgr: &Arc<EcaManager>, occ: &Arc<EventOccurrence>) {
        let Some(compositor) = &mgr.compositor else {
            return;
        };
        let t0 = self.metrics.span_start();
        let completions = compositor.feed(occ);
        if let Some(t0) = t0 {
            self.metrics
                .record_span(Stage::Compositor, t0.elapsed().as_nanos() as u64);
        }
        for completion in completions {
            self.emit_completion(mgr, completion);
        }
    }

    fn close_compositor(self: &Arc<Self>, mgr: &Arc<EcaManager>, txn: TxnId, fire: bool) {
        let Some(compositor) = &mgr.compositor else {
            return;
        };
        for completion in compositor.close_txn(txn) {
            if fire {
                self.emit_completion(mgr, completion);
            }
        }
    }

    fn expire_compositor(self: &Arc<Self>, mgr: &Arc<EcaManager>, now: TimePoint) {
        let Some(compositor) = &mgr.compositor else {
            return;
        };
        for completion in compositor.expire(now) {
            self.emit_completion(mgr, completion);
        }
    }

    /// Turn a compositor completion into a composite occurrence and
    /// deliver it (recursively: composites can feed other composites).
    fn emit_completion(self: &Arc<Self>, mgr: &Arc<EcaManager>, completion: Completion) {
        let scope = match &mgr.spec {
            EventSpec::Composite(CompositeSpec { scope, .. }) => *scope,
            EventSpec::Primitive(_) => return,
        };
        // A same-transaction composite inherits its (single) origin
        // transaction; cross-transaction composites belong to none.
        let (txn, top) = match scope {
            crate::algebra::CompositionScope::SameTransaction => {
                let top = completion.constituents.iter().find_map(|c| c.top_txn);
                (top, top)
            }
            crate::algebra::CompositionScope::CrossTransaction => (None, None),
        };
        let at = completion
            .constituents
            .iter()
            .map(|c| c.at)
            .max()
            .unwrap_or(TimePoint::ZERO);
        let occ = Arc::new(EventOccurrence {
            event_type: mgr.event_type,
            seq: self.next_seq(),
            at,
            txn,
            top_txn: top,
            data: EventData::default(),
            constituents: completion.constituents,
        });
        if self.metrics.on() {
            self.metrics.events.composites_completed.inc();
        }
        self.trace.log(|| {
            format!(
                "composite ECA-manager[{}] completes ({} constituents{})",
                mgr.name,
                occ.constituents.len(),
                if completion.at_window_close {
                    ", at window close"
                } else {
                    ""
                }
            )
        });
        self.deliver(occ);
    }

    // ---- lifecycle hooks from the transaction manager ----

    /// A top-level transaction ended. `fire_windows` is true on commit
    /// (window operators may fire) and false on abort (the transaction's
    /// events are revoked with it).
    pub fn close_txn(self: &Arc<Self>, txn: TxnId, fire_windows: bool) {
        match *self.mode.read() {
            CompositionMode::Synchronous => {
                for mgr in self.managers() {
                    if mgr.compositor.is_some() {
                        self.close_compositor(&mgr, txn, fire_windows);
                    }
                }
            }
            CompositionMode::Parallel => {
                let workers = self.workers.lock();
                for (tx, _) in workers.values() {
                    let _ = tx.send(WorkerMsg::CloseTxn(txn, fire_windows));
                }
            }
        }
    }

    /// Sweep validity intervals against `now`.
    pub fn expire(self: &Arc<Self>, now: TimePoint) {
        match *self.mode.read() {
            CompositionMode::Synchronous => {
                for mgr in self.managers() {
                    if mgr.compositor.is_some() {
                        self.expire_compositor(&mgr, now);
                    }
                }
            }
            CompositionMode::Parallel => {
                let workers = self.workers.lock();
                for (tx, _) in workers.values() {
                    let _ = tx.send(WorkerMsg::Expire(now));
                }
            }
        }
    }

    /// Barrier: wait until every composite worker has drained its queue.
    /// No-op in synchronous mode.
    pub fn flush(&self) {
        let acks: Vec<_> = {
            let workers = self.workers.lock();
            workers
                .values()
                .filter_map(|(tx, _)| {
                    let (ack_tx, ack_rx) = bounded(1);
                    tx.send(WorkerMsg::Flush(ack_tx)).ok().map(|_| ack_rx)
                })
                .collect()
        };
        for rx in acks {
            let _ = rx.recv();
        }
    }

    /// Total semi-composed instances across all compositors (§3.3 GC
    /// observability).
    pub fn total_live_instances(&self) -> usize {
        self.managers().iter().map(|m| m.live_instances()).sum()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        let mut workers = self.workers.lock();
        for (_, (tx, handle)) in workers.drain() {
            let _ = tx.send(WorkerMsg::Shutdown);
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("managers", &self.managers.read().len())
            .field("mode", &self.mode())
            .finish()
    }
}
