//! The event model: event types (specifications) and occurrences.
//!
//! §3.1: "Primitive events can be either method-invocation events,
//! state-change events, flow-control events (such as transaction-related
//! events), and absolute temporal events. Explicit user signals can be
//! modelled as method-invocation events." REACH's first prototype
//! supports method events, DB-internal events (commit, persist), time
//! events and composite events — all of which exist here, plus the
//! state-change events it deferred to future work (our object space can
//! trap them; the commercial systems of §4 could not).

use crate::algebra::{CompositionScope, Correlation, EventExpr, Lifespan};
use crate::consumption::ConsumptionPolicy;
use crate::coupling::EventCategory;
use reach_common::{ClassId, EventTypeId, MethodId, ObjectId, TimePoint, Timestamp, TxnId};
use reach_object::{Args, Value};
use std::sync::Arc;
use std::time::Duration;

/// Which side of a method invocation an event observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodPhase {
    Before,
    After,
}

/// Transaction flow-control points (§3.2's BOT, EOT, Commit, Abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowPoint {
    Begin,
    /// End of the transaction's own work, before commit (EOT).
    PreCommit,
    Commit,
    Abort,
}

/// A primitive event specification.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimitiveEvent {
    /// `before`/`after` an invocation of `method` on instances of
    /// `class` (or its subclasses).
    Method {
        class: ClassId,
        method: MethodId,
        phase: MethodPhase,
    },
    /// A write to `class.attribute`.
    StateChange { class: ClassId, attribute: String },
    /// Constructor/destructor of a class instance.
    Lifecycle { class: ClassId, deletion: bool },
    /// An object of `class` was made persistent — the `persist`
    /// DB-internal event of §3.1.
    Persist { class: ClassId },
    /// A transaction flow-control point.
    Flow { point: FlowPoint },
    /// An absolute point in (virtual) time.
    TemporalAbsolute { at: TimePoint },
    /// Every `period`, starting at `first`.
    TemporalPeriodic { first: TimePoint, period: Duration },
    /// `delay` after each occurrence of another event type.
    TemporalRelative {
        anchor: EventTypeId,
        delay: Duration,
    },
    /// An explicit application signal, by name.
    UserSignal { name: String },
}

impl PrimitiveEvent {
    /// Whether the event occurs independently of any transaction.
    pub fn is_temporal(&self) -> bool {
        matches!(
            self,
            PrimitiveEvent::TemporalAbsolute { .. }
                | PrimitiveEvent::TemporalPeriodic { .. }
                | PrimitiveEvent::TemporalRelative { .. }
        )
    }
}

/// A composite event specification.
#[derive(Debug, Clone)]
pub struct CompositeSpec {
    pub expr: EventExpr,
    pub scope: CompositionScope,
    pub lifespan: Lifespan,
    pub consumption: ConsumptionPolicy,
    pub correlation: Correlation,
}

/// Any registered event type.
#[derive(Debug, Clone)]
pub enum EventSpec {
    Primitive(PrimitiveEvent),
    Composite(CompositeSpec),
}

impl EventSpec {
    /// The Table 1 column this event type belongs to.
    pub fn category(&self) -> EventCategory {
        match self {
            EventSpec::Primitive(p) if p.is_temporal() => EventCategory::PurelyTemporal,
            EventSpec::Primitive(_) => EventCategory::SingleMethod,
            EventSpec::Composite(c) => match c.scope {
                CompositionScope::SameTransaction => EventCategory::CompositeSingleTx,
                CompositionScope::CrossTransaction => EventCategory::CompositeMultiTx,
            },
        }
    }
}

/// The parameters carried by an event occurrence — "OID of the object to
/// be acted upon, transaction-id, timestamp, and other attributes that
/// can be taken from the method invocation message" (§6.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventData {
    /// Receiver of a method event / subject of a state or lifecycle event.
    pub receiver: Option<ObjectId>,
    /// Method arguments (method events) or signal payload — shared
    /// with the originating `MethodCall`, so copying an occurrence (or
    /// raising one per registered event type) bumps a refcount instead
    /// of cloning values.
    pub args: Args,
    /// Attribute name (state-change events).
    pub attribute: Option<String>,
    /// Old value (state-change events).
    pub old: Option<Value>,
    /// New value (state-change events).
    pub new: Option<Value>,
    /// Signal name (user signals).
    pub signal: Option<String>,
}

impl EventData {
    pub fn for_receiver(receiver: ObjectId) -> Self {
        EventData {
            receiver: Some(receiver),
            ..Default::default()
        }
    }
}

/// One event occurrence — the "event object" a primitive ECA-manager
/// creates in Figure 2.
#[derive(Debug, Clone)]
pub struct EventOccurrence {
    /// Which registered event type occurred.
    pub event_type: EventTypeId,
    /// Global detection sequence number (total order of detections).
    pub seq: Timestamp,
    /// Clock time of detection.
    pub at: TimePoint,
    /// The transaction the occurrence belongs to (`None` for temporal
    /// events, which "occur independently of transactions").
    pub txn: Option<TxnId>,
    /// The *top-level* transaction of `txn`, used for composition
    /// relative to transaction boundaries (§3.2).
    pub top_txn: Option<TxnId>,
    /// Parameters captured at the detection point.
    pub data: EventData,
    /// For composite occurrences: the constituent occurrences, in
    /// completion order.
    pub constituents: Vec<Arc<EventOccurrence>>,
}

impl EventOccurrence {
    /// All *distinct* top-level transactions that contributed primitives
    /// to this occurrence (itself included). Detached causally dependent
    /// rules depend on every one of them (Table 1's "all commit" /
    /// "all abort").
    pub fn origin_txns(&self) -> Vec<TxnId> {
        let mut out = Vec::new();
        fn walk(e: &EventOccurrence, out: &mut Vec<TxnId>) {
            if let Some(t) = e.top_txn {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
            for c in &e.constituents {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// The parameters of the first primitive constituent (or this
    /// occurrence itself if primitive) — convenient binding source for
    /// rule conditions over composite events.
    pub fn first_primitive(&self) -> &EventOccurrence {
        let mut cur = self;
        while let Some(first) = cur.constituents.first() {
            cur = first;
        }
        cur
    }
}

/// Handle into an [`OccSlab`] — a slot index plus the slot's tag at
/// allocation time. Copying a handle is two `u32` moves; no refcount
/// traffic. A handle outliving its slot (tag mismatch after the slot
/// was freed and reused) resolves to `None` instead of aliasing the
/// new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OccHandle {
    slot: u32,
    tag: u32,
}

struct OccSlot {
    /// Bumped every time the slot is freed, invalidating old handles.
    tag: u32,
    occ: Option<Arc<EventOccurrence>>,
}

/// Generation-indexed slab of event occurrences backing the compositors'
/// constituent storage (§6.3's hot path).
///
/// Semi-composed automaton instances used to hold `Arc<EventOccurrence>`
/// clones directly, and gathering constituents re-cloned every `Arc` at
/// each tree level. With the slab, instances hold [`OccHandle`]s (plain
/// indices), and the occurrences themselves live in slots grouped into
/// *generations* — one generation per composition window (automaton
/// instance). When the window closes (the instance fires, its life-span
/// elapses, its transaction ends, or pressure GC discards it), the
/// whole generation is freed in one sweep and its slots recycle through
/// a free list; steady-state composition allocates no slot storage at
/// all once the slab has reached its working-set size.
///
/// Handles never escape the compositor: completions are resolved back
/// to `Arc<EventOccurrence>` *before* the generation is freed, so the
/// engine-facing API is unchanged and no occurrence can dangle.
pub struct OccSlab {
    slots: Vec<OccSlot>,
    free: Vec<u32>,
    /// Open generation → handles allocated under it.
    gens: std::collections::HashMap<u64, Vec<OccHandle>>,
    next_gen: u64,
    live: usize,
    high_water: usize,
}

impl Default for OccSlab {
    fn default() -> Self {
        Self::new()
    }
}

impl OccSlab {
    pub fn new() -> Self {
        OccSlab {
            slots: Vec::new(),
            free: Vec::new(),
            gens: std::collections::HashMap::new(),
            next_gen: 0,
            live: 0,
            high_water: 0,
        }
    }

    /// Open a new generation (one per composition window).
    pub fn open_gen(&mut self) -> u64 {
        let g = self.next_gen;
        self.next_gen += 1;
        self.gens.insert(g, Vec::new());
        g
    }

    /// Store an occurrence under `gen`, returning its handle.
    pub fn alloc(&mut self, gen: u64, occ: Arc<EventOccurrence>) -> OccHandle {
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].occ = Some(occ);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(OccSlot {
                    tag: 0,
                    occ: Some(occ),
                });
                i
            }
        };
        let h = OccHandle {
            slot,
            tag: self.slots[slot as usize].tag,
        };
        self.gens.entry(gen).or_default().push(h);
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        h
    }

    /// Resolve a handle. `None` iff the handle's slot was freed since.
    pub fn get(&self, h: OccHandle) -> Option<&Arc<EventOccurrence>> {
        let slot = self.slots.get(h.slot as usize)?;
        if slot.tag != h.tag {
            return None;
        }
        slot.occ.as_ref()
    }

    /// Free one slot early (a superseded `recent`-context constituent).
    /// The handle stays in its generation's list; the tag check makes
    /// the later generation sweep skip it.
    pub fn free_one(&mut self, h: OccHandle) {
        if let Some(slot) = self.slots.get_mut(h.slot as usize) {
            if slot.tag == h.tag && slot.occ.is_some() {
                slot.occ = None;
                slot.tag = slot.tag.wrapping_add(1);
                self.free.push(h.slot);
                self.live -= 1;
            }
        }
    }

    /// Close a generation: free every slot allocated under it.
    pub fn free_gen(&mut self, gen: u64) {
        let Some(handles) = self.gens.remove(&gen) else {
            return;
        };
        for h in handles {
            self.free_one(h);
        }
    }

    /// Occupied slots right now.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most slots ever occupied at once (working-set size).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::EventCategory;

    fn occ(ty: u64, top: Option<u64>, constituents: Vec<Arc<EventOccurrence>>) -> EventOccurrence {
        EventOccurrence {
            event_type: EventTypeId::new(ty),
            seq: Timestamp::new(ty),
            at: TimePoint::ZERO,
            txn: top.map(TxnId::new),
            top_txn: top.map(TxnId::new),
            data: EventData::default(),
            constituents,
        }
    }

    #[test]
    fn categories_follow_the_spec() {
        let method = EventSpec::Primitive(PrimitiveEvent::Method {
            class: ClassId::new(1),
            method: MethodId::new(1),
            phase: MethodPhase::After,
        });
        assert_eq!(method.category(), EventCategory::SingleMethod);
        let state = EventSpec::Primitive(PrimitiveEvent::StateChange {
            class: ClassId::new(1),
            attribute: "x".into(),
        });
        assert_eq!(state.category(), EventCategory::SingleMethod);
        let temporal = EventSpec::Primitive(PrimitiveEvent::TemporalAbsolute {
            at: TimePoint::from_secs(1),
        });
        assert_eq!(temporal.category(), EventCategory::PurelyTemporal);
        let composite1 = EventSpec::Composite(CompositeSpec {
            expr: EventExpr::Primitive(EventTypeId::new(1)),
            scope: CompositionScope::SameTransaction,
            lifespan: Lifespan::Transaction,
            consumption: ConsumptionPolicy::Chronicle,
            correlation: Default::default(),
        });
        assert_eq!(composite1.category(), EventCategory::CompositeSingleTx);
        let composite_n = EventSpec::Composite(CompositeSpec {
            expr: EventExpr::Primitive(EventTypeId::new(1)),
            scope: CompositionScope::CrossTransaction,
            lifespan: Lifespan::Interval(Duration::from_secs(60)),
            consumption: ConsumptionPolicy::Chronicle,
            correlation: Default::default(),
        });
        assert_eq!(composite_n.category(), EventCategory::CompositeMultiTx);
    }

    #[test]
    fn origin_txns_walks_constituents_distinct() {
        let a = Arc::new(occ(1, Some(10), vec![]));
        let b = Arc::new(occ(2, Some(20), vec![]));
        let c = Arc::new(occ(3, Some(10), vec![]));
        let composite = occ(9, None, vec![a, b, c]);
        assert_eq!(
            composite.origin_txns(),
            vec![TxnId::new(10), TxnId::new(20)]
        );
    }

    #[test]
    fn first_primitive_descends() {
        let leaf = Arc::new(occ(1, Some(1), vec![]));
        let mid = Arc::new(occ(2, None, vec![Arc::clone(&leaf)]));
        let root = occ(3, None, vec![mid]);
        assert_eq!(root.first_primitive().event_type, EventTypeId::new(1));
    }

    #[test]
    fn slab_recycles_slots_per_generation() {
        let mut slab = OccSlab::new();
        let g1 = slab.open_gen();
        let h1 = slab.alloc(g1, Arc::new(occ(1, Some(1), vec![])));
        let h2 = slab.alloc(g1, Arc::new(occ(2, Some(1), vec![])));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.get(h1).unwrap().event_type, EventTypeId::new(1));
        slab.free_gen(g1);
        assert_eq!(slab.live(), 0);
        // Stale handles miss: the tag was bumped on free.
        assert!(slab.get(h1).is_none());
        assert!(slab.get(h2).is_none());
        // A later generation reuses the slots without growing the slab.
        let g2 = slab.open_gen();
        let h3 = slab.alloc(g2, Arc::new(occ(3, Some(2), vec![])));
        let _h4 = slab.alloc(g2, Arc::new(occ(4, Some(2), vec![])));
        assert_eq!(slab.high_water(), 2, "slots recycled, no growth");
        assert_eq!(slab.get(h3).unwrap().event_type, EventTypeId::new(3));
    }

    #[test]
    fn slab_free_one_is_idempotent_under_gen_sweep() {
        let mut slab = OccSlab::new();
        let g = slab.open_gen();
        let h = slab.alloc(g, Arc::new(occ(1, Some(1), vec![])));
        slab.free_one(h); // recent-context supersede
        assert_eq!(slab.live(), 0);
        let h2 = slab.alloc(g, Arc::new(occ(2, Some(1), vec![])));
        assert_eq!(h2.slot, h.slot, "slot recycled within the generation");
        slab.free_gen(g); // must not double-free h / free h2 twice
        assert_eq!(slab.live(), 0);
        assert!(slab.get(h2).is_none());
    }
}
