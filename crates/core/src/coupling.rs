//! Coupling modes and the Table 1 validity matrix.
//!
//! REACH distinguishes six coupling modes (§3.2). The first four come
//! from HiPAC; the last two were added in \[BBK93\] for open environments
//! where rules cause non-recoverable side effects:
//!
//! * **immediate** — the rule runs as a subtransaction at the detection
//!   point, inside the triggering transaction;
//! * **deferred** — as a subtransaction after the triggering transaction
//!   finishes its work but before it commits;
//! * **detached** — in an independent top-level transaction;
//! * **parallel causally dependent** — independent transaction that may
//!   start at once but commit only if the trigger commits;
//! * **sequential causally dependent** — independent transaction that
//!   may *start* only after the trigger commits;
//! * **exclusive causally dependent** — independent transaction that may
//!   commit only if the trigger *aborts* (contingency actions).
//!
//! Not every combination with an event category is meaningful; Table 1
//! of the paper pins down which are supported, and [`supported`] encodes
//! that table cell-for-cell. Registration of a rule whose (event
//! category, coupling) pair is a Table 1 "N" fails with
//! [`ReachError::UnsupportedCoupling`].

use reach_common::ReachError;
use std::fmt;

/// The six REACH coupling modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CouplingMode {
    Immediate,
    Deferred,
    Detached,
    ParallelCausallyDependent,
    SequentialCausallyDependent,
    ExclusiveCausallyDependent,
}

impl CouplingMode {
    /// All modes, in the row order of Table 1.
    pub const ALL: [CouplingMode; 6] = [
        CouplingMode::Immediate,
        CouplingMode::Deferred,
        CouplingMode::Detached,
        CouplingMode::ParallelCausallyDependent,
        CouplingMode::SequentialCausallyDependent,
        CouplingMode::ExclusiveCausallyDependent,
    ];

    /// Whether the rule executes in a transaction *detached* from the
    /// trigger (any of the four detached variants).
    pub fn is_detached(self) -> bool {
        !matches!(self, CouplingMode::Immediate | CouplingMode::Deferred)
    }

    /// Whether this detached mode carries a commit/abort dependency.
    pub fn is_causally_dependent(self) -> bool {
        matches!(
            self,
            CouplingMode::ParallelCausallyDependent
                | CouplingMode::SequentialCausallyDependent
                | CouplingMode::ExclusiveCausallyDependent
        )
    }
}

impl fmt::Display for CouplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CouplingMode::Immediate => "immediate",
            CouplingMode::Deferred => "deferred",
            CouplingMode::Detached => "detached",
            CouplingMode::ParallelCausallyDependent => "parallel causally dependent",
            CouplingMode::SequentialCausallyDependent => "sequential causally dependent",
            CouplingMode::ExclusiveCausallyDependent => "exclusive causally dependent",
        };
        f.write_str(s)
    }
}

/// The four event categories of Table 1 (columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCategory {
    /// Simple method events, including transaction-related events
    /// (BOT, EOT, commit, abort) and state-change events — everything
    /// that "can always be related to the transaction in which it was
    /// raised".
    SingleMethod,
    /// Simple temporal events: occur independently of any transaction.
    PurelyTemporal,
    /// Composite events whose primitives all originate in one
    /// transaction.
    CompositeSingleTx,
    /// Composite events whose primitives span several transactions.
    CompositeMultiTx,
}

impl EventCategory {
    /// All categories, in the column order of Table 1.
    pub const ALL: [EventCategory; 4] = [
        EventCategory::SingleMethod,
        EventCategory::PurelyTemporal,
        EventCategory::CompositeSingleTx,
        EventCategory::CompositeMultiTx,
    ];
}

impl fmt::Display for EventCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventCategory::SingleMethod => "single method",
            EventCategory::PurelyTemporal => "purely temporal",
            EventCategory::CompositeSingleTx => "composite (1 TX)",
            EventCategory::CompositeMultiTx => "composite (n TXs)",
        };
        f.write_str(s)
    }
}

/// Table 1 of the paper, cell for cell.
///
/// |                | Single Method | Purely Temporal | Composite 1 TX | Composite n TXs |
/// |----------------|---------------|-----------------|----------------|-----------------|
/// | Immediate      | Y             | N               | (N)            | N               |
/// | Deferred       | Y             | N               | Y              | N               |
/// | Detached       | Y             | Y               | Y              | Y               |
/// | Par. caus. dep.| Y             | N               | Y              | Y (all commit)  |
/// | Seq. caus. dep.| Y             | N               | Y              | Y (all commit)  |
/// | Exc. caus. dep.| Y             | N               | Y              | Y (all abort)   |
///
/// The "(N)" cell — immediate coupling on single-transaction composite
/// events — is semantically correct but ruled out by REACH because it
/// would stall normal processing on every primitive event until the
/// compositors issue negative acknowledgements (§3.2, §6.4).
pub fn supported(category: EventCategory, mode: CouplingMode) -> bool {
    use CouplingMode as M;
    use EventCategory as C;
    match (category, mode) {
        (C::SingleMethod, _) => true,
        (C::PurelyTemporal, M::Detached) => true,
        (C::PurelyTemporal, _) => false,
        (C::CompositeSingleTx, M::Immediate) => false, // the "(N)" cell
        (C::CompositeSingleTx, _) => true,
        (C::CompositeMultiTx, M::Immediate) => false,
        (C::CompositeMultiTx, M::Deferred) => false,
        (C::CompositeMultiTx, _) => true,
    }
}

/// Validate a pair, producing the Table 1 error for unsupported cells.
pub fn validate(category: EventCategory, mode: CouplingMode) -> Result<(), ReachError> {
    if supported(category, mode) {
        Ok(())
    } else {
        Err(ReachError::UnsupportedCoupling {
            event: category.to_string(),
            mode: mode.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_immediate() {
        assert!(supported(
            EventCategory::SingleMethod,
            CouplingMode::Immediate
        ));
        assert!(!supported(
            EventCategory::PurelyTemporal,
            CouplingMode::Immediate
        ));
        assert!(!supported(
            EventCategory::CompositeSingleTx,
            CouplingMode::Immediate
        ));
        assert!(!supported(
            EventCategory::CompositeMultiTx,
            CouplingMode::Immediate
        ));
    }

    #[test]
    fn table1_row_deferred() {
        assert!(supported(
            EventCategory::SingleMethod,
            CouplingMode::Deferred
        ));
        assert!(!supported(
            EventCategory::PurelyTemporal,
            CouplingMode::Deferred
        ));
        assert!(supported(
            EventCategory::CompositeSingleTx,
            CouplingMode::Deferred
        ));
        assert!(!supported(
            EventCategory::CompositeMultiTx,
            CouplingMode::Deferred
        ));
    }

    #[test]
    fn table1_row_detached_is_all_yes() {
        for cat in EventCategory::ALL {
            assert!(supported(cat, CouplingMode::Detached), "{cat} detached");
        }
    }

    #[test]
    fn table1_causal_rows() {
        for mode in [
            CouplingMode::ParallelCausallyDependent,
            CouplingMode::SequentialCausallyDependent,
            CouplingMode::ExclusiveCausallyDependent,
        ] {
            assert!(supported(EventCategory::SingleMethod, mode));
            assert!(!supported(EventCategory::PurelyTemporal, mode));
            assert!(supported(EventCategory::CompositeSingleTx, mode));
            assert!(supported(EventCategory::CompositeMultiTx, mode));
        }
    }

    #[test]
    fn table1_yes_count_matches_paper() {
        // Count the Y cells: row-wise 1+2+4+3+3+3 = 16.
        let yes = EventCategory::ALL
            .iter()
            .flat_map(|c| CouplingMode::ALL.iter().map(move |m| (c, m)))
            .filter(|(c, m)| supported(**c, **m))
            .count();
        assert_eq!(yes, 16);
    }

    #[test]
    fn validate_reports_table1() {
        let err = validate(EventCategory::CompositeMultiTx, CouplingMode::Deferred).unwrap_err();
        assert!(err.to_string().contains("Table 1"));
        assert!(validate(EventCategory::SingleMethod, CouplingMode::Immediate).is_ok());
    }

    #[test]
    fn mode_classification() {
        assert!(!CouplingMode::Immediate.is_detached());
        assert!(!CouplingMode::Deferred.is_detached());
        assert!(CouplingMode::Detached.is_detached());
        assert!(!CouplingMode::Detached.is_causally_dependent());
        assert!(CouplingMode::ExclusiveCausallyDependent.is_causally_dependent());
    }
}
