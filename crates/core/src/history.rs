//! Event histories (§6.3).
//!
//! "ECA-managers create an event object and keep local histories of the
//! created event occurrences. The maintenance of a highly distributed
//! history eliminates the bottleneck that would result from centrally
//! logging the occurrence of events. ... a global history is maintained
//! by a background process after a transaction has committed or has been
//! aborted."
//!
//! [`LocalHistory`] is the per-ECA-manager ring buffer;
//! [`GlobalHistory`] is the post-EOT consolidated log the collector
//! drains into. Experiment E12 measures the contention difference.

use crate::event::EventOccurrence;
use reach_common::sync::Mutex;
use reach_common::TxnId;
use std::collections::VecDeque;
use std::sync::Arc;

/// Default ring capacity per manager.
pub const DEFAULT_LOCAL_CAPACITY: usize = 4096;

/// The per-manager event log.
pub struct LocalHistory {
    ring: Mutex<VecDeque<Arc<EventOccurrence>>>,
    capacity: usize,
}

impl LocalHistory {
    pub fn new(capacity: usize) -> Self {
        LocalHistory {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
        }
    }

    /// Record an occurrence, evicting the oldest beyond capacity.
    pub fn record(&self, occ: Arc<EventOccurrence>) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(occ);
    }

    /// Record a whole batch under one lock acquisition — the batched
    /// delivery path appends here once per event-type run instead of
    /// once per occurrence.
    pub fn record_batch(&self, occs: &[Arc<EventOccurrence>]) {
        let mut ring = self.ring.lock();
        for occ in occs {
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(Arc::clone(occ));
        }
    }

    /// Occurrences belonging to `txn`'s top level, removed from the
    /// local ring — the collector calls this after EOT.
    pub fn drain_for_txn(&self, top: TxnId) -> Vec<Arc<EventOccurrence>> {
        let mut ring = self.ring.lock();
        let mut out = Vec::new();
        ring.retain(|occ| {
            if occ.top_txn == Some(top) {
                out.push(Arc::clone(occ));
                false
            } else {
                true
            }
        });
        out
    }

    /// Snapshot of the current ring (oldest first).
    pub fn snapshot(&self) -> Vec<Arc<EventOccurrence>> {
        self.ring.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for LocalHistory {
    fn default() -> Self {
        Self::new(DEFAULT_LOCAL_CAPACITY)
    }
}

/// The consolidated, post-EOT history.
pub struct GlobalHistory {
    log: Mutex<VecDeque<Arc<EventOccurrence>>>,
    capacity: usize,
}

impl GlobalHistory {
    pub fn new(capacity: usize) -> Self {
        GlobalHistory {
            log: Mutex::new(VecDeque::new()),
            capacity,
        }
    }

    /// Absorb drained occurrences, keeping global sequence order.
    ///
    /// Merge-inserts by `seq`: collectors for different transactions
    /// drain and absorb concurrently, so a batch may carry occurrences
    /// older than ones already absorbed — sorting within the batch
    /// alone would interleave the log out of order, violating the §6.3
    /// global-sequence invariant. The log tail is nearly sorted, so
    /// the backward scan is short in practice.
    pub fn absorb(&self, mut occurrences: Vec<Arc<EventOccurrence>>) {
        occurrences.sort_by_key(|o| o.seq);
        let mut log = self.log.lock();
        for occ in occurrences {
            let mut idx = log.len();
            while idx > 0 && log[idx - 1].seq > occ.seq {
                idx -= 1;
            }
            log.insert(idx, occ);
            if log.len() > self.capacity {
                log.pop_front();
            }
        }
    }

    /// Snapshot (oldest first).
    pub fn snapshot(&self) -> Vec<Arc<EventOccurrence>> {
        self.log.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for GlobalHistory {
    fn default() -> Self {
        Self::new(1 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;
    use reach_common::{EventTypeId, TimePoint, Timestamp};

    fn occ(seq: u64, txn: u64) -> Arc<EventOccurrence> {
        Arc::new(EventOccurrence {
            event_type: EventTypeId::new(1),
            seq: Timestamp::new(seq),
            at: TimePoint::ZERO,
            txn: Some(TxnId::new(txn)),
            top_txn: Some(TxnId::new(txn)),
            data: EventData::default(),
            constituents: Vec::new(),
        })
    }

    #[test]
    fn ring_caps_capacity() {
        let h = LocalHistory::new(3);
        for s in 1..=5 {
            h.record(occ(s, 1));
        }
        let snap = h.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, Timestamp::new(3));
    }

    #[test]
    fn drain_removes_only_that_transaction() {
        let h = LocalHistory::new(100);
        h.record(occ(1, 10));
        h.record(occ(2, 20));
        h.record(occ(3, 10));
        let drained = h.drain_for_txn(TxnId::new(10));
        assert_eq!(drained.len(), 2);
        assert_eq!(h.len(), 1);
        assert_eq!(h.snapshot()[0].txn, Some(TxnId::new(20)));
    }

    #[test]
    fn global_history_orders_by_sequence() {
        let g = GlobalHistory::new(100);
        g.absorb(vec![occ(5, 1), occ(2, 1)]);
        g.absorb(vec![occ(9, 2), occ(7, 2)]);
        let snap = g.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|o| o.seq.raw()).collect();
        assert_eq!(seqs, vec![2, 5, 7, 9]);
    }

    /// Regression: a later batch carrying *older* occurrences (two
    /// collectors draining concurrently, the slower one absorbing
    /// first) used to be appended after sorting only within itself,
    /// interleaving the global log out of `seq` order.
    #[test]
    fn interleaved_absorbs_stay_globally_ordered() {
        let g = GlobalHistory::new(100);
        g.absorb(vec![occ(5, 1), occ(2, 1)]);
        g.absorb(vec![occ(4, 2), occ(1, 2), occ(9, 2)]);
        let seqs: Vec<u64> = g.snapshot().iter().map(|o| o.seq.raw()).collect();
        assert_eq!(seqs, vec![1, 2, 4, 5, 9]);
        // Capacity still evicts from the *old* end after a merge.
        let small = GlobalHistory::new(3);
        small.absorb(vec![occ(10, 1), occ(30, 1)]);
        small.absorb(vec![occ(20, 2), occ(40, 2)]);
        let seqs: Vec<u64> = small.snapshot().iter().map(|o| o.seq.raw()).collect();
        assert_eq!(seqs, vec![20, 30, 40]);
    }
}
